//! Offline stand-in for the `rayon` crate — now backed by a **real**
//! thread pool.
//!
//! This workspace builds in environments with no crates.io access, so the
//! entry points it uses — `par_iter()` / `into_par_iter()` from
//! `rayon::prelude`, the `map` / `flat_map` / `collect` combinators, and
//! [`join`] — are vendored here. Earlier revisions handed back plain
//! sequential iterators; this one executes on scoped worker threads (see
//! [`pool`]) while keeping the call sites unchanged.
//!
//! The adapters are lazy: `par_iter().map(f)` builds a [`Map`] description,
//! and only a sink (`collect`) compiles the chain into slot-indexed work
//! units and hands them to [`pool::execute`]. Each unit is pinned to its
//! output slot before execution, so **results are identical for every
//! thread count** — see the determinism contract in [`pool`].
//!
//! Deliberate differences from upstream rayon:
//!
//! * `flat_map` parallelizes at the granularity of its *input* items: the
//!   closure and the expansion it returns run inside one worker unit.
//!   Downstream `map`s compose into that unit, so put the expensive stage
//!   before or at the `flat_map` input level when granularity matters (or
//!   use `map` + flatten-on-collect).
//! * No adaptive splitting: the unit list is fixed up front and workers
//!   claim chunks of slots from an atomic cursor.
//! * Worker count comes from [`pool::threads`] / [`pool::set_threads`],
//!   the `PARAPAGE_THREADS` environment variable, or the machine, in that
//!   order; `threads(1)` is the sequential escape hatch for debugging.

pub mod pool;

use std::sync::Arc;

pub use pool::join;

use pool::{Tasks, Unit};

/// A lazy parallel computation over items of type `Item`.
///
/// The lifetime `'a` bounds everything the chain borrows (slices being
/// iterated, closure captures); [`pool::execute`] runs the compiled units
/// under a `std::thread::scope`, which is what makes non-`'static`
/// borrows sound.
pub trait ParallelIterator<'a>: Sized {
    /// The element type produced by this stage.
    type Item: Send + 'a;

    /// Compiles the chain into slot-indexed work units.
    fn into_tasks(self) -> Tasks<'a, Self::Item>;

    /// Applies `f` to every item, in parallel at evaluation time.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send + 'a,
        F: Fn(Self::Item) -> R + Send + Sync + 'a,
    {
        Map { base: self, f }
    }

    /// Expands every item through `f` and flattens, preserving item order.
    fn flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        U: IntoIterator,
        U::Item: Send + 'a,
        F: Fn(Self::Item) -> U + Send + Sync + 'a,
    {
        FlatMap { base: self, f }
    }

    /// Executes the chain on the pool and collects the results **in input
    /// order**, regardless of thread count.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        pool::execute(self.into_tasks()).into_iter().collect()
    }
}

/// Root of a parallel chain: one work unit per item of the base iterator.
pub struct ParIter<I> {
    base: I,
}

impl<'a, I> ParallelIterator<'a> for ParIter<I>
where
    I: Iterator + 'a,
    I::Item: Send + 'a,
{
    type Item = I::Item;

    fn into_tasks(self) -> Tasks<'a, I::Item> {
        Tasks {
            units: self
                .base
                .map(|item| Box::new(move || vec![item]) as Unit<'a, I::Item>)
                .collect(),
        }
    }
}

/// Lazy `map` stage (see [`ParallelIterator::map`]).
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<'a, B, F, R> ParallelIterator<'a> for Map<B, F>
where
    B: ParallelIterator<'a>,
    F: Fn(B::Item) -> R + Send + Sync + 'a,
    R: Send + 'a,
{
    type Item = R;

    fn into_tasks(self) -> Tasks<'a, R> {
        let f = Arc::new(self.f);
        Tasks {
            units: self
                .base
                .into_tasks()
                .units
                .into_iter()
                .map(|unit| {
                    let f = Arc::clone(&f);
                    Box::new(move || unit().into_iter().map(|x| f(x)).collect()) as Unit<'a, R>
                })
                .collect(),
        }
    }
}

/// Lazy `flat_map` stage (see [`ParallelIterator::flat_map`]).
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<'a, B, F, U> ParallelIterator<'a> for FlatMap<B, F>
where
    B: ParallelIterator<'a>,
    U: IntoIterator,
    U::Item: Send + 'a,
    F: Fn(B::Item) -> U + Send + Sync + 'a,
{
    type Item = U::Item;

    fn into_tasks(self) -> Tasks<'a, U::Item> {
        let f = Arc::new(self.f);
        Tasks {
            units: self
                .base
                .into_tasks()
                .units
                .into_iter()
                .map(|unit| {
                    let f = Arc::clone(&f);
                    Box::new(move || unit().into_iter().flat_map(|x| f(x).into_iter()).collect())
                        as Unit<'a, U::Item>
                })
                .collect(),
        }
    }
}

// Sequential views: a chain is also an ordinary `IntoIterator`, which is
// what lets one parallel chain nest inside another's `flat_map` closure
// (the inner chain then evaluates inside the outer worker's unit).

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.base
    }
}

impl<B, F, R> IntoIterator for Map<B, F>
where
    B: IntoIterator,
    F: Fn(B::Item) -> R,
{
    type Item = R;
    type IntoIter = std::iter::Map<B::IntoIter, F>;

    fn into_iter(self) -> Self::IntoIter {
        self.base.into_iter().map(self.f)
    }
}

impl<B, F, U> IntoIterator for FlatMap<B, F>
where
    B: IntoIterator,
    U: IntoIterator,
    F: Fn(B::Item) -> U,
{
    type Item = U::Item;
    type IntoIter = std::iter::FlatMap<B::IntoIter, U, F>;

    fn into_iter(self) -> Self::IntoIter {
        self.base.into_iter().flat_map(self.f)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The chain root produced.
    type Iter;
    /// The element type.
    type Item;

    /// Converts `self` into a parallel chain root.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = ParIter<T::IntoIter>;
    type Item = T::Item;

    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter {
            base: self.into_iter(),
        }
    }
}

/// Types whose references iterate in parallel.
pub trait IntoParallelRefIterator<'data> {
    /// The chain root produced.
    type Iter;
    /// The element type (a reference).
    type Item: 'data;

    /// Iterates over `&self` in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = ParIter<<&'data C as IntoIterator>::IntoIter>;
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            base: self.into_iter(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate::pool;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serializes tests that touch the global thread override or the
    /// `PARAPAGE_THREADS` environment variable.
    static GLOBAL_CONFIG: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_CONFIG.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_over_ranges_and_flat_map() {
        let pairs: Vec<(u64, u64)> = (0..3u64)
            .into_par_iter()
            .flat_map(|a| (0..2u64).into_par_iter().map(move |b| (a, b)))
            .collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(pairs[5], (2, 1));
    }

    #[test]
    fn order_is_stable_across_thread_counts() {
        let _g = lock();
        let input: Vec<usize> = (0..257).collect();
        let mut baseline = None;
        for n in [1usize, 2, 8, 32] {
            let _t = pool::threads(n);
            let out: Vec<usize> = input.par_iter().map(|&x| x * x + 1).collect();
            let base = baseline.get_or_insert_with(|| out.clone());
            assert_eq!(&out, base, "thread count {n} changed the output");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let _g = lock();
        let _t = pool::threads(8);
        let out: Vec<u32> = Vec::<u32>::new().par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let _g = lock();
        let _t = pool::threads(8);
        let out: Vec<u32> = [7u32].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let _g = lock();
        let _t = pool::threads(64);
        let out: Vec<usize> = (0..3usize).into_par_iter().map(|x| x * 10).collect();
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        let _g = lock();
        let _t = pool::threads(4);
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        let out: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // A little spinning so workers overlap instead of one
                // thread draining every chunk before the others start.
                std::hint::black_box((0..20_000u64).sum::<u64>());
                x
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected more than one worker thread to participate"
        );
    }

    #[test]
    fn panic_propagates_to_caller() {
        let _g = lock();
        let _t = pool::threads(4);
        let result = std::panic::catch_unwind(|| {
            let _out: Vec<usize> = (0..16usize)
                .into_par_iter()
                .map(|x| {
                    if x == 11 {
                        panic!("unit 11 exploded");
                    }
                    x
                })
                .collect();
        });
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = pool_panic_message(payload.as_ref());
        assert!(
            msg.contains("slot 11") && msg.contains("unit 11 exploded"),
            "report must carry the failing slot and the unit's payload, got: {msg}"
        );
    }

    #[test]
    fn panic_report_names_lowest_failing_slot_at_every_thread_count() {
        let _g = lock();
        for threads in [1usize, 4] {
            let _t = pool::threads(threads);
            let result = std::panic::catch_unwind(|| {
                let _out: Vec<usize> = (0..32usize)
                    .into_par_iter()
                    .map(|x| {
                        if x == 7 || x == 23 {
                            panic!("unit {x} exploded");
                        }
                        x
                    })
                    .collect();
            });
            let payload = result.expect_err("worker panic must reach the caller");
            let msg = pool_panic_message(payload.as_ref());
            assert!(
                msg.contains("slot 7") && msg.contains("unit 7 exploded"),
                "threads={threads}: expected the lowest failing slot, got: {msg}"
            );
        }
    }

    fn pool_panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            panic!("pool panic payload must be a string");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let _g = lock();
        let _t = pool::threads(4);
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_join() {
        let _g = lock();
        let _t = pool::threads(4);
        let ((a, b), (c, d)) = crate::join(|| crate::join(|| 1, || 2), || crate::join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn join_panic_propagates() {
        let _g = lock();
        let _t = pool::threads(4);
        let result = std::panic::catch_unwind(|| {
            crate::join(|| 1, || panic!("right side exploded"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn threads_one_escape_hatch_is_sequential() {
        let _g = lock();
        let _t = pool::threads(1);
        // Under threads(1) units run inline on the caller, in slot order:
        // a strictly increasing observation sequence proves it.
        let order = AtomicUsize::new(0);
        let out: Vec<usize> = (0..32usize)
            .into_par_iter()
            .map(|x| {
                let turn = order.fetch_add(1, Ordering::SeqCst);
                assert_eq!(turn, x, "threads(1) must execute slots in order");
                x
            })
            .collect();
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn env_var_fallback_controls_width() {
        let _g = lock();
        // Clear any programmatic override so the env var is consulted.
        pool::set_threads(0);
        std::env::set_var(pool::ENV_THREADS, "1");
        assert_eq!(pool::current_threads(), 1);
        let out: Vec<usize> = (0..8usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..9).collect::<Vec<_>>());
        std::env::set_var(pool::ENV_THREADS, "5");
        assert_eq!(pool::current_threads(), 5);
        std::env::set_var(pool::ENV_THREADS, "not-a-number");
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(pool::current_threads(), hw);
        std::env::remove_var(pool::ENV_THREADS);
        // The programmatic override wins over the environment.
        std::env::set_var(pool::ENV_THREADS, "3");
        pool::set_threads(7);
        assert_eq!(pool::current_threads(), 7);
        pool::set_threads(0);
        std::env::remove_var(pool::ENV_THREADS);
    }

    #[test]
    fn nested_sweeps_stay_deterministic() {
        let _g = lock();
        let _t = pool::threads(4);
        let run = || -> Vec<u64> {
            (0..6u64)
                .into_par_iter()
                .map(|a| {
                    let inner: Vec<u64> = (0..5u64).into_par_iter().map(|b| a * 100 + b).collect();
                    inner.iter().sum()
                })
                .collect()
        };
        let first = run();
        assert_eq!(first, run());
        assert_eq!(first[1], 5 * 100 + 10);
    }
}
