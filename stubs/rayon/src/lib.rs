//! Offline stand-in for the `rayon` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! entry points it uses — `par_iter()` and `into_par_iter()` from
//! `rayon::prelude` — are vendored here as thin shims that hand back the
//! ordinary *sequential* standard-library iterators. Every downstream
//! combinator (`map`, `flat_map`, `collect`, …) is then just
//! [`std::iter::Iterator`], so the experiment binaries compile and produce
//! identical results, merely without the parallel speedup.

/// Types convertible into a (here: sequential) "parallel" iterator.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// Converts `self` into an iterator; sequential in this stand-in.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;

    fn into_par_iter(self) -> T::IntoIter {
        self.into_iter()
    }
}

/// Types whose references iterate "in parallel" (sequentially here).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: 'a;

    /// Iterates over `&self`; sequential in this stand-in.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    type Item = <&'a C as IntoIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_over_ranges_and_flat_map() {
        let pairs: Vec<(u64, u64)> = (0..3u64)
            .into_par_iter()
            .flat_map(|a| (0..2u64).into_par_iter().map(move |b| (a, b)))
            .collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(pairs[5], (2, 1));
    }
}
