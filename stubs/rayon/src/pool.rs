//! The execution pool behind the parallel iterators: scoped worker
//! threads, chunked work claiming, and slot-indexed result assembly.
//!
//! # Determinism contract
//!
//! [`execute`] returns **byte-identical results for every thread count**,
//! including the sequential `threads = 1` fallback. Two mechanisms
//! guarantee this:
//!
//! 1. every work unit is pinned to its index *before* execution starts, and
//! 2. every worker reports `(index, output)` pairs into a private channel;
//!    the caller reassembles outputs into their pre-assigned slots after
//!    all workers have finished, so arrival order is irrelevant.
//!
//! No unit ever touches a shared accumulator. Downstream consumers (the
//! conformance oracle's byte-identical-replay checker, the bench digests)
//! rely on this: thread count may only change wall-clock time, never
//! output.
//!
//! # Sizing
//!
//! Worker count resolves, in priority order, from the [`threads`] /
//! [`set_threads`] programmatic override, the `PARAPAGE_THREADS`
//! environment variable, and [`std::thread::available_parallelism`]. A
//! global budget caps the *extra* threads alive at once across nested
//! [`execute`]/[`join`] calls; when the budget is exhausted a call simply
//! runs inline on its caller — same results, no oversubscription.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Environment variable overriding the worker count (`>= 1`).
pub const ENV_THREADS: &str = "PARAPAGE_THREADS";

/// One pre-assigned work unit: produces the output items for its slot.
pub type Unit<'a, T> = Box<dyn FnOnce() -> Vec<T> + Send + 'a>;

/// A batch of slot-indexed work units, ready for [`execute`].
pub struct Tasks<'a, T> {
    /// The units, in slot order; unit `i` fills output slot `i`.
    pub units: Vec<Unit<'a, T>>,
}

/// Programmatic thread-count override; `0` means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Extra (non-caller) worker threads currently alive, across all nested
/// `execute`/`join` calls in the process.
static EXTRA_IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

/// The worker count in effect: programmatic override, else
/// `PARAPAGE_THREADS`, else available hardware parallelism.
pub fn current_threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var(ENV_THREADS) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the programmatic worker-count override (`0` clears it). Prefer the
/// scoped [`threads`] guard in tests; this unconditional form suits
/// long-lived harnesses like `parapage bench`.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// Restores the previous thread override when dropped.
pub struct ThreadsGuard {
    prev: usize,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        OVERRIDE.store(self.prev, Ordering::SeqCst);
    }
}

/// Scoped worker-count override: `let _g = pool::threads(1);` forces
/// sequential execution until the guard drops — the debugging escape
/// hatch, and the lever the bench harness uses to measure speedup.
pub fn threads(n: usize) -> ThreadsGuard {
    ThreadsGuard {
        prev: OVERRIDE.swap(n, Ordering::SeqCst),
    }
}

/// Tries to reserve up to `want` extra worker threads from the global
/// budget; returns how many were granted (possibly zero).
fn budget_acquire(want: usize) -> usize {
    // Twice the configured width: leaves headroom for nested sweeps
    // (an outer grid whose cells run inner grids) without unbounded
    // thread explosion.
    let cap = current_threads().saturating_mul(2);
    let mut granted = 0;
    let _ = EXTRA_IN_FLIGHT.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
        granted = want.min(cap.saturating_sub(cur));
        Some(cur + granted)
    });
    granted
}

/// Releases `n` previously acquired budget slots on drop, so a panicking
/// worker cannot leak budget.
struct BudgetGuard(usize);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        EXTRA_IN_FLIGHT.fetch_sub(self.0, Ordering::SeqCst);
    }
}

/// Renders a panic payload for the slot-indexed report (the common `&str`
/// and `String` payloads verbatim, anything else a placeholder).
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Re-raises unit failures as one panic naming the **lowest** failing slot
/// and its payload. Every unit always runs (a failure does not stop the
/// other workers), so the set of failing slots — and hence this report —
/// is identical for every thread count.
fn raise_unit_failures(failures: Vec<(usize, String)>) {
    if let Some((slot, msg)) = failures.into_iter().min_by_key(|&(slot, _)| slot) {
        panic!("pool unit at slot {slot} panicked: {msg}");
    }
}

/// Runs every unit and returns the concatenated outputs **in slot order**,
/// regardless of thread count or scheduling.
///
/// Workers claim contiguous chunks of slot indices from a shared atomic
/// cursor (self-balancing: a worker stuck on a heavy unit simply claims
/// fewer chunks), execute each unit, and send `(slot, output)` down a
/// channel; assembly happens on the caller after the scope joins.
///
/// A panicking unit does not take the pool down blind: each unit runs
/// under [`catch_unwind`], the remaining units still execute, and after
/// the scope joins the caller re-panics with the lowest failing slot index
/// and the unit's own payload (`pool unit at slot N panicked: ...`) — the
/// same report for every thread count, including the sequential fallback.
pub fn execute<T: Send>(tasks: Tasks<'_, T>) -> Vec<T> {
    let units = tasks.units;
    let n = units.len();
    let extra = if n <= 1 || current_threads() <= 1 {
        0
    } else {
        budget_acquire(current_threads().min(n) - 1)
    };
    if extra == 0 {
        let mut failures: Vec<(usize, String)> = Vec::new();
        let outs: Vec<Vec<T>> = units
            .into_iter()
            .enumerate()
            .map(|(i, u)| match catch_unwind(AssertUnwindSafe(u)) {
                Ok(v) => v,
                Err(p) => {
                    failures.push((i, payload_string(p.as_ref())));
                    Vec::new()
                }
            })
            .collect();
        raise_unit_failures(failures);
        return outs.into_iter().flatten().collect();
    }
    let _budget = BudgetGuard(extra);

    // Slot-claiming state: unit i can only ever run once (`take()`), and
    // its output can only ever land in slot i.
    let slots: Vec<Mutex<Option<Unit<'_, T>>>> =
        units.into_iter().map(|u| Mutex::new(Some(u))).collect();
    let cursor = AtomicUsize::new(0);
    let workers = extra + 1;
    let (tx, rx) = mpsc::channel::<(usize, Result<Vec<T>, String>)>();

    // Adaptive chunked claiming. Chunk sizes only affect *which worker runs
    // which unit*, never the output (slot-indexed assembly), so the sizing
    // below is free to use wall-clock measurements:
    //
    // * each worker's first claim is a small probe to estimate per-item
    //   cost;
    // * later claims are sized so one claim covers ~TARGET_CHUNK_NANOS of
    //   work — tiny units get coarse chunks that amortize the cursor and
    //   channel traffic, heavy units get fine chunks;
    // * every claim is capped at `remaining / workers`, so the tail still
    //   rebalances (a worker stuck on a heavy unit strands at most one
    //   worker-share of the queue behind it).
    const TARGET_CHUNK_NANOS: u64 = 250_000;
    let probe_chunk = (n / (workers * 8)).clamp(1, 64);
    let worker = |tx: mpsc::Sender<(usize, Result<Vec<T>, String>)>| {
        let mut est_nanos_per_item: u64 = 0;
        loop {
            let claimed = cursor.load(Ordering::Relaxed);
            if claimed >= n {
                break;
            }
            let desired = match TARGET_CHUNK_NANOS.checked_div(est_nanos_per_item) {
                None => probe_chunk,
                Some(c) => c.max(1) as usize,
            };
            let balance_cap = ((n - claimed) / workers).max(1);
            let chunk = desired.min(balance_cap);
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            let t0 = std::time::Instant::now();
            for (i, slot) in slots.iter().enumerate().take(end).skip(start) {
                let unit = slot
                    .lock()
                    .expect("pool slot lock poisoned")
                    .take()
                    .expect("pool unit claimed twice");
                let report =
                    catch_unwind(AssertUnwindSafe(unit)).map_err(|p| payload_string(p.as_ref()));
                // The receiver outlives the scope, so send only fails if
                // the caller is already unwinding; dropping the output is
                // fine then.
                let _ = tx.send((i, report));
            }
            let per_item = (t0.elapsed().as_nanos() as u64 / (end - start) as u64).max(1);
            // Smooth across claims so one outlier unit does not whipsaw
            // the chunk size.
            est_nanos_per_item = if est_nanos_per_item == 0 {
                per_item
            } else {
                (est_nanos_per_item + per_item) / 2
            };
        }
    };
    std::thread::scope(|s| {
        let worker = &worker;
        for _ in 0..extra {
            let tx = tx.clone();
            s.spawn(move || worker(tx));
        }
        // The caller participates as the final worker.
        worker(tx.clone());
    });
    drop(tx);

    let mut out: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();
    for (i, report) in rx.try_iter() {
        match report {
            Ok(v) => out[i] = Some(v),
            Err(msg) => {
                failures.push((i, msg));
                out[i] = Some(Vec::new());
            }
        }
    }
    raise_unit_failures(failures);
    out.into_iter()
        .flat_map(|v| v.expect("pool slot never filled"))
        .collect()
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `oper_b` runs on a scoped worker when the thread budget allows,
/// `oper_a` on the caller; with `threads <= 1` (or an exhausted budget)
/// both run inline, in order. Panics from either closure propagate to the
/// caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 || budget_acquire(1) == 0 {
        return (oper_a(), oper_b());
    }
    let _budget = BudgetGuard(1);
    std::thread::scope(|s| {
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}
