//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` APIs it uses are vendored here (see the workspace
//! `[workspace.dependencies]`): [`rngs::StdRng`], [`SeedableRng`], the core
//! [`Rng`] trait, and the [`RngExt`] extension methods `random` /
//! `random_range`. The generator is xoshiro256** seeded via SplitMix64 —
//! high-quality and fully deterministic, though its streams differ from the
//! upstream crate's ChaCha-based `StdRng` (nothing in this workspace
//! depends on upstream streams; all seeded tests are statistical or
//! self-consistent).

use std::ops::{Range, RangeInclusive};

/// A source of random bits: the core trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits
/// (the stand-in for sampling from the standard distribution).
pub trait StandardValue: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardValue for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Unbiased-enough fixed-point multiply: maps 64 random bits
                // onto [0, span) without modulo clustering.
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                self.start + off
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                lo + off
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardValue::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::RngExt`.
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T` (uniform bits;
    /// `[0, 1)` for floats).
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`. Panics when the range is
    /// empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64. Deterministic, `Clone`-able (clones continue the same
    /// stream), and statistically solid for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing. Restoring with
        /// [`StdRng::from_state`] continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.random_range(0usize..10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.random_range(5u64..=7);
            assert!((5..=7).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
