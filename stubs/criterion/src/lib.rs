//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! bench API surface it uses is vendored here: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::bench_function`] /
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with `sample_size` /
//! `throughput` / `bench_with_input` / `finish`, and [`Bencher::iter`] /
//! [`Bencher::iter_batched`].
//!
//! The harness is a plain timing loop: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the median time per
//! iteration. There is no statistical analysis, outlier detection, HTML
//! report, or baseline comparison — benches compile, run, and give a rough
//! number, which is all the offline environment supports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint; ignored by this harness.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; recorded but not reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A parameterized benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A label naming the parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// A `function/parameter` label.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group's throughput; this harness ignores it.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op here; reports print as benches run).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up doubles as calibration: pick an iteration count that keeps
    // each sample around a few milliseconds without running forever.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        times.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "bench {label:<48} {:>12} /iter  ({samples} samples)",
        fmt_time(median)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_all_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
                vec![1, 2, 3]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 5);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }
}
