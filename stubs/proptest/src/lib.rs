//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! subset of proptest it uses is vendored here: the [`strategy::Strategy`]
//! trait with `prop_map`/`boxed`, range / tuple / collection / regex-lite
//! string strategies, [`arbitrary::any`], the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assume!`] / [`prop_oneof!`] macros, and a
//! deterministic [`test_runner::TestRunner`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated input verbatim
//!   instead of minimizing it.
//! * **Deterministic seeding.** Each test's RNG stream is derived from the
//!   test's name, so failures reproduce exactly on re-run; there is no
//!   `PROPTEST_` environment handling and `*.proptest-regressions` files
//!   are ignored.
//! * **String strategies** support only the `[class]{m,n}` pattern shape
//!   (plus plain literals), which is all this workspace uses.

/// Deterministic xoshiro256** generator used by the runner.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128).wrapping_mul(bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    //! The case runner and its configuration / error types.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count
        /// toward the required number of cases.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            }
        }
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a strategy through the configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `test` on `config.cases` generated inputs, panicking on the
        /// first failure with the offending input. The RNG stream is
        /// derived from `name`, so runs are deterministic per test.
        pub fn run_named<S: Strategy>(
            &mut self,
            name: &str,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> TestCaseResult,
        ) where
            S::Value: std::fmt::Debug,
        {
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            });
            let mut rng = TestRng::seed_from_u64(seed);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                // Snapshot so a failing input can be regenerated for the
                // report without paying Debug-formatting on every case.
                let snapshot = rng.clone();
                let value = strategy.generate(&mut rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < self.config.cases.saturating_mul(20).max(1000),
                            "proptest `{name}`: too many rejected cases \
                             ({rejected} rejections before {passed} passes)"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        let shown = strategy.generate(&mut snapshot.clone());
                        panic!(
                            "proptest `{name}` failed after {passed} passing case(s): \
                             {msg}\n  input: {shown:?}"
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Strategies: value generators composable with `prop_map`.

    use super::TestRng;

    /// A generator of test-case values, mirroring `proptest::Strategy`
    /// (minus shrinking: `generate` draws a value directly).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], for [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy producing `T`.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives; built by
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`; panics when empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    let off =
                        ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                    self.start + off
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off =
                        ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $t;
                    lo + off
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_sint {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u128;
                    let off =
                        ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as $u;
                    self.start.wrapping_add(off as $t)
                }
            }
        )*};
    }
    impl_range_strategy_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&str` patterns as string strategies. Supported shapes: a single
    /// `[class]{m,n}` term (character class with ranges and `\`-escapes,
    /// `{m,n}` / `{m}` repetition) or a plain literal.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, lo, hi) = match parse_class_pattern(self) {
                Some(parsed) => parsed,
                None => return (*self).to_string(),
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]{m,n}` into (alphabet, min_len, max_len).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let mut chars = rest.chars().peekable();
        let mut class = Vec::new();
        loop {
            let c = chars.next()?;
            match c {
                ']' => break,
                '\\' => class.push(chars.next()?),
                _ => {
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next();
                        match look.peek() {
                            Some(&end) if end != ']' => {
                                chars = look;
                                let end = chars.next()?;
                                for v in c as u32..=end as u32 {
                                    class.push(char::from_u32(v)?);
                                }
                                continue;
                            }
                            _ => {}
                        }
                    }
                    class.push(c);
                }
            }
        }
        if class.is_empty() {
            return None;
        }
        let tail: String = chars.collect();
        if tail.is_empty() {
            return Some((class, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((class, lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_patterns_parse() {
            let (class, lo, hi) = parse_class_pattern("[a-c,\\\"]{0,8}").unwrap();
            assert_eq!(class, vec!['a', 'b', 'c', ',', '"']);
            assert_eq!((lo, hi), (0, 8));
        }

        #[test]
        fn string_strategy_respects_bounds() {
            let mut rng = TestRng::seed_from_u64(1);
            for _ in 0..200 {
                let s = "[a-z,\"]{0,8}".generate(&mut rng);
                assert!(s.chars().count() <= 8);
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == ',' || c == '"'));
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`: canonical strategies per type.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            a, b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts inequality inside a property test; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Rejects the current case when the assumption does not hold; rejected
/// cases do not count toward the configured case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::TestRunner::new(config).run_named(
                stringify!($name),
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn maps_and_vecs_compose(
            v in prop::collection::vec((0u32..5).prop_map(|x| x * 2), 0..6),
        ) {
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x % 2 == 0 && x < 10);
            }
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![0u32..1, 10u32..11, 20u32..21]) {
            prop_assert!(x == 0 || x == 10 || x == 20);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut first = Vec::new();
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..10 {
            first.push(strat.generate(&mut rng));
        }
        let mut rng = crate::TestRng::seed_from_u64(1);
        let second: Vec<u64> = (0..10).map(|_| strat.generate(&mut rng)).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails`")]
    fn failures_panic_with_input() {
        crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(5))
            .run_named("always_fails", &(0u32..10,), |(_x,)| {
                Err(crate::test_runner::TestCaseError::fail("nope"))
            });
    }
}
