//! Cross-crate end-to-end tests: workload generation → policy → engine →
//! analysis, exercising every public policy on every workload family.

use parapage::prelude::*;

fn params() -> ModelParams {
    ModelParams::new(8, 64, 10)
}

fn mixed_workload(len: usize) -> Workload {
    let specs: Vec<SeqSpec> = (0..8)
        .map(|x| match x % 4 {
            0 => SeqSpec::Cyclic { width: 4, len },
            1 => SeqSpec::Cyclic { width: 32, len },
            2 => SeqSpec::Zipf {
                universe: 64,
                theta: 0.9,
                len,
            },
            _ => SeqSpec::Phased {
                phases: vec![(4, len / 2), (32, len / 2)],
            },
        })
        .collect();
    build_workload(&specs, 123)
}

/// Every policy must serve every request exactly once and finish above the
/// certified lower bound.
#[test]
fn all_policies_complete_all_requests() {
    let p = params();
    let w = mixed_workload(1500);
    let total = w.total_requests();
    let lb = per_proc_bound(w.seqs(), p.k, p.s);
    let opts = EngineOpts::default();

    let mut policies: Vec<(Box<dyn BoxAllocator>, &str)> = vec![
        (Box::new(DetPar::new(&p)), "det"),
        (Box::new(RandPar::new(&p, 9)), "rand"),
        (Box::new(StaticPartition::new(&p)), "static"),
        (Box::new(PropMissPartition::new(&p)), "prop"),
        (
            Box::new(BlackboxGreenPacker::new(
                &p,
                (0..8).map(|i| RandGreen::new(&p, i)).collect(),
            )),
            "bb",
        ),
    ];
    for (alloc, name) in policies.iter_mut() {
        let res = run_engine(alloc.as_mut(), w.seqs(), &p, &opts).unwrap();
        assert_eq!(res.stats.accesses(), total, "policy {name}");
        assert!(res.makespan >= lb, "policy {name} beat the lower bound?!");
        assert_eq!(res.completions.len(), 8, "policy {name}");
        assert!(
            res.completions.iter().all(|&c| c > 0 && c <= res.makespan),
            "policy {name}"
        );
    }
}

/// The engine's makespan must dominate each processor's own certified
/// minimum service time (it cannot serve faster than all-hits).
#[test]
fn completions_respect_per_processor_floors() {
    let p = params();
    let w = mixed_workload(1000);
    let mut det = DetPar::new(&p);
    let res = run_engine(&mut det, w.seqs(), &p, &EngineOpts::default()).unwrap();
    for (x, seq) in w.seqs().iter().enumerate() {
        let floor = seq.len() as u64 + (p.s - 1) * min_misses(seq, p.k);
        assert!(
            res.completions[x] >= floor,
            "proc {x}: completion {} below Belady floor {floor}",
            res.completions[x]
        );
    }
}

/// DET-PAR stays within its documented memory factor and is audited
/// well-rounded on real runs.
#[test]
fn det_par_is_well_rounded_in_practice() {
    let p = params();
    let w = mixed_workload(2000);
    let mut det = DetPar::new(&p);
    let opts = EngineOpts {
        record_timelines: true,
        ..Default::default()
    };
    let res = run_engine(&mut det, w.seqs(), &p, &opts).unwrap();
    assert!(res.peak_memory <= DetPar::MEMORY_FACTOR * p.k);
    let report = check_well_rounded(
        res.timelines.as_ref().unwrap(),
        &res.completions,
        det.phases(),
        &p,
        4.0,
    );
    assert!(
        report.ok,
        "DET-PAR failed its own audit: {:?}",
        report.violations
    );
}

/// RAND-PAR is deterministic per seed and varies across seeds.
#[test]
fn rand_par_seeding() {
    let p = params();
    let w = mixed_workload(800);
    let run = |seed: u64| {
        let mut rp = RandPar::new(&p, seed);
        run_engine(&mut rp, w.seqs(), &p, &EngineOpts::default())
            .unwrap()
            .makespan
    };
    assert_eq!(run(5), run(5));
    let different = (0..8).map(run).collect::<std::collections::HashSet<_>>();
    assert!(different.len() > 1, "seeds produced identical makespans");
}

/// Compartmentalized (paper-WLOG) runs are never faster than resize
/// semantics, for every policy.
#[test]
fn compartmentalization_only_hurts() {
    let p = params();
    let w = mixed_workload(800);
    for seed in [1u64, 2] {
        let mut a = RandPar::new(&p, seed);
        let plain = run_engine(&mut a, w.seqs(), &p, &EngineOpts::default()).unwrap();
        let mut b = RandPar::new(&p, seed);
        let comp = run_engine(
            &mut b,
            w.seqs(),
            &p,
            &EngineOpts {
                compartmentalized: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(comp.makespan >= plain.makespan);
    }
}

/// The shared-LRU baseline and the engine agree on trivial single-processor
/// inputs.
#[test]
fn engines_agree_on_single_processor_full_cache() {
    let p = ModelParams::new(1, 64, 10);
    let seq: Vec<PageId> = {
        let mut b = SeqBuilder::new(ProcId(0), 3);
        b.cyclic(16, 500);
        b.build()
    };
    let shared = run_shared_lru(std::slice::from_ref(&seq), p.k, p.s);
    let mut det = DetPar::new(&p);
    let engine = run_engine(
        &mut det,
        std::slice::from_ref(&seq),
        &p,
        &EngineOpts::default(),
    )
    .unwrap();
    // DET-PAR gives the single processor the whole cache; identical timing.
    assert_eq!(shared.makespan, engine.makespan);
    assert_eq!(shared.stats.misses, engine.stats.misses);
}

/// Trace round-trip preserves engine results exactly.
#[test]
fn trace_round_trip_preserves_results() {
    let p = params();
    let w = mixed_workload(400);
    let text = parapage::workloads::trace::to_string(&w);
    let w2 = parapage::workloads::trace::from_str(&text).unwrap();
    let mut a = DetPar::new(&p);
    let r1 = run_engine(&mut a, w.seqs(), &p, &EngineOpts::default()).unwrap();
    let mut b = DetPar::new(&p);
    let r2 = run_engine(&mut b, w2.seqs(), &p, &EngineOpts::default()).unwrap();
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.completions, r2.completions);
}
