//! Cross-crate fault-tolerance tests: the degraded-mode contract from
//! DESIGN.md. Under injected memory pressure `k -> k'`, a raw paper policy
//! keeps allocating against `k` and trips the engine's typed limit error,
//! while the same policy wrapped in `HardenedAllocator` completes the whole
//! workload inside the shrunken budget.

use parapage::prelude::*;

fn params() -> ModelParams {
    ModelParams::new(8, 64, 10)
}

fn workload(len: usize) -> Workload {
    let specs: Vec<SeqSpec> = (0..8)
        .map(|x| {
            if x % 2 == 0 {
                SeqSpec::Cyclic { width: 24, len }
            } else {
                SeqSpec::Zipf {
                    universe: 64,
                    theta: 0.9,
                    len,
                }
            }
        })
        .collect();
    build_workload(&specs, 2024)
}

/// Pressure from t=0 shrinks the cache to k' = k/4. DET-PAR's schedule is
/// built for k, so the unwrapped policy must hit the typed limit error —
/// not a panic, not a silent wrong answer.
#[test]
fn raw_det_par_trips_the_shrunk_memory_limit() {
    let p = params();
    let w = workload(1500);
    let k_prime = p.k / 4;
    let plan = FaultPlan::new(vec![FaultEvent::MemoryPressure {
        at: 0,
        new_limit: k_prime,
    }]);

    let err = run_engine_faults(
        &mut DetPar::new(&p),
        w.seqs(),
        &p,
        &EngineOpts::default(),
        &plan,
    )
    .unwrap_err();
    assert!(
        matches!(err, EngineError::MemoryLimitExceeded { limit, .. } if limit == k_prime),
        "expected MemoryLimitExceeded at {k_prime}, got: {err}"
    );
}

/// The same policy, same plan, wrapped in `HardenedAllocator`: the run
/// completes every request and its peak memory stays within k'.
#[test]
fn hardened_det_par_completes_within_the_shrunk_budget() {
    let p = params();
    let w = workload(1500);
    let k_prime = p.k / 4;
    let plan = FaultPlan::new(vec![FaultEvent::MemoryPressure {
        at: 0,
        new_limit: k_prime,
    }]);

    let mut hard = HardenedAllocator::new(DetPar::new(&p), p.k);
    let res = run_engine_faults(&mut hard, w.seqs(), &p, &EngineOpts::default(), &plan)
        .expect("hardened DET-PAR must survive memory pressure");

    assert_eq!(res.stats.accesses(), w.total_requests());
    assert!(
        res.peak_memory <= k_prime,
        "peak {} exceeds shrunk budget {k_prime}",
        res.peak_memory
    );
    assert_eq!(res.faults_injected, 1);
    assert!(
        res.completions.iter().all(|&c| c > 0 && c <= res.makespan),
        "every processor must finish"
    );
}

/// Mid-run pressure: the raw policy dies after the event while the
/// hardened one adapts and finishes, at some makespan cost over clean.
#[test]
fn mid_run_pressure_is_survivable_only_when_hardened() {
    let p = params();
    let w = workload(1500);
    let opts = EngineOpts::default();

    let clean =
        run_engine(&mut DetPar::new(&p), w.seqs(), &p, &opts).expect("clean run must succeed");
    let plan = FaultPlan::new(vec![FaultEvent::MemoryPressure {
        at: clean.makespan / 4,
        new_limit: p.k / 4,
    }]);

    let raw = run_engine_faults(&mut DetPar::new(&p), w.seqs(), &p, &opts, &plan);
    assert!(
        matches!(raw, Err(EngineError::MemoryLimitExceeded { .. })),
        "raw DET-PAR should oversubscribe after mid-run pressure"
    );

    let mut hard = HardenedAllocator::new(DetPar::new(&p), p.k);
    let res = run_engine_faults(&mut hard, w.seqs(), &p, &opts, &plan)
        .expect("hardened DET-PAR must survive mid-run pressure");
    assert_eq!(res.stats.accesses(), w.total_requests());
    assert!(
        res.makespan >= clean.makespan,
        "degraded mode cannot beat the clean run"
    );
    assert!(
        res.degraded_grants > 0,
        "the wrapper should have intervened"
    );
}

/// The named workload scenarios drive the full matrix the `faults` CLI
/// subcommand reports: every scenario must be runnable end to end with a
/// hardened policy, yielding either a clean completion or a typed error.
#[test]
fn all_named_scenarios_run_hardened_to_completion() {
    let p = params();
    let w = workload(800);
    let opts = EngineOpts::default();
    let clean = run_engine(&mut DetPar::new(&p), w.seqs(), &p, &opts).unwrap();

    for &name in FAULT_SCENARIOS {
        let events = fault_scenario(name, p.p, p.k, clean.makespan.max(1), 7)
            .expect("scenario names are exhaustive");
        let plan = FaultPlan::new(events);
        let mut hard = HardenedAllocator::new(DetPar::new(&p), p.k);
        let res = run_engine_faults(&mut hard, w.seqs(), &p, &opts, &plan)
            .unwrap_or_else(|e| panic!("scenario {name} failed hardened: {e}"));
        assert_eq!(res.stats.accesses(), w.total_requests(), "scenario {name}");
    }
}
