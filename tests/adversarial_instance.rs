//! Theorem 4 / Lemmas 8-9 on the adversarial instances: the Lemma-8
//! schedule upper-bounds OPT, every online green-style pager pays a ratio
//! that grows with p, and the instance's structural properties hold.

use parapage::prelude::*;

fn run_policy(alloc: &mut dyn BoxAllocator, inst: &AdversarialInstance) -> u64 {
    let params = inst.config.params();
    run_engine(alloc, inst.workload.seqs(), &params, &EngineOpts::default())
        .unwrap()
        .makespan
}

/// Lemma 8's schedule is feasible and therefore dominates the certified
/// lower bound but undercuts every online policy we implement.
#[test]
fn lemma8_sits_between_lower_bound_and_online_policies() {
    let cfg = AdversarialConfig::scaled(16, 64, 64, 0.05);
    let inst = AdversarialInstance::build(cfg);
    let params = cfg.params();
    let seqs = inst.workload.seqs();

    let opt = lemma8_makespan(&inst).makespan();
    let lb = per_proc_bound(seqs, params.k, params.s);
    assert!(opt >= lb, "schedule {opt} below certified bound {lb}");

    let mut det = DetPar::new(&params);
    let det_ms = run_policy(&mut det, &inst);
    assert!(
        det_ms >= opt,
        "online DET-PAR {det_ms} beat offline OPT {opt}"
    );

    let pagers: Vec<RandGreen> = (0..16).map(|i| RandGreen::new(&params, i)).collect();
    let mut bb = BlackboxGreenPacker::new(&params, pagers);
    let bb_ms = run_policy(&mut bb, &inst);
    assert!(bb_ms >= opt);
}

/// The measured online/OPT ratio grows monotonically with p — the shape of
/// the Ω(log p / log log p) lower bound.
#[test]
fn online_over_opt_ratio_grows_with_p() {
    let mut ratios = Vec::new();
    for &(p, k) in &[(8usize, 32usize), (32, 128)] {
        let cfg = AdversarialConfig::scaled(p, k, k as u64, 0.05);
        let inst = AdversarialInstance::build(cfg);
        let params = cfg.params();
        let opt = lemma8_makespan(&inst).makespan();
        let mut det = DetPar::new(&params);
        let ms = run_policy(&mut det, &inst);
        ratios.push(ms as f64 / opt as f64);
    }
    assert!(ratios[1] > ratios[0], "ratio did not grow: {ratios:?}");
    assert!(ratios[0] >= 1.0);
}

/// With the full cache and Belady replacement, a polluted prefix phase
/// misses only on polluters (plus compulsories) — the property OPT exploits
/// — while LRU at any box height thrashes, the property that pins online
/// algorithms.
#[test]
fn pollution_splits_belady_from_lru() {
    let cfg = AdversarialConfig::scaled(16, 64, 64, 0.05);
    let inst = AdversarialInstance::build(cfg);
    let meta = inst.prefixed[0];
    let seq = &inst.workload.seqs()[meta.proc.idx()];
    let phase_len = cfg.phase_len();
    let phase0 = &seq[..phase_len];

    // Belady with cache k: compulsory (k-1 repeaters) + polluters.
    let opt_misses = min_misses(phase0, cfg.k);
    let polluters = phase_len / cfg.p; // every p-th request in phase 0
    assert!(
        opt_misses <= (cfg.k as u64 - 1) + polluters as u64 + 1,
        "Belady misses {opt_misses} exceed compulsory+polluters"
    );

    // LRU with cache k thrashes: nearly every access misses.
    let curve = miss_curve(phase0, cfg.k);
    assert!(
        curve.misses(cfg.k) as f64 > 0.9 * phase_len as f64,
        "LRU should thrash: {} of {}",
        curve.misses(cfg.k),
        phase_len
    );
}

/// Suffixes progress at the same speed regardless of cache size (each page
/// requested once) — the construction's "cache-oblivious bulk".
#[test]
fn suffixes_are_cache_size_oblivious() {
    let cfg = AdversarialConfig::scaled(8, 32, 32, 0.05);
    let inst = AdversarialInstance::build(cfg);
    let suffix_only = inst.num_prefixed(); // first suffix-only processor
    let seq = &inst.workload.seqs()[suffix_only];
    for cap in [1usize, 4, 32] {
        assert_eq!(min_misses(seq, cap), seq.len() as u64);
    }
}

/// Lemma 8 structure: with s scaled like k, OPT's makespan is dominated by
/// the parallel suffix stage, not the serialized prefixes.
#[test]
fn opt_cost_is_suffix_dominated() {
    let cfg = AdversarialConfig::scaled(32, 128, 128, 0.05);
    let inst = AdversarialInstance::build(cfg);
    let sched = lemma8_makespan(&inst);
    assert!(
        sched.suffix_time > sched.prefix_time,
        "prefix {} should be cheaper than suffix {}",
        sched.prefix_time,
        sched.suffix_time
    );
}
