//! Cross-crate property tests: conservation laws of the execution engine
//! and ordering relations between policies, over randomized workloads.

use proptest::prelude::*;

use parapage::prelude::*;

/// Arbitrary small workload specs.
fn spec_strategy(max_len: usize) -> impl Strategy<Value = SeqSpec> {
    prop_oneof![
        (1usize..32, 1usize..max_len).prop_map(|(width, len)| SeqSpec::Cyclic { width, len }),
        (1usize..max_len).prop_map(|len| SeqSpec::Fresh { len }),
        (2usize..32, 1usize..max_len)
            .prop_map(|(universe, len)| SeqSpec::Uniform { universe, len }),
        (2usize..24, 2usize..max_len, 2usize..8)
            .prop_map(|(width, len, every)| { SeqSpec::Polluted { width, len, every } }),
    ]
}

fn workload_strategy(p: usize, max_len: usize) -> impl Strategy<Value = Workload> {
    (
        prop::collection::vec(spec_strategy(max_len), p..=p),
        any::<u64>(),
    )
        .prop_map(|(specs, seed)| build_workload(&specs, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine conservation laws hold for DET-PAR on arbitrary workloads:
    /// all requests served, completions dominated by makespan, per-processor
    /// Belady floors respected, memory within the documented factor.
    #[test]
    fn det_par_engine_invariants(w in workload_strategy(4, 400)) {
        let params = ModelParams::new(4, 32, 8);
        let mut det = DetPar::new(&params);
        let res = run_engine(&mut det, w.seqs(), &params, &EngineOpts::default()).unwrap();
        prop_assert_eq!(res.stats.accesses(), w.total_requests());
        prop_assert_eq!(
            res.makespan,
            res.completions.iter().copied().max().unwrap_or(0)
        );
        for (x, seq) in w.seqs().iter().enumerate() {
            if seq.is_empty() { continue; }
            let floor = seq.len() as u64 + (params.s - 1) * min_misses(seq, params.k);
            prop_assert!(res.completions[x] >= floor);
        }
        prop_assert!(res.peak_memory <= DetPar::MEMORY_FACTOR * params.k);
        prop_assert!(res.memory_integral >= res.stats.accesses() as u128);
    }

    /// RAND-PAR conservation laws, any seed.
    #[test]
    fn rand_par_engine_invariants(w in workload_strategy(4, 300), seed in any::<u64>()) {
        let params = ModelParams::new(4, 32, 8);
        let mut rp = RandPar::new(&params, seed);
        let res = run_engine(&mut rp, w.seqs(), &params, &EngineOpts::default()).unwrap();
        prop_assert_eq!(res.stats.accesses(), w.total_requests());
        prop_assert!(res.peak_memory <= 2 * params.k);
    }

    /// The certified lower bound never exceeds any policy's real makespan.
    #[test]
    fn lower_bound_is_sound(w in workload_strategy(4, 300)) {
        let params = ModelParams::new(4, 32, 8);
        let lb = per_proc_bound(w.seqs(), params.k, params.s);
        for mk in 0..3 {
            let mut alloc: Box<dyn BoxAllocator> = match mk {
                0 => Box::new(DetPar::new(&params)),
                1 => Box::new(StaticPartition::new(&params)),
                _ => Box::new(PropMissPartition::new(&params)),
            };
            let res = run_engine(alloc.as_mut(), w.seqs(), &params, &EngineOpts::default()).unwrap();
            prop_assert!(res.makespan >= lb, "policy {mk}: {} < {lb}", res.makespan);
        }
        // Shared LRU too.
        let res = run_shared_lru(w.seqs(), params.k, params.s);
        prop_assert!(res.makespan >= lb);
    }

    /// Green paging: every online policy's impact dominates the offline DP
    /// optimum, and richer sequences never reduce OPT impact.
    #[test]
    fn green_opt_is_a_floor(spec in spec_strategy(300), seed in any::<u64>()) {
        let params = ModelParams::new(4, 32, 8);
        let w = build_workload(std::slice::from_ref(&spec), seed);
        let seq = &w.seqs()[0];
        let opt = green_opt_normalized(seq, &params);
        let rg = run_green(&mut RandGreen::new(&params, seed), seq, &params);
        prop_assert!(rg.impact >= opt.impact);
        let ad = run_green(&mut AdaptiveGreen::new(&params), seq, &params);
        prop_assert!(ad.impact >= opt.impact);
        // Prefix monotonicity: OPT on a prefix costs no more.
        let half = &seq[..seq.len() / 2];
        let opt_half = green_opt_normalized(half, &params);
        prop_assert!(opt_half.impact <= opt.impact);
    }

    /// Workloads from the builders are always disjoint across processors.
    #[test]
    fn generated_workloads_are_disjoint(w in workload_strategy(6, 200)) {
        prop_assert!(w.is_disjoint());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential test: under a static partition with resize semantics,
    /// each processor's completion time equals the analytic LRU service
    /// time from the Mattson curve, plus at most `s−1` idle steps per grant
    /// (a miss that does not fit at a grant seam waits for the next grant;
    /// back-to-back equal-height grants otherwise preserve the cache).
    #[test]
    fn engine_matches_analytic_static_service_time(w in workload_strategy(4, 400)) {
        let params = ModelParams::new(4, 32, 8);
        let share = params.k / params.p;
        let grant_len = params.s * share as u64;
        let mut st = StaticPartition::new(&params);
        let res = run_engine(&mut st, w.seqs(), &params, &EngineOpts::default()).unwrap();
        for (x, seq) in w.seqs().iter().enumerate() {
            if seq.is_empty() { continue; }
            let expected = miss_curve(seq, share).service_time(share, params.s);
            let completion = res.completions[x];
            prop_assert!(completion >= expected, "proc {x}: {completion} < {expected}");
            let grants = completion / grant_len + 1;
            prop_assert!(
                completion <= expected + (params.s - 1) * grants,
                "proc {x}: {completion} > {expected} + slack({grants} grants)"
            );
        }
    }

    /// The interleaved (fixed-rate) model's per-processor miss counts under
    /// a static partition equal independent LRU miss counts.
    #[test]
    fn interleaved_model_equals_independent_lru(w in workload_strategy(3, 300)) {
        let alloc = vec![5usize, 5, 5];
        let res = parapage::sched::run_interleaved_partition(w.seqs(), &alloc);
        for (x, seq) in w.seqs().iter().enumerate() {
            prop_assert_eq!(res.misses[x], miss_curve(seq, 5).misses(5));
        }
    }
}
