//! Integration tests for the extended systems: UCP, the rebooting green
//! pager inside the black-box packer, the exact static optimum, fairness,
//! bandwidth limits, and alternative in-box replacement policies.

use parapage::analysis::{static_opt_makespan, static_opt_total_time};
use parapage::prelude::*;
use parapage::sched::run_shared_lru_bandwidth;

fn params() -> ModelParams {
    ModelParams::new(8, 64, 10)
}

fn skewed(len: usize) -> Workload {
    let specs: Vec<SeqSpec> = (0..8)
        .map(|x| {
            if x == 0 {
                SeqSpec::Cyclic { width: 48, len }
            } else {
                SeqSpec::Cyclic { width: 2, len }
            }
        })
        .collect();
    build_workload(&specs, 4)
}

#[test]
fn ucp_learns_the_skew_and_beats_static_equal() {
    let p = params();
    let w = skewed(4000);
    let mut ucp = UcpPartition::new(&p);
    let ucp_ms = run_engine(&mut ucp, w.seqs(), &p, &EngineOpts::default())
        .unwrap()
        .makespan;
    let mut st = StaticPartition::new(&p);
    let st_ms = run_engine(&mut st, w.seqs(), &p, &EngineOpts::default())
        .unwrap()
        .makespan;
    assert!(
        (ucp_ms as f64) < 0.6 * st_ms as f64,
        "UCP {ucp_ms} vs static {st_ms}"
    );
}

#[test]
fn static_opt_is_a_floor_for_static_policies_and_matches_engine() {
    let p = params();
    let w = skewed(2000);
    let opt = static_opt_makespan(w.seqs(), p.k, p.s);
    assert!(opt.allocation.iter().sum::<usize>() <= p.k);
    // The static-equal engine run can never beat the static optimum.
    let mut st = StaticPartition::new(&p);
    let st_ms = run_engine(&mut st, w.seqs(), &p, &EngineOpts::default())
        .unwrap()
        .makespan;
    assert!(st_ms >= opt.objective, "{st_ms} < {}", opt.objective);
    // Total-time optimum lower-bounds the sum of completions of the static
    // run as well.
    let tot = static_opt_total_time(w.seqs(), p.k, p.s);
    let mut st2 = StaticPartition::new(&p);
    let res = run_engine(&mut st2, w.seqs(), &p, &EngineOpts::default()).unwrap();
    let total: u64 = res.completions.iter().sum();
    assert!(total >= tot.objective);
}

#[test]
fn rebooting_green_tracks_survivors_inside_the_packer() {
    let p = params();
    // Heterogeneous lengths so completions stagger.
    let specs: Vec<SeqSpec> = (0..8)
        .map(|x| SeqSpec::Cyclic {
            width: 4,
            len: 500 * (x + 1),
        })
        .collect();
    let w = build_workload(&specs, 2);
    let pagers: Vec<RebootingGreen> = (0..8).map(|i| RebootingGreen::new(&p, i)).collect();
    let mut bb = BlackboxGreenPacker::new(&p, pagers);
    let res = run_engine(&mut bb, w.seqs(), &p, &EngineOpts::default()).unwrap();
    assert_eq!(res.stats.accesses(), w.total_requests());
}

#[test]
fn fair_packer_completes_and_stays_within_memory() {
    let p = params();
    let w = skewed(1500);
    let pagers: Vec<RandGreen> = (0..8).map(|i| RandGreen::new(&p, i)).collect();
    let mut bb = BlackboxGreenPacker::new(&p, pagers).with_fairness(2.0);
    let res = run_engine(&mut bb, w.seqs(), &p, &EngineOpts::default()).unwrap();
    assert_eq!(res.stats.accesses(), w.total_requests());
    // Policy budget k + filler budget k.
    assert!(res.peak_memory <= 2 * p.k, "peak {}", res.peak_memory);
}

#[test]
fn bandwidth_limits_compose_with_policies() {
    let w = skewed(1000);
    let unlimited = run_shared_lru(w.seqs(), 64, 10).makespan;
    let throttled = run_shared_lru_bandwidth(w.seqs(), 64, 10, 1).makespan;
    let generous = run_shared_lru_bandwidth(w.seqs(), 64, 10, 8).makespan;
    assert_eq!(unlimited, generous);
    assert!(throttled >= unlimited);
}

#[test]
fn lru_wlog_spread_is_bounded_on_cyclic_workloads() {
    // E13 as a test: swapping the in-box replacement policy changes DET-PAR
    // makespan by at most a small constant on loop workloads.
    let p = params();
    let w = skewed(1500);
    let opts = EngineOpts::default();
    let mut mk = Vec::new();
    {
        let mut det = DetPar::new(&p);
        mk.push(
            run_engine_with(&mut det, w.seqs(), &p, &opts, |_| LruCache::new(0))
                .unwrap()
                .makespan,
        );
    }
    {
        let mut det = DetPar::new(&p);
        mk.push(
            run_engine_with(&mut det, w.seqs(), &p, &opts, |_| FifoCache::new(0))
                .unwrap()
                .makespan,
        );
    }
    {
        let mut det = DetPar::new(&p);
        mk.push(
            run_engine_with(&mut det, w.seqs(), &p, &opts, |_| ClockCache::new(0))
                .unwrap()
                .makespan,
        );
    }
    let lo = *mk.iter().min().unwrap() as f64;
    let hi = *mk.iter().max().unwrap() as f64;
    assert!(hi / lo < 3.0, "spread {mk:?}");
}

#[test]
fn greedy_audit_accepts_rand_green_end_to_end() {
    let p = params();
    let seq = {
        let mut b = SeqBuilder::new(ProcId(0), 6);
        b.cyclic(4, 1000).cyclic(40, 1500).cyclic(8, 800);
        b.build()
    };
    let run = run_green(&mut RandGreen::new(&p, 3), &seq, &p);
    let audit = audit_greedy(&seq, &run.profile, &p.box_heights(), p.s, 10);
    assert!(audit.factor <= 4.0 * (p.p as f64).log2() + 4.0);
}

#[test]
fn hpc_patterns_flow_through_the_full_pipeline() {
    let p = params();
    let seqs: Vec<Vec<PageId>> = (0..8)
        .map(|x| {
            let mut b = SeqBuilder::new(ProcId(x), 3);
            match x % 3 {
                0 => b.sawtooth(24, 2000),
                1 => b.strided(8, 8, 2000),
                _ => b.tiled(8, 8, 4, 2000),
            };
            b.build()
        })
        .collect();
    let w = Workload::new(seqs);
    assert!(w.is_disjoint());
    let mut det = DetPar::new(&p);
    let res = run_engine(&mut det, w.seqs(), &p, &EngineOpts::default()).unwrap();
    assert_eq!(res.stats.accesses(), w.total_requests());
    let lb = per_proc_bound(w.seqs(), p.k, p.s);
    assert!(res.makespan >= lb);
}

#[test]
fn non_power_of_two_processor_counts_work() {
    // Regression test: the pagers must size per-processor state by the
    // actual p (only k is rounded by the WLOG), so p = 3, 5, 6 all run.
    for p_count in [3usize, 5, 6] {
        let params = ModelParams::new(p_count, 64, 10);
        let specs: Vec<SeqSpec> = (0..p_count)
            .map(|x| SeqSpec::Cyclic {
                width: 4 + x,
                len: 500,
            })
            .collect();
        let w = build_workload(&specs, 1);
        let mut det = DetPar::new(&params);
        let r1 = run_engine(&mut det, w.seqs(), &params, &EngineOpts::default()).unwrap();
        assert_eq!(r1.stats.accesses(), w.total_requests(), "det p={p_count}");
        let mut rnd = RandPar::new(&params, 7);
        let r2 = run_engine(&mut rnd, w.seqs(), &params, &EngineOpts::default()).unwrap();
        assert_eq!(r2.stats.accesses(), w.total_requests(), "rand p={p_count}");
        let pagers: Vec<RandGreen> = (0..p_count as u64)
            .map(|i| RandGreen::new(&params, i))
            .collect();
        let mut bb = BlackboxGreenPacker::new(&params, pagers);
        let r3 = run_engine(&mut bb, w.seqs(), &params, &EngineOpts::default()).unwrap();
        assert_eq!(r3.stats.accesses(), w.total_requests(), "bb p={p_count}");
    }
}

#[test]
fn srpt_minimizes_mean_completion_on_uneven_jobs() {
    let params = ModelParams::new(4, 64, 10);
    let lengths = [400usize, 800, 1600, 3200];
    let specs: Vec<SeqSpec> = lengths
        .iter()
        .map(|&len| SeqSpec::Cyclic { width: 40, len })
        .collect();
    let w = build_workload(&specs, 5);
    let mut srpt = SrptPartition::new(&params, &lengths);
    let srpt_res = run_engine(&mut srpt, w.seqs(), &params, &EngineOpts::default()).unwrap();
    let mut st = StaticPartition::new(&params);
    let st_res = run_engine(&mut st, w.seqs(), &params, &EngineOpts::default()).unwrap();
    assert!(
        srpt_res.mean_completion() < st_res.mean_completion(),
        "SRPT {:.0} should beat static {:.0} on mean completion",
        srpt_res.mean_completion(),
        st_res.mean_completion()
    );
}
