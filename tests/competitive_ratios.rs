//! Empirical validation of the competitive-ratio theorems: measured ratios
//! must stay within generous multiples of the predicted `O(log p)` shapes.
//! These are *shape* tests — constants are loose by design so the suite is
//! robust, while the experiment binaries report the precise curves.

use parapage::prelude::*;

/// Theorem 1: RAND-GREEN's expected impact ratio vs the offline green
/// optimum is O(log p).
#[test]
fn rand_green_ratio_scales_like_log_p() {
    let mut ratios = Vec::new();
    for &(p, k) in &[(4usize, 32usize), (16, 128), (64, 512)] {
        let params = ModelParams::new(p, k, 10);
        let seq: Vec<PageId> = {
            let mut b = SeqBuilder::new(ProcId(0), 5);
            b.cyclic(4, 1000).cyclic(k / 2, 2000).cyclic(k / 8, 1000);
            b.build()
        };
        let opt = green_opt_normalized(&seq, &params);
        let mut impacts = Vec::new();
        for seed in 0..6 {
            let run = run_green(&mut RandGreen::new(&params, seed), &seq, &params);
            impacts.push(run.impact as f64 / opt.impact as f64);
        }
        let mean = impacts.iter().sum::<f64>() / impacts.len() as f64;
        let log_p = (p as f64).log2();
        assert!(
            mean <= 3.0 * log_p + 3.0,
            "p={p}: RAND-GREEN ratio {mean:.2} exceeds 3·log p + 3"
        );
        ratios.push((log_p, mean));
    }
    // The ratio must not grow faster than linearly in log p.
    let fit = fit_linear(&ratios).unwrap();
    assert!(
        fit.slope < 3.0,
        "ratio grows too fast with log p: slope {:.2}",
        fit.slope
    );
}

/// Theorems 2 & 3: RAND-PAR and DET-PAR makespans stay within a generous
/// O(log p) multiple of the certified lower bound on mixed workloads.
#[test]
fn parallel_pagers_stay_within_log_p_of_lower_bound() {
    for &p in &[4usize, 8] {
        let k = 8 * p;
        let params = ModelParams::new(p, k, 10);
        let len = 800;
        let specs: Vec<SeqSpec> = (0..p)
            .map(|x| match x % 3 {
                0 => SeqSpec::Cyclic { width: k / 16, len },
                1 => SeqSpec::Cyclic { width: k / 2, len },
                _ => SeqSpec::Zipf {
                    universe: k / 4,
                    theta: 0.8,
                    len,
                },
            })
            .collect();
        let w = build_workload(&specs, 77);
        let lb = opt_lower_bound(w.seqs(), k, params.s);
        assert!(lb > 0);
        let log_p = (p as f64).log2().max(1.0);
        let budget = 8.0 * log_p + 8.0;

        let mut det = DetPar::new(&params);
        let det_ms = run_engine(&mut det, w.seqs(), &params, &EngineOpts::default())
            .unwrap()
            .makespan;
        assert!(
            (det_ms as f64) <= budget * lb as f64,
            "p={p}: DET-PAR ratio {:.2} over budget {budget:.2}",
            det_ms as f64 / lb as f64
        );

        let mut rnd = RandPar::new(&params, 3);
        let rnd_ms = run_engine(&mut rnd, w.seqs(), &params, &EngineOpts::default())
            .unwrap()
            .makespan;
        assert!(
            (rnd_ms as f64) <= budget * lb as f64,
            "p={p}: RAND-PAR ratio {:.2} over budget {budget:.2}",
            rnd_ms as f64 / lb as f64
        );
    }
}

/// Corollary 3: DET-PAR's mean completion time also stays within the
/// O(log p) budget of the mean-completion lower bound (approximated here by
/// the mean of per-processor Belady floors).
#[test]
fn det_par_mean_completion_is_competitive() {
    let p = 8usize;
    let k = 128;
    let params = ModelParams::new(p, k, 10);
    let len = 2000;
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| SeqSpec::Cyclic {
            width: 4 << (x % 4),
            len,
        })
        .collect();
    let w = build_workload(&specs, 13);
    let mut det = DetPar::new(&params);
    let res = run_engine(&mut det, w.seqs(), &params, &EngineOpts::default()).unwrap();
    let mean_floor: f64 = w
        .seqs()
        .iter()
        .map(|seq| (seq.len() as u64 + (params.s - 1) * min_misses(seq, k)) as f64)
        .sum::<f64>()
        / p as f64;
    let log_p = (p as f64).log2();
    assert!(
        res.mean_completion() <= (8.0 * log_p + 8.0) * mean_floor,
        "mean completion {:.0} vs floor {mean_floor:.0}",
        res.mean_completion()
    );
}

/// The paper's headline positioning: on a cache-hungry/skewed workload the
/// oblivious DET-PAR beats the static equal partition by a growing factor.
#[test]
fn det_par_beats_static_partition_on_skew() {
    let p = 8usize;
    let k = 128;
    let params = ModelParams::new(p, k, 10);
    let len = 4000;
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| {
            if x == 0 {
                SeqSpec::Cyclic {
                    width: 3 * k / 4,
                    len,
                }
            } else {
                SeqSpec::Cyclic { width: 4, len }
            }
        })
        .collect();
    let w = build_workload(&specs, 21);
    let mut det = DetPar::new(&params);
    let det_ms = run_engine(&mut det, w.seqs(), &params, &EngineOpts::default())
        .unwrap()
        .makespan;
    let mut st = StaticPartition::new(&params);
    let st_ms = run_engine(&mut st, w.seqs(), &params, &EngineOpts::default())
        .unwrap()
        .makespan;
    assert!(
        st_ms as f64 > 2.0 * det_ms as f64,
        "static {st_ms} vs det {det_ms}: expected a clear win"
    );
}

/// Observation 1 (E10): across many chunks, RAND-PAR's primary and secondary
/// parts have comparable total length and impact.
#[test]
fn rand_par_chunk_balance() {
    let p = 16usize;
    let params = ModelParams::new(p, 256, 10);
    let len = 3000;
    let specs: Vec<SeqSpec> = (0..p)
        .map(|_| SeqSpec::Uniform { universe: 64, len })
        .collect();
    let w = build_workload(&specs, 31);
    let mut rnd = RandPar::new(&params, 17);
    let _ = run_engine(&mut rnd, w.seqs(), &params, &EngineOpts::default()).unwrap();
    let chunks = rnd.chunks();
    assert!(
        chunks.len() >= 5,
        "need several chunks, got {}",
        chunks.len()
    );
    let l1: u128 = chunks.iter().map(|c| c.primary_len as u128).sum();
    let l2: u128 = chunks.iter().map(|c| c.secondary_len as u128).sum();
    let ratio = l2 as f64 / l1 as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "chunk length balance broken: {ratio:.2}"
    );
    let i1: u128 = chunks.iter().map(|c| c.primary_impact).sum();
    let i2: u128 = chunks.iter().map(|c| c.secondary_impact).sum();
    let iratio = i2 as f64 / i1 as f64;
    assert!(
        (0.1..10.0).contains(&iratio),
        "chunk impact balance broken: {iratio:.2}"
    );
}
