#!/usr/bin/env bash
# Perf-trajectory benchmark: builds the release CLI and runs the fixed
# `parapage bench` recipe, writing BENCH_5.json at the repo root.
#
# Usage: scripts/bench.sh [--quick] [--threads N] [--seed N] [--out FILE]
#                         [--baseline BENCH_n.json] [--profile]
# (flags pass through to `parapage bench`).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p parapage-cli
exec cargo run --release -q -p parapage-cli -- bench "$@"
