#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, the full test suite, and the
# conformance oracle. Run from anywhere; works on the repo this script
# lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> pool tests (vendored rayon shim)"
cargo test -q -p rayon

echo "==> parapage conform --quick"
cargo run -q -p parapage-cli --release -- conform --quick

echo "==> parapage conform --concurrent --quick (schedule exploration)"
cargo run -q -p parapage-cli --release -- conform --concurrent --quick

echo "==> parapage chaos --quick (crash-recovery matrix)"
cargo run -q -p parapage-cli --release -- chaos --quick

echo "==> parapage chaos --quick --wal (WAL corruption matrix)"
cargo run -q -p parapage-cli --release -- chaos --quick --wal

echo "==> ops regression floors (release microbench pins)"
cargo test -q -p parapage-bench --release --test ops_regression

echo "==> parapage bench --quick (smoke + determinism + ops-floor gate)"
cargo run -q -p parapage-cli --release -- bench --quick --out /tmp/parapage-bench-smoke.json

echo "==> parapage chaos --quick --net (network chaos matrix)"
cargo run -q -p parapage-cli --release -- chaos --quick --net

echo "==> parapage drive (serve smoke: in-process server, clean shutdown)"
cargo run -q -p parapage-cli --release -- drive --requests 50000 --tenants 3 \
  --batches 2 --expect-clean

echo "==> parapage drive --fault (recovery smoke: severed connections absorbed)"
cargo run -q -p parapage-cli --release -- drive --requests 50000 --tenants 3 \
  --batches 2 --fault cut-send --expect-clean

echo "All checks passed."
