//! Property tests for the workload generators.

use proptest::prelude::*;

use parapage_cache::ProcId;
use parapage_workloads::adversarial::{AdversarialConfig, AdversarialInstance};
use parapage_workloads::{build_workload, trace, SeqBuilder, SeqSpec};

fn spec_strategy() -> impl Strategy<Value = SeqSpec> {
    prop_oneof![
        (1usize..20, 0usize..200).prop_map(|(width, len)| SeqSpec::Cyclic { width, len }),
        (0usize..150).prop_map(|len| SeqSpec::Fresh { len }),
        (1usize..30, 0usize..150).prop_map(|(universe, len)| SeqSpec::Uniform { universe, len }),
        (1usize..25, 0usize..150, 0.0f64..1.5).prop_map(|(universe, len, theta)| {
            SeqSpec::Zipf {
                universe,
                theta,
                len,
            }
        }),
        (2usize..20, 0usize..120, 2usize..9).prop_map(|(width, len, every)| SeqSpec::Polluted {
            width,
            len,
            every
        }),
        (1usize..16, 0.0f64..0.3, 0usize..120).prop_map(|(width, drift, len)| SeqSpec::Drift {
            width,
            drift,
            len
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated lengths always match the declared spec lengths, and
    /// workloads are always disjoint across processors.
    #[test]
    fn specs_generate_exact_lengths(
        specs in prop::collection::vec(spec_strategy(), 1..6),
        seed in any::<u64>(),
    ) {
        let w = build_workload(&specs, seed);
        prop_assert_eq!(w.p(), specs.len());
        for (seq, spec) in w.seqs().iter().zip(&specs) {
            prop_assert_eq!(seq.len(), spec.len());
        }
        prop_assert!(w.is_disjoint());
    }

    /// Trace serialization round-trips every generated workload exactly.
    #[test]
    fn traces_round_trip(
        specs in prop::collection::vec(spec_strategy(), 1..4),
        seed in any::<u64>(),
    ) {
        let w = build_workload(&specs, seed);
        let text = trace::to_string(&w);
        let back = trace::from_str(&text).unwrap();
        prop_assert_eq!(w, back);
    }

    /// Adversarial instances have the documented structure for any valid
    /// (p, k, alpha).
    #[test]
    fn adversarial_structure(pe in 2u32..5, ke_extra in 1u32..3, alpha in 0.01f64..0.08) {
        let p = 1usize << pe;
        let k = p << ke_extra;
        let cfg = AdversarialConfig::scaled(p, k, k as u64, alpha);
        let inst = AdversarialInstance::build(cfg);
        prop_assert_eq!(inst.workload.p(), p);
        prop_assert!(inst.workload.is_disjoint());
        prop_assert!(inst.num_prefixed() >= 1);
        prop_assert!(inst.num_prefixed() <= p / 2);
        let phase_len = cfg.phase_len();
        let suffix_len = cfg.suffix_phases * phase_len;
        for m in &inst.prefixed {
            let seq = &inst.workload.seqs()[m.proc.idx()];
            prop_assert_eq!(seq.len(), m.phases * phase_len + suffix_len);
        }
        // Suffix-only sequences are all-fresh.
        let tail = &inst.workload.seqs()[p - 1];
        let distinct: std::collections::HashSet<_> = tail.iter().collect();
        prop_assert_eq!(distinct.len(), tail.len());
    }

    /// HPC patterns stay within their reserved ranges and are disjoint from
    /// a following fresh stream.
    #[test]
    fn hpc_patterns_are_well_contained(rows in 1usize..8, cols in 1usize..8, len in 1usize..200) {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.strided(rows, cols, len).fresh_stream(10);
        let seq = b.build();
        let strided: std::collections::HashSet<_> = seq[..len].iter().collect();
        prop_assert!(strided.len() <= rows * cols);
        prop_assert!(seq[len..].iter().all(|p| !strided.contains(p)));
    }
}
