//! HPC-flavoured access patterns: the loop nests and strided walks that
//! parallel programs actually issue, complementing the paper's abstract
//! repeater/polluter building blocks.

use parapage_cache::{PageId, ProcId};

use crate::gen::SeqBuilder;

impl SeqBuilder {
    /// A sawtooth scan: sweep `0..width` then back down, repeatedly —
    /// the classic pattern on which LRU performs well but FIFO badly.
    pub fn sawtooth(&mut self, width: usize, len: usize) -> &mut Self {
        assert!(width >= 1);
        let period = if width > 1 { 2 * width - 2 } else { 1 };
        self.pattern(width as u64, len, move |i| {
            let ph = i % period;
            (if ph < width { ph } else { period - ph }) as u64
        })
    }

    /// A strided walk over a `rows × cols` page matrix in column-major
    /// order while pages are laid out row-major — i.e. stride `cols`.
    /// This is the memory behaviour of a transposed matrix sweep: reuse
    /// distance `rows·cols`, defeating any cache smaller than a full
    /// column set.
    pub fn strided(&mut self, rows: usize, cols: usize, len: usize) -> &mut Self {
        assert!(rows >= 1 && cols >= 1);
        let total = rows * cols;
        self.pattern(total as u64, len, move |i| {
            let t = i % total;
            let (r, c) = (t % rows, t / rows);
            (r * cols + c) as u64
        })
    }

    /// Blocked (tiled) matrix sweep: visit `tile × tile` blocks of a
    /// `rows × cols` row-major matrix, fully scanning each tile before
    /// moving on — the cache-friendly counterpart of [`Self::strided`].
    pub fn tiled(&mut self, rows: usize, cols: usize, tile: usize, len: usize) -> &mut Self {
        assert!(tile >= 1 && rows % tile == 0 && cols % tile == 0);
        let tiles_per_row = cols / tile;
        let per_tile = tile * tile;
        let total = rows * cols;
        self.pattern(total as u64, len, move |i| {
            let t = i % total;
            let tile_idx = t / per_tile;
            let (tr, tc) = (tile_idx / tiles_per_row, tile_idx % tiles_per_row);
            let within = t % per_tile;
            let (r, c) = (within / tile, within % tile);
            ((tr * tile + r) * cols + (tc * tile + c)) as u64
        })
    }

    /// Generic helper: `len` requests with local page `f(i)` drawn from a
    /// reserved range of `width` pages.
    fn pattern(&mut self, width: u64, len: usize, f: impl Fn(usize) -> u64) -> &mut Self {
        let base = self.reserve_range(width);
        for i in 0..len {
            let local = f(i);
            debug_assert!(local < width);
            let pg = PageId::namespaced(self.proc_id(), base + local);
            self.push_page(pg);
        }
        self
    }
}

/// Builds `p` sequences that **share** a common hot page set — the
/// future-work scenario the paper's conclusion poses ("sequences running on
/// different processors can share pages").
///
/// Each processor interleaves a private cycle of `private_width` pages with
/// accesses into one shared cycle of `shared_width` pages (every
/// `share_every`-th request). The result intentionally violates the paper's
/// disjointness assumption, so experiments can measure how the
/// disjointness-based algorithms degrade versus a shared cache that
/// deduplicates.
pub fn shared_hotset_workload(
    p: usize,
    private_width: usize,
    shared_width: usize,
    share_every: usize,
    len: usize,
) -> Vec<Vec<PageId>> {
    assert!(share_every >= 2);
    // Shared pages live in a dedicated namespace no generator uses.
    let shared_ns = ProcId(0xFFFF);
    (0..p)
        .map(|x| {
            let mut out = Vec::with_capacity(len);
            let mut priv_idx = 0usize;
            let mut shared_idx = x; // desynchronize processors slightly
            for i in 0..len {
                if (i + 1) % share_every == 0 {
                    out.push(PageId::namespaced(
                        shared_ns,
                        (shared_idx % shared_width) as u64,
                    ));
                    shared_idx += 1;
                } else {
                    out.push(PageId::namespaced(
                        ProcId(x as u32),
                        (priv_idx % private_width) as u64,
                    ));
                    priv_idx += 1;
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct(seq: &[PageId]) -> usize {
        seq.iter().collect::<HashSet<_>>().len()
    }

    #[test]
    fn sawtooth_reverses_direction() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.sawtooth(4, 12);
        let seq = b.build();
        let locals: Vec<u64> = seq.iter().map(|p| p.0 & 0xFFFF).collect();
        assert_eq!(locals, vec![0, 1, 2, 3, 2, 1, 0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn sawtooth_width_one() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.sawtooth(1, 5);
        assert_eq!(distinct(&b.build()), 1);
    }

    #[test]
    fn strided_has_full_reuse_distance() {
        // 4x8 matrix walked with stride 8: consecutive accesses are 8
        // apart; the same page repeats only after all 32.
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.strided(4, 8, 64);
        let seq = b.build();
        assert_eq!(distinct(&seq[..32]), 32);
        assert_eq!(seq[0], seq[32]);
        let l0 = seq[0].0 & 0xFFFF;
        let l1 = seq[1].0 & 0xFFFF;
        assert_eq!(l1 - l0, 8);
    }

    #[test]
    fn tiled_touches_each_tile_contiguously() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.tiled(4, 4, 2, 16);
        let seq = b.build();
        // First 4 accesses stay inside the first 2x2 tile = pages
        // {0,1,4,5}.
        let first: HashSet<u64> = seq[..4].iter().map(|p| p.0 & 0xFFFF).collect();
        assert_eq!(first, HashSet::from([0, 1, 4, 5]));
        assert_eq!(distinct(&seq), 16);
    }

    #[test]
    fn shared_workload_overlaps_exactly_on_the_hotset() {
        let seqs = shared_hotset_workload(4, 8, 4, 3, 300);
        assert_eq!(seqs.len(), 4);
        let sets: Vec<HashSet<PageId>> = seqs.iter().map(|s| s.iter().copied().collect()).collect();
        let shared: HashSet<PageId> = sets[0].intersection(&sets[1]).copied().collect();
        assert!(!shared.is_empty(), "no sharing happened");
        assert!(shared.len() <= 4);
        // All shared pages come from the shared namespace.
        assert!(shared.iter().all(|p| p.namespace() == ProcId(0xFFFF)));
        // Private pages do not overlap.
        let private0: HashSet<_> = sets[0].difference(&shared).collect();
        let private1: HashSet<_> = sets[1].difference(&shared).collect();
        assert!(private0.is_disjoint(&private1));
    }

    #[test]
    fn share_every_controls_the_mix() {
        let seqs = shared_hotset_workload(1, 8, 4, 5, 100);
        let shared_count = seqs[0]
            .iter()
            .filter(|p| p.namespace() == ProcId(0xFFFF))
            .count();
        assert_eq!(shared_count, 20);
    }
}
