//! Per-processor request-sequence generators.
//!
//! [`SeqBuilder`] namespaces every page with the owning processor (keeping
//! workloads disjoint) and tracks a fresh-page counter so that *polluter*
//! pages — pages requested exactly once, the paper's cache-poisoning
//! device — never collide with repeater pages.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use parapage_cache::{PageId, ProcId};

/// Local-page-number base for fresh/polluter pages, far above any repeater
/// or working-set range used by the generators.
const FRESH_BASE: u64 = 1 << 40;

/// A generator of one processor's request sequence.
///
/// All patterns can be concatenated freely; page ranges never collide:
/// structured patterns draw local pages from a per-call range below
/// 2⁴⁰ chosen via `range_key`, while fresh pages count up from 2⁴⁰.
#[derive(Debug)]
pub struct SeqBuilder {
    proc: ProcId,
    seq: Vec<PageId>,
    fresh_counter: u64,
    /// Base for the next structured range, bumped per pattern call so that
    /// successive patterns use disjoint working sets unless the caller
    /// explicitly reuses a range.
    range_base: u64,
    rng: StdRng,
}

impl SeqBuilder {
    /// Creates a builder for processor `proc` with a deterministic RNG.
    pub fn new(proc: ProcId, seed: u64) -> Self {
        SeqBuilder {
            proc,
            seq: Vec::new(),
            fresh_counter: 0,
            range_base: 0,
            rng: StdRng::seed_from_u64(seed ^ ((proc.0 as u64) << 32)),
        }
    }

    /// Finishes and returns the sequence.
    pub fn build(self) -> Vec<PageId> {
        self.seq
    }

    /// Current length of the sequence under construction.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` when nothing has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    fn page(&mut self, local: u64) -> PageId {
        PageId::namespaced(self.proc, local)
    }

    fn fresh_page(&mut self) -> PageId {
        let id = FRESH_BASE + self.fresh_counter;
        self.fresh_counter += 1;
        self.page(id)
    }

    /// Reserves a structured range of `width` local pages and returns its
    /// base (shared with the `hpc` pattern extensions).
    pub(crate) fn reserve_range(&mut self, width: u64) -> u64 {
        self.reserve(width)
    }

    /// The processor this builder generates for.
    pub(crate) fn proc_id(&self) -> ProcId {
        self.proc
    }

    /// Appends one page to the sequence under construction.
    pub(crate) fn push_page(&mut self, page: PageId) {
        self.seq.push(page);
    }

    /// Reserves a structured range of `width` local pages and returns its
    /// base.
    fn reserve(&mut self, width: u64) -> u64 {
        let base = self.range_base;
        self.range_base += width;
        assert!(self.range_base < FRESH_BASE, "structured ranges exhausted");
        base
    }

    /// `len` requests cycling over `width` pages (the paper's *repeaters*).
    pub fn cyclic(&mut self, width: usize, len: usize) -> &mut Self {
        let base = self.reserve(width as u64);
        for i in 0..len {
            let pg = self.page(base + (i % width) as u64);
            self.seq.push(pg);
        }
        self
    }

    /// A polluted cycle: like [`Self::cyclic`], but every `pollute_every`-th
    /// request (1-indexed) is replaced by a fresh *polluter* page — the
    /// exact prefix-phase pattern of the paper's Theorem-4 construction.
    ///
    /// # Panics
    /// If `pollute_every == 0`.
    pub fn polluted_cycle(&mut self, width: usize, len: usize, pollute_every: usize) -> &mut Self {
        assert!(pollute_every >= 1);
        let base = self.reserve(width as u64);
        let mut cycle_idx = 0usize;
        for i in 0..len {
            if (i + 1) % pollute_every == 0 {
                let pg = self.fresh_page();
                self.seq.push(pg);
            } else {
                let pg = self.page(base + (cycle_idx % width) as u64);
                self.seq.push(pg);
                cycle_idx += 1;
            }
        }
        self
    }

    /// `len` requests to brand-new pages (the paper's *suffix* pattern:
    /// every page requested exactly once, so progress is cache-oblivious).
    pub fn fresh_stream(&mut self, len: usize) -> &mut Self {
        for _ in 0..len {
            let pg = self.fresh_page();
            self.seq.push(pg);
        }
        self
    }

    /// A sequential scan over `universe` pages, wrapping around, `len`
    /// requests (equivalent to [`Self::cyclic`]; kept for intent-revealing
    /// call sites).
    pub fn scan(&mut self, universe: usize, len: usize) -> &mut Self {
        self.cyclic(universe, len)
    }

    /// `len` i.i.d. uniform requests over `universe` pages.
    pub fn uniform(&mut self, universe: usize, len: usize) -> &mut Self {
        let base = self.reserve(universe as u64);
        for _ in 0..len {
            let v = self.rng.random_range(0..universe as u64);
            let pg = self.page(base + v);
            self.seq.push(pg);
        }
        self
    }

    /// `len` i.i.d. Zipf(θ)-distributed requests over `universe` pages
    /// (rank-1 page most popular). θ = 0 is uniform; θ ≈ 1 is the classic
    /// web/database skew.
    pub fn zipf(&mut self, universe: usize, theta: f64, len: usize) -> &mut Self {
        assert!(universe >= 1);
        let base = self.reserve(universe as u64);
        // Precomputed CDF; fine for the universes used here (≤ ~1e6).
        let mut cdf = Vec::with_capacity(universe);
        let mut acc = 0.0f64;
        for rank in 1..=universe {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for _ in 0..len {
            let u: f64 = self.rng.random::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u).min(universe - 1);
            let pg = self.page(base + idx as u64);
            self.seq.push(pg);
        }
        self
    }

    /// Phased working sets: for each `(width, len)` phase, cycle over a
    /// fresh range of `width` pages for `len` requests. This is the
    /// marginal-benefit-fluctuation workload the paper's introduction
    /// motivates (processors whose memory needs change over time).
    pub fn phased(&mut self, phases: &[(usize, usize)]) -> &mut Self {
        for &(width, len) in phases {
            self.cyclic(width, len);
        }
        self
    }

    /// A drifting working set: a window of `width` pages slides forward by
    /// one page with probability `drift` per request; requests are uniform
    /// within the window.
    pub fn drift(&mut self, width: usize, drift: f64, len: usize) -> &mut Self {
        assert!(width >= 1);
        let base = self.reserve(width as u64 + len as u64 + 1);
        let mut lo = 0u64;
        for _ in 0..len {
            if self.rng.random::<f64>() < drift {
                lo += 1;
            }
            let v = lo + self.rng.random_range(0..width as u64);
            let pg = self.page(base + v);
            self.seq.push(pg);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct(seq: &[PageId]) -> usize {
        seq.iter().collect::<HashSet<_>>().len()
    }

    #[test]
    fn cyclic_touches_exactly_width_pages() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.cyclic(8, 100);
        let seq = b.build();
        assert_eq!(seq.len(), 100);
        assert_eq!(distinct(&seq), 8);
        assert_eq!(seq[0], seq[8]);
    }

    #[test]
    fn polluted_cycle_inserts_unique_polluters() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.polluted_cycle(4, 40, 5);
        let seq = b.build();
        // 8 polluters among 40 requests, each seen exactly once.
        let mut counts = std::collections::HashMap::new();
        for p in &seq {
            *counts.entry(*p).or_insert(0) += 1;
        }
        let singletons = counts.values().filter(|&&c| c == 1).count();
        assert_eq!(singletons, 8);
        // Every 5th position is a polluter.
        assert_eq!(counts[&seq[4]], 1);
        assert_eq!(counts[&seq[9]], 1);
        // Repeater positions cycle over 4 pages.
        assert_eq!(distinct(&seq), 4 + 8);
    }

    #[test]
    fn fresh_stream_is_all_distinct() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.fresh_stream(50);
        let seq = b.build();
        assert_eq!(distinct(&seq), 50);
    }

    #[test]
    fn patterns_use_disjoint_ranges() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.cyclic(4, 8).cyclic(4, 8);
        let seq = b.build();
        // Two cyclic calls -> 8 distinct pages, not 4.
        assert_eq!(distinct(&seq), 8);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut b = SeqBuilder::new(ProcId(0), 7);
        b.zipf(100, 1.0, 20_000);
        let seq = b.build();
        let top = seq.iter().filter(|p| p.0 & 0xFFFF == 0).count();
        // Rank-1 page should get roughly 1/H_100 ≈ 19% of requests.
        assert!(top > 2000, "rank-1 got only {top}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut b = SeqBuilder::new(ProcId(0), 7);
        b.zipf(10, 0.0, 10_000);
        let seq = b.build();
        for v in 0..10u64 {
            let n = seq.iter().filter(|p| p.0 & 0xFFFF == v).count();
            assert!((700..1300).contains(&n), "page {v}: {n}");
        }
    }

    #[test]
    fn phased_switches_working_sets() {
        let mut b = SeqBuilder::new(ProcId(0), 1);
        b.phased(&[(4, 10), (8, 10)]);
        let seq = b.build();
        assert_eq!(seq.len(), 20);
        assert_eq!(distinct(&seq), 4 + 8);
        // No page crosses the phase boundary.
        let first: HashSet<_> = seq[..10].iter().collect();
        assert!(seq[10..].iter().all(|p| !first.contains(p)));
    }

    #[test]
    fn drift_slides_forward() {
        let mut b = SeqBuilder::new(ProcId(0), 3);
        b.drift(8, 0.5, 2000);
        let seq = b.build();
        // With drift 0.5 over 2000 requests the window moved ~1000 pages.
        assert!(distinct(&seq) > 300);
    }

    #[test]
    fn different_processors_are_disjoint() {
        let a = {
            let mut b = SeqBuilder::new(ProcId(0), 1);
            b.cyclic(8, 20).fresh_stream(5);
            b.build()
        };
        let bb = {
            let mut b = SeqBuilder::new(ProcId(1), 1);
            b.cyclic(8, 20).fresh_stream(5);
            b.build()
        };
        let sa: HashSet<_> = a.iter().collect();
        assert!(bb.iter().all(|p| !sa.contains(p)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut b = SeqBuilder::new(ProcId(2), 99);
            b.zipf(50, 0.8, 100).uniform(20, 50);
            b.build()
        };
        assert_eq!(mk(), mk());
    }
}
