//! Plain-text trace format for persisting workloads.
//!
//! The format is deliberately trivial (inspectable with standard tools, no
//! serialization dependency):
//!
//! ```text
//! parapage-trace v1
//! <p>
//! <len_0> <id id id …>
//! <len_1> <id id id …>
//! …
//! ```
//!
//! One line per processor; page ids are the raw `u64` values.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use parapage_cache::PageId;

use crate::seq::Workload;

const HEADER: &str = "parapage-trace v1";

/// Serializes a workload to the v1 text format.
pub fn to_string(w: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "{}", w.p());
    for seq in w.seqs() {
        let _ = write!(out, "{}", seq.len());
        for p in seq {
            let _ = write!(out, " {}", p.0);
        }
        out.push('\n');
    }
    out
}

/// Parses the v1 text format.
pub fn from_str(text: &str) -> Result<Workload, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let p: usize = lines
        .next()
        .ok_or("missing processor count")?
        .trim()
        .parse()
        .map_err(|e| format!("bad processor count: {e}"))?;
    let mut seqs = Vec::with_capacity(p);
    for x in 0..p {
        let line = lines
            .next()
            .ok_or_else(|| format!("missing line for processor {x}"))?;
        let mut toks = line.split_whitespace();
        let len: usize = toks
            .next()
            .ok_or_else(|| format!("missing length for processor {x}"))?
            .parse()
            .map_err(|e| format!("bad length for processor {x}: {e}"))?;
        let mut seq = Vec::with_capacity(len);
        for t in toks {
            let v: u64 = t
                .parse()
                .map_err(|e| format!("bad page id for processor {x}: {e}"))?;
            seq.push(PageId(v));
        }
        if seq.len() != len {
            return Err(format!(
                "processor {x}: declared {len} ids, found {}",
                seq.len()
            ));
        }
        seqs.push(seq);
    }
    Ok(Workload::new(seqs))
}

/// Writes a workload to a file.
pub fn save(w: &Workload, path: &Path) -> io::Result<()> {
    fs::write(path, to_string(w))
}

/// Reads a workload from a file.
pub fn load(path: &Path) -> io::Result<Workload> {
    let text = fs::read_to_string(path)?;
    from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_workload, SeqSpec};

    #[test]
    fn round_trips() {
        let w = build_workload(
            &[
                SeqSpec::Cyclic { width: 4, len: 12 },
                SeqSpec::Fresh { len: 5 },
            ],
            1,
        );
        let text = to_string(&w);
        let back = from_str(&text).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_str("nope\n1\n0\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        let text = format!("{HEADER}\n1\n3 1 2\n");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn empty_workload_round_trips() {
        let w = Workload::default();
        assert_eq!(from_str(&to_string(&w)).unwrap(), w);
    }

    #[test]
    fn file_round_trip() {
        let w = build_workload(&[SeqSpec::Fresh { len: 3 }], 1);
        let dir = std::env::temp_dir().join("parapage_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        save(&w, &path).unwrap();
        assert_eq!(load(&path).unwrap(), w);
    }
}
