//! The Theorem-4 adversarial instance builder (paper §4 + appendix).
//!
//! The construction forces any parallel pager that allocates via a
//! *greedily-green* black box into a `Ω(log p / log log p)` makespan
//! overhead, while an offline OPT finishes in `O(α·s·k²·log log p)`:
//!
//! * **Suffixes** — every sequence ends with `Θ(log log p)` phases of
//!   all-fresh pages (each page requested once). Suffixes progress at the
//!   same speed with any cache size, and they carry the bulk of the work, so
//!   optimality hinges on running them *in parallel*.
//! * **Prefixes** — `≈ p/log p` sequences additionally start with phases of
//!   a `(k−1)`-page repeater cycle sprinkled with polluters (one fresh page
//!   every `p/2^j` requests in phase `j`). The pollution level is tuned so a
//!   green allocator must serve prefixes with *minimum* boxes — a large box
//!   barely reduces misses (the polluters miss regardless) but costs far
//!   more impact. Prefixed sequences form families `F_i` (`2^i` sequences
//!   of `ℓ − log ℓ − i` phases), staggering prefix completions so that
//!   *some* prefix is always pinning the black-box pager to minimum boxes,
//!   serializing the suffixes behind it.
//!
//! OPT simply runs each prefix alone at full memory `k` (paying only the
//! polluter misses) and then all suffixes in parallel (Lemma 8).
//!
//! Paper-exact parameters make instances of astronomically large size
//! (`γ = 2kα` cycles of `k−1` requests per phase); [`AdversarialConfig`]
//! exposes `gamma` and `suffix_phases` directly so experiments can scale
//! the construction down while preserving its structure, as recorded in
//! DESIGN.md.

use parapage_cache::ProcId;
use parapage_core::{log2_ceil, ModelParams};

use crate::gen::SeqBuilder;
use crate::seq::Workload;

/// Parameters of the adversarial construction.
#[derive(Clone, Copy, Debug)]
pub struct AdversarialConfig {
    /// Number of processors (power of two, ≥ 4).
    pub p: usize,
    /// Cache size (power of two, ≥ 2p).
    pub k: usize,
    /// Miss penalty.
    pub s: u64,
    /// Repeater cycles per phase (the paper's `γ = 2kα`).
    pub gamma: usize,
    /// Number of suffix phases (the paper's `4·log ℓ`).
    pub suffix_phases: usize,
}

impl AdversarialConfig {
    /// The paper's parameterization with scale knob `alpha`
    /// (`γ = max(2, 2·α·k)`, `suffix phases = 4·⌈log log p⌉`).
    pub fn scaled(p: usize, k: usize, s: u64, alpha: f64) -> Self {
        assert!(
            p.is_power_of_two() && p >= 4,
            "p must be a power of two ≥ 4"
        );
        assert!(
            k.is_power_of_two() && k >= 2 * p,
            "k must be a power of two ≥ 2p"
        );
        let ell = log2_ceil(p).max(2);
        let log_ell = log2_ceil(ell as usize).max(1);
        AdversarialConfig {
            p,
            k,
            s,
            gamma: ((2.0 * alpha * k as f64) as usize).max(2),
            suffix_phases: 4 * log_ell as usize,
        }
    }

    /// The matching model parameters.
    pub fn params(&self) -> ModelParams {
        ModelParams::new(self.p, self.k, self.s)
    }

    /// `ℓ = log₂ p`.
    pub fn ell(&self) -> usize {
        log2_ceil(self.p).max(2) as usize
    }

    /// `log ℓ`.
    pub fn log_ell(&self) -> usize {
        log2_ceil(self.ell()).max(1) as usize
    }

    /// Requests per phase: `γ·(k−1)`.
    pub fn phase_len(&self) -> usize {
        self.gamma * (self.k - 1)
    }
}

/// Metadata about one prefixed sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixMeta {
    /// The processor carrying this sequence.
    pub proc: ProcId,
    /// Family index `i` (family `F_i` has `2^i` members).
    pub family: usize,
    /// Number of prefix phases this sequence runs.
    pub phases: usize,
}

/// A fully-built adversarial instance.
#[derive(Clone, Debug)]
pub struct AdversarialInstance {
    /// The construction parameters.
    pub config: AdversarialConfig,
    /// The request sequences (prefixed processors first).
    pub workload: Workload,
    /// Prefix metadata, one entry per prefixed processor.
    pub prefixed: Vec<PrefixMeta>,
}

impl AdversarialInstance {
    /// Builds the instance.
    ///
    /// Families `F_0, F_1, …` hold `2^i` sequences of `n_fam − i` prefix
    /// phases each, capped so prefixed sequences number at most `p/2`;
    /// phase `j` pollutes every `max(2, p/2^j)`-th request. All `p`
    /// sequences share the same suffix shape.
    pub fn build(config: AdversarialConfig) -> Self {
        let ell = config.ell();
        let log_ell = config.log_ell();
        let n_fam = ell.saturating_sub(log_ell).max(1);
        let phase_len = config.phase_len();
        let suffix_len = config.suffix_phases * phase_len;

        let mut prefixed = Vec::new();
        let mut seqs = Vec::with_capacity(config.p);
        let mut proc_next = 0u32;

        'families: for family in 0..n_fam {
            let members = 1usize << family;
            let phases = n_fam - family;
            for _ in 0..members {
                if prefixed.len() >= config.p / 2 {
                    break 'families;
                }
                let proc = ProcId(proc_next);
                proc_next += 1;
                let mut b = SeqBuilder::new(proc, 0xAD5E ^ proc.0 as u64);
                for j in 0..phases {
                    let n_j = (config.p >> j).max(2);
                    b.polluted_cycle(config.k - 1, phase_len, n_j);
                }
                b.fresh_stream(suffix_len);
                seqs.push(b.build());
                prefixed.push(PrefixMeta {
                    proc,
                    family,
                    phases,
                });
            }
        }
        // Remaining processors: suffix only.
        while (proc_next as usize) < config.p {
            let proc = ProcId(proc_next);
            proc_next += 1;
            let mut b = SeqBuilder::new(proc, 0xAD5E ^ proc.0 as u64);
            b.fresh_stream(suffix_len);
            seqs.push(b.build());
        }

        AdversarialInstance {
            config,
            workload: Workload::new(seqs),
            prefixed,
        }
    }

    /// Number of prefixed sequences.
    pub fn num_prefixed(&self) -> usize {
        self.prefixed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AdversarialConfig {
        AdversarialConfig::scaled(16, 64, 10, 0.05)
    }

    #[test]
    fn builds_p_disjoint_sequences() {
        let inst = AdversarialInstance::build(small());
        assert_eq!(inst.workload.p(), 16);
        assert!(inst.workload.is_disjoint());
    }

    #[test]
    fn family_sizes_double_and_phase_counts_shrink() {
        let cfg = AdversarialConfig::scaled(64, 256, 10, 0.02);
        let inst = AdversarialInstance::build(cfg);
        let mut by_family = std::collections::BTreeMap::new();
        for m in &inst.prefixed {
            *by_family.entry(m.family).or_insert(0usize) += 1;
        }
        let fams: Vec<_> = by_family.iter().collect();
        // F_0 has 1 member; F_{i+1} has twice F_i (until the p/2 cap).
        assert_eq!(*fams[0].1, 1);
        for w in fams.windows(2) {
            let (&f0, &c0) = w[0];
            let (&f1, &c1) = w[1];
            if c1 != inst.num_prefixed() - (1 << f1) + 1 {
                assert!(c1 <= 2 * c0 && f1 == f0 + 1);
            }
        }
        // Phase counts strictly decrease with family index.
        let phases: Vec<_> = inst.prefixed.iter().map(|m| (m.family, m.phases)).collect();
        for w in phases.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn prefixed_count_is_at_most_half() {
        let inst = AdversarialInstance::build(small());
        assert!(inst.num_prefixed() <= inst.config.p / 2);
        assert!(inst.num_prefixed() >= 1);
    }

    #[test]
    fn suffixes_have_identical_lengths_and_are_fresh() {
        let inst = AdversarialInstance::build(small());
        let suffix_len = inst.config.suffix_phases * inst.config.phase_len();
        // Suffix-only processors: whole sequence is the suffix.
        let x = inst.num_prefixed(); // first suffix-only proc
        let seq = &inst.workload.seqs()[x];
        assert_eq!(seq.len(), suffix_len);
        let distinct: std::collections::HashSet<_> = seq.iter().collect();
        assert_eq!(distinct.len(), seq.len(), "suffix must be all-fresh");
    }

    #[test]
    fn prefixed_sequences_are_longer_by_their_phases() {
        let inst = AdversarialInstance::build(small());
        let phase_len = inst.config.phase_len();
        let suffix_len = inst.config.suffix_phases * phase_len;
        for m in &inst.prefixed {
            let seq = &inst.workload.seqs()[m.proc.idx()];
            assert_eq!(seq.len(), m.phases * phase_len + suffix_len);
        }
    }

    #[test]
    fn pollution_level_doubles_per_phase() {
        // In phase j, polluters appear every p/2^j requests; verify via
        // singleton counts per phase window.
        let cfg = small();
        let inst = AdversarialInstance::build(cfg);
        let m = inst.prefixed[0];
        assert!(m.phases >= 2);
        let seq = &inst.workload.seqs()[m.proc.idx()];
        let phase_len = cfg.phase_len();
        let mut counts = std::collections::HashMap::new();
        for p in seq {
            *counts.entry(*p).or_insert(0u32) += 1;
        }
        let polluters_in_phase = |j: usize| {
            seq[j * phase_len..(j + 1) * phase_len]
                .iter()
                .filter(|p| counts[p] == 1)
                .count()
        };
        let p0 = polluters_in_phase(0);
        let p1 = polluters_in_phase(1);
        assert_eq!(p0, phase_len / cfg.p.max(2));
        assert_eq!(p1, phase_len / (cfg.p / 2).max(2));
        assert!(p1 >= 2 * p0 - 1);
    }
}
