//! The [`Workload`] container: one request sequence per processor.

use std::collections::HashSet;

use parapage_cache::{PageId, ProcId};

/// A complete parallel-paging input: `p` disjoint request sequences.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Workload {
    seqs: Vec<Vec<PageId>>,
}

impl Workload {
    /// Wraps per-processor sequences.
    pub fn new(seqs: Vec<Vec<PageId>>) -> Self {
        Workload { seqs }
    }

    /// The sequences, indexed by processor.
    pub fn seqs(&self) -> &[Vec<PageId>] {
        &self.seqs
    }

    /// Consumes the workload, yielding the sequences.
    pub fn into_seqs(self) -> Vec<Vec<PageId>> {
        self.seqs
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.seqs.len()
    }

    /// Sequence of one processor.
    pub fn seq(&self, x: ProcId) -> &[PageId] {
        &self.seqs[x.idx()]
    }

    /// Total requests across processors.
    pub fn total_requests(&self) -> u64 {
        self.seqs.iter().map(|s| s.len() as u64).sum()
    }

    /// Length of the longest sequence.
    pub fn max_len(&self) -> usize {
        self.seqs.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of distinct pages touched by processor `x`.
    pub fn distinct_pages(&self, x: ProcId) -> usize {
        self.seqs[x.idx()].iter().collect::<HashSet<_>>().len()
    }

    /// Checks the paper's disjointness requirement: no page appears in two
    /// processors' sequences.
    pub fn is_disjoint(&self) -> bool {
        let mut seen: HashSet<PageId> = HashSet::new();
        for seq in &self.seqs {
            let mine: HashSet<PageId> = seq.iter().copied().collect();
            if mine.iter().any(|p| seen.contains(p)) {
                return false;
            }
            seen.extend(mine);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let w = Workload::new(vec![
            vec![PageId(1), PageId(2), PageId(1)],
            vec![PageId(10)],
        ]);
        assert_eq!(w.p(), 2);
        assert_eq!(w.total_requests(), 4);
        assert_eq!(w.max_len(), 3);
        assert_eq!(w.distinct_pages(ProcId(0)), 2);
        assert_eq!(w.seq(ProcId(1)), &[PageId(10)]);
    }

    #[test]
    fn disjointness_detects_overlap() {
        let good = Workload::new(vec![vec![PageId(1)], vec![PageId(2)]]);
        assert!(good.is_disjoint());
        let bad = Workload::new(vec![vec![PageId(1)], vec![PageId(1)]]);
        assert!(!bad.is_disjoint());
    }

    #[test]
    fn empty_workload() {
        let w = Workload::default();
        assert_eq!(w.p(), 0);
        assert_eq!(w.total_requests(), 0);
        assert!(w.is_disjoint());
    }
}
