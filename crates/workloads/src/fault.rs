//! Deterministic, seedable fault *scenarios* for the execution engine.
//!
//! Each generator returns a plain `Vec<FaultEvent>` (the engine-side
//! `FaultPlan` lives in `parapage-sched`, which this crate does not depend
//! on — callers wrap the vector with `FaultPlan::new`). Generators are
//! parameterized by the model (`p`, `k`), a time `horizon` to spread events
//! over, and a `seed`; the same arguments always produce the same events,
//! which is what makes fault runs reproducible.
//!
//! The named scenarios mirror the failure classes of the fault model (see
//! DESIGN.md): processor stalls, fetch-latency spikes, memory pressure, and
//! a `chaos` mix of all three.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use parapage_cache::{ProcId, Time};
use parapage_core::FaultEvent;

/// Names accepted by [`fault_scenario`], in presentation order.
pub const FAULT_SCENARIOS: &[&str] = &["clean", "stalls", "spikes", "pressure", "chaos"];

/// Builds the named fault scenario over `[0, horizon)`.
///
/// Returns `None` for an unknown name; `"clean"` is the empty scenario.
pub fn fault_scenario(
    name: &str,
    p: usize,
    k: usize,
    horizon: Time,
    seed: u64,
) -> Option<Vec<FaultEvent>> {
    let events = match name {
        "clean" => Vec::new(),
        "stalls" => stall_storm(p, horizon, seed),
        "spikes" => latency_spikes(horizon, seed),
        "pressure" => memory_pressure(k, horizon, seed),
        "chaos" => chaos(p, k, horizon, seed),
        _ => return None,
    };
    Some(events)
}

fn rng_for(kind: &str, seed: u64) -> StdRng {
    // Distinct streams per scenario kind so that, e.g., `chaos` stalls do
    // not replay the `stalls` scenario verbatim.
    let tag: u64 = kind.bytes().fold(0u64, |h, b| {
        h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64)
    });
    StdRng::seed_from_u64(seed ^ tag)
}

/// One stall window per processor, each covering ~5–15% of the horizon at a
/// random offset in its first half.
pub fn stall_storm(p: usize, horizon: Time, seed: u64) -> Vec<FaultEvent> {
    let mut rng = rng_for("stalls", seed);
    let horizon = horizon.max(20);
    (0..p)
        .map(|x| {
            let width = horizon / 20 + rng.random_range(0..horizon / 10 + 1);
            let from = rng.random_range(0..horizon / 2 + 1);
            FaultEvent::ProcStall {
                proc: ProcId(x as u32),
                from,
                until: from.saturating_add(width.max(1)),
            }
        })
        .collect()
}

/// Three latency-spike windows (factor 2–8×) spread over the horizon.
pub fn latency_spikes(horizon: Time, seed: u64) -> Vec<FaultEvent> {
    let mut rng = rng_for("spikes", seed);
    let horizon = horizon.max(20);
    (0..3)
        .map(|_| {
            let width = (horizon / 10).max(1) + rng.random_range(0..horizon / 10 + 1);
            let from = rng.random_range(0..horizon);
            FaultEvent::LatencySpike {
                from,
                until: from.saturating_add(width),
                factor: 1 << rng.random_range(1..4u32),
            }
        })
        .collect()
}

/// Two pressure steps: the budget drops to ~`k/2` early in the run, then to
/// ~`k/4` past the midpoint. Limits only ever tighten (the engine enforces
/// the running minimum).
pub fn memory_pressure(k: usize, horizon: Time, seed: u64) -> Vec<FaultEvent> {
    let mut rng = rng_for("pressure", seed);
    let horizon = horizon.max(20);
    let wobble = |rng: &mut StdRng, base: usize| {
        let span = (base / 4).max(1);
        (base - span / 2 + rng.random_range(0..span)).max(1)
    };
    let half = wobble(&mut rng, (k / 2).max(1));
    let quarter = wobble(&mut rng, (k / 4).max(1)).min(half);
    vec![
        FaultEvent::MemoryPressure {
            at: rng.random_range(0..horizon / 4 + 1),
            new_limit: half,
        },
        FaultEvent::MemoryPressure {
            at: horizon / 2 + rng.random_range(0..horizon / 4 + 1),
            new_limit: quarter,
        },
    ]
}

/// All three fault classes at once: half the processors stall, one latency
/// spike, one pressure step down to ~`k/2`.
pub fn chaos(p: usize, k: usize, horizon: Time, seed: u64) -> Vec<FaultEvent> {
    let mut rng = rng_for("chaos", seed);
    let horizon = horizon.max(20);
    let mut events: Vec<FaultEvent> = (0..p.div_ceil(2))
        .map(|x| {
            let from = rng.random_range(0..horizon / 2 + 1);
            FaultEvent::ProcStall {
                proc: ProcId(2 * x as u32),
                from,
                until: from.saturating_add((horizon / 12).max(1)),
            }
        })
        .collect();
    let from = rng.random_range(0..horizon / 2 + 1);
    events.push(FaultEvent::LatencySpike {
        from,
        until: from.saturating_add((horizon / 8).max(1)),
        factor: 4,
    });
    events.push(FaultEvent::MemoryPressure {
        at: rng.random_range(0..horizon / 2 + 1),
        new_limit: (k / 2).max(1),
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        for name in FAULT_SCENARIOS {
            let a = fault_scenario(name, 8, 64, 10_000, 7).unwrap();
            let b = fault_scenario(name, 8, 64, 10_000, 7).unwrap();
            assert_eq!(a, b, "scenario `{name}` not reproducible");
        }
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = fault_scenario("chaos", 8, 64, 10_000, 1).unwrap();
        let b = fault_scenario("chaos", 8, 64, 10_000, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn clean_is_empty_and_unknown_is_none() {
        assert!(fault_scenario("clean", 4, 16, 100, 0).unwrap().is_empty());
        assert!(fault_scenario("nope", 4, 16, 100, 0).is_none());
    }

    #[test]
    fn stall_storm_covers_every_processor() {
        let ev = stall_storm(5, 1000, 3);
        let mut procs: Vec<usize> = ev
            .iter()
            .map(|e| match *e {
                FaultEvent::ProcStall { proc, from, until } => {
                    assert!(from < until);
                    proc.idx()
                }
                _ => panic!("non-stall event in stall storm"),
            })
            .collect();
        procs.sort_unstable();
        assert_eq!(procs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pressure_limits_only_tighten() {
        for seed in 0..20 {
            let ev = memory_pressure(64, 10_000, seed);
            let limits: Vec<usize> = ev
                .iter()
                .map(|e| match *e {
                    FaultEvent::MemoryPressure { new_limit, .. } => new_limit,
                    _ => panic!("non-pressure event"),
                })
                .collect();
            assert_eq!(limits.len(), 2);
            assert!(limits[1] <= limits[0], "seed {seed}: {limits:?}");
            assert!(limits.iter().all(|&l| l >= 1));
        }
    }

    #[test]
    fn chaos_mixes_all_three_classes() {
        let ev = chaos(6, 32, 5000, 11);
        let stalls = ev
            .iter()
            .filter(|e| matches!(e, FaultEvent::ProcStall { .. }))
            .count();
        assert_eq!(stalls, 3);
        assert!(ev
            .iter()
            .any(|e| matches!(e, FaultEvent::LatencySpike { .. })));
        assert!(ev
            .iter()
            .any(|e| matches!(e, FaultEvent::MemoryPressure { .. })));
    }
}
