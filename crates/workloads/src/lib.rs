//! # parapage-workloads
//!
//! Request-sequence generators for the parapage workspace.
//!
//! The paper's adversarial machinery is built from three access patterns —
//! **repeaters** (cyclic reuse), **polluters** (pages touched once), and
//! fresh streams — which [`gen`] provides alongside the standard synthetic
//! workloads (Zipf, scans, phased working sets, drifting working sets) used
//! to exercise the engines on realistic inputs. [`adversarial`] builds the
//! full Theorem-4 lower-bound instances (prefix families `F_i` with rising
//! pollution levels, plus all-fresh suffixes). [`spec`] offers a declarative
//! way to assemble per-processor mixes, and [`trace`] a plain-text trace
//! format for persisting workloads. [`fault`] generates deterministic
//! fault scenarios (processor stalls, latency spikes, memory pressure) for
//! the engine's fault-injection layer.
//!
//! All sequences are *disjoint across processors* (the paper's model
//! requirement) by construction: every generator namespaces its pages with
//! the processor id via [`parapage_cache::PageId::namespaced`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod fault;
pub mod gen;
pub mod hpc;
pub mod seq;
pub mod spec;
pub mod trace;

pub use adversarial::{AdversarialConfig, AdversarialInstance};
pub use fault::{fault_scenario, FAULT_SCENARIOS};
pub use gen::SeqBuilder;
pub use hpc::shared_hotset_workload;
pub use seq::Workload;
pub use spec::{build_workload, SeqSpec};
