//! Declarative workload assembly for experiments.
//!
//! Experiments describe each processor's sequence as a [`SeqSpec`] value;
//! [`build_workload`] turns a list of specs into a concrete, disjoint,
//! seeded [`Workload`]. This keeps experiment code free of generator
//! plumbing and makes every run reproducible from `(specs, seed)`.

use parapage_cache::ProcId;

use crate::gen::SeqBuilder;
use crate::seq::Workload;

/// A declarative description of one processor's request sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum SeqSpec {
    /// Cycle over `width` pages for `len` requests.
    Cyclic {
        /// Working-set width in pages.
        width: usize,
        /// Number of requests.
        len: usize,
    },
    /// Polluted cycle (see [`SeqBuilder::polluted_cycle`]).
    Polluted {
        /// Repeater working-set width.
        width: usize,
        /// Number of requests.
        len: usize,
        /// A polluter every this many requests.
        every: usize,
    },
    /// `len` all-distinct requests.
    Fresh {
        /// Number of requests.
        len: usize,
    },
    /// Zipf-distributed requests.
    Zipf {
        /// Page universe size.
        universe: usize,
        /// Skew parameter (0 = uniform).
        theta: f64,
        /// Number of requests.
        len: usize,
    },
    /// Uniform random requests.
    Uniform {
        /// Page universe size.
        universe: usize,
        /// Number of requests.
        len: usize,
    },
    /// Consecutive cyclic phases with disjoint working sets.
    Phased {
        /// `(width, len)` per phase.
        phases: Vec<(usize, usize)>,
    },
    /// A sliding working-set window.
    Drift {
        /// Window width.
        width: usize,
        /// Per-request slide probability.
        drift: f64,
        /// Number of requests.
        len: usize,
    },
    /// Concatenation of sub-specs.
    Concat(
        /// The parts, generated in order.
        Vec<SeqSpec>,
    ),
}

impl SeqSpec {
    fn generate(&self, b: &mut SeqBuilder) {
        match self {
            SeqSpec::Cyclic { width, len } => {
                b.cyclic(*width, *len);
            }
            SeqSpec::Polluted { width, len, every } => {
                b.polluted_cycle(*width, *len, *every);
            }
            SeqSpec::Fresh { len } => {
                b.fresh_stream(*len);
            }
            SeqSpec::Zipf {
                universe,
                theta,
                len,
            } => {
                b.zipf(*universe, *theta, *len);
            }
            SeqSpec::Uniform { universe, len } => {
                b.uniform(*universe, *len);
            }
            SeqSpec::Phased { phases } => {
                b.phased(phases);
            }
            SeqSpec::Drift { width, drift, len } => {
                b.drift(*width, *drift, *len);
            }
            SeqSpec::Concat(parts) => {
                for part in parts {
                    part.generate(b);
                }
            }
        }
    }

    /// Number of requests this spec generates.
    pub fn len(&self) -> usize {
        match self {
            SeqSpec::Cyclic { len, .. }
            | SeqSpec::Polluted { len, .. }
            | SeqSpec::Fresh { len }
            | SeqSpec::Zipf { len, .. }
            | SeqSpec::Uniform { len, .. }
            | SeqSpec::Drift { len, .. } => *len,
            SeqSpec::Phased { phases } => phases.iter().map(|&(_, l)| l).sum(),
            SeqSpec::Concat(parts) => parts.iter().map(SeqSpec::len).sum(),
        }
    }

    /// `true` when the spec generates no requests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the workload described by one spec per processor.
pub fn build_workload(specs: &[SeqSpec], seed: u64) -> Workload {
    let seqs = specs
        .iter()
        .enumerate()
        .map(|(x, spec)| {
            let mut b = SeqBuilder::new(ProcId(x as u32), seed);
            spec.generate(&mut b);
            b.build()
        })
        .collect();
    Workload::new(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_declared_lengths() {
        let specs = vec![
            SeqSpec::Cyclic { width: 4, len: 10 },
            SeqSpec::Concat(vec![
                SeqSpec::Fresh { len: 5 },
                SeqSpec::Zipf {
                    universe: 8,
                    theta: 0.9,
                    len: 7,
                },
            ]),
        ];
        let w = build_workload(&specs, 3);
        assert_eq!(w.seqs()[0].len(), specs[0].len());
        assert_eq!(w.seqs()[1].len(), specs[1].len());
        assert_eq!(specs[1].len(), 12);
        assert!(w.is_disjoint());
    }

    #[test]
    fn reproducible_from_seed() {
        let specs = vec![SeqSpec::Uniform {
            universe: 16,
            len: 50,
        }];
        assert_eq!(build_workload(&specs, 9), build_workload(&specs, 9));
        assert_ne!(build_workload(&specs, 9), build_workload(&specs, 10));
    }

    #[test]
    fn phased_spec_length() {
        let s = SeqSpec::Phased {
            phases: vec![(2, 5), (3, 7)],
        };
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
    }
}
