//! Least-frequently-used cache with O(1) access via frequency buckets.
//!
//! LFU is the classic frequency-based policy; it performs well on stable
//! popularity skews (Zipf workloads) and badly on phase changes, which makes
//! it an interesting baseline against the paper's recency-based machinery.
//! Ties within a frequency bucket break toward least-recently-used.

use std::collections::HashMap;

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

#[derive(Clone, Debug)]
struct Entry {
    freq: u64,
    /// Monotone stamp of the last access, for LRU tie-breaking.
    stamp: u64,
}

/// An LFU cache (with LRU tie-breaking).
///
/// The implementation keeps a `HashMap` of entries and finds the victim with
/// a linear scan over residents. Eviction is therefore O(len); this cache is
/// a baseline, not a hot-path structure, and its capacities in the
/// experiments are small (≤ a few thousand pages).
#[derive(Clone, Debug)]
pub struct LfuCache {
    capacity: usize,
    entries: HashMap<PageId, Entry>,
    clock: u64,
}

impl LfuCache {
    /// Creates an empty LFU cache with the given capacity.
    pub fn new(capacity: usize) -> Self {
        LfuCache {
            capacity,
            entries: HashMap::with_capacity(capacity.min(1 << 20)),
            clock: 0,
        }
    }

    fn evict_one(&mut self) {
        if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| (e.freq, e.stamp)) {
            self.entries.remove(&victim);
        }
    }
}

impl Cache for LfuCache {
    fn access(&mut self, page: PageId) -> Access {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&page) {
            e.freq += 1;
            e.stamp = clock;
            return Access::Hit;
        }
        if self.capacity == 0 {
            return Access::Miss;
        }
        while self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.entries.insert(
            page,
            Entry {
                freq: 1,
                stamp: clock,
            },
        );
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > capacity {
            self.evict_one();
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Checkpoint for LfuCache {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.clock);
        // Canonical order: sort by page id so equal states encode equally.
        let mut entries: Vec<(&PageId, &Entry)> = self.entries.iter().collect();
        entries.sort_by_key(|(p, _)| **p);
        w.put_len(entries.len());
        for (p, e) in entries {
            w.put_page(*p);
            w.put_u64(e.freq);
            w.put_u64(e.stamp);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let clock = r.get_u64()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("LFU resident count exceeds capacity"));
        }
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = r.get_page()?;
            let freq = r.get_u64()?;
            let stamp = r.get_u64()?;
            if stamp > clock {
                return Err(CodecError::Invalid("LFU stamp exceeds clock"));
            }
            if entries.insert(page, Entry { freq, stamp }).is_some() {
                return Err(CodecError::Invalid("duplicate page in LFU checkpoint"));
            }
        }
        self.capacity = capacity;
        self.entries = entries;
        self.clock = clock;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_frequencies() {
        let mut c = LfuCache::new(3);
        for v in [1, 1, 2, 3, 2, 1] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = LfuCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 3);
        assert_eq!(restored.clock, c.clock);
        // Same next victim (page 3: lowest freq) on both sides.
        assert_eq!(restored.access(p(9)), Access::Miss);
        assert_eq!(c.access(p(9)), Access::Miss);
        assert!(!restored.contains(p(3)) && !c.contains(p(3)));
        assert!(restored.contains(p(1)) && restored.contains(p(2)));
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.access(p(1));
        c.access(p(1));
        c.access(p(2));
        c.access(p(3)); // 2 has freq 1, 1 has freq 2 -> evict 2
        assert!(c.contains(p(1)));
        assert!(!c.contains(p(2)));
        assert!(c.contains(p(3)));
    }

    #[test]
    fn frequency_ties_break_toward_lru() {
        let mut c = LfuCache::new(2);
        c.access(p(1));
        c.access(p(2));
        // Both freq 1; 1 is older -> evicted.
        c.access(p(3));
        assert!(!c.contains(p(1)));
        assert!(c.contains(p(2)));
    }

    #[test]
    fn resize_evicts_least_valuable_first() {
        let mut c = LfuCache::new(3);
        c.access(p(1));
        c.access(p(1));
        c.access(p(2));
        c.access(p(3));
        c.resize(1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(p(1)));
    }

    #[test]
    fn zero_capacity_streams() {
        let mut c = LfuCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert!(c.is_empty());
    }
}
