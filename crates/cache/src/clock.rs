//! The Clock (second-chance) replacement policy.
//!
//! Clock approximates LRU with a single reference bit per frame and a
//! rotating hand — the policy most real kernels ship. It sits between FIFO
//! and LRU in quality and serves as another baseline for the policy
//! comparison benches.

use std::collections::HashMap;

use crate::policy::{Access, Cache};
use crate::types::PageId;

#[derive(Clone, Debug)]
struct Frame {
    page: PageId,
    referenced: bool,
}

/// A Clock/second-chance cache.
#[derive(Clone, Debug)]
pub struct ClockCache {
    capacity: usize,
    frames: Vec<Frame>,
    hand: usize,
    map: HashMap<PageId, usize>,
}

impl ClockCache {
    /// Creates an empty Clock cache with the given capacity.
    pub fn new(capacity: usize) -> Self {
        ClockCache {
            capacity,
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            hand: 0,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// Advances the hand until a victim frame (referenced bit clear) is
    /// found, clearing bits as it sweeps; returns the victim index.
    fn find_victim(&mut self) -> usize {
        loop {
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
            if self.frames[self.hand].referenced {
                self.frames[self.hand].referenced = false;
                self.hand += 1;
            } else {
                return self.hand;
            }
        }
    }
}

impl Cache for ClockCache {
    fn access(&mut self, page: PageId) -> Access {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].referenced = true;
            return Access::Hit;
        }
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.frames.len() < self.capacity {
            self.map.insert(page, self.frames.len());
            self.frames.push(Frame {
                page,
                referenced: false,
            });
        } else {
            let victim = self.find_victim();
            let old = self.frames[victim].page;
            self.map.remove(&old);
            self.frames[victim] = Frame {
                page,
                referenced: false,
            };
            self.map.insert(page, victim);
            self.hand = victim + 1;
        }
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.frames.len() > capacity {
            let victim = self.find_victim();
            let old = self.frames.swap_remove(victim).page;
            self.map.remove(&old);
            if victim < self.frames.len() {
                let moved = self.frames[victim].page;
                self.map.insert(moved, victim);
            }
        }
        if self.hand >= self.frames.len() {
            self.hand = 0;
        }
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn second_chance_spares_referenced_pages() {
        let mut c = ClockCache::new(2);
        c.access(p(1));
        c.access(p(2));
        c.access(p(1)); // sets reference bit on 1
        c.access(p(3)); // hand passes 1 (clearing its bit), evicts 2
        assert!(c.contains(p(1)));
        assert!(!c.contains(p(2)));
        assert!(c.contains(p(3)));
    }

    #[test]
    fn fills_before_evicting() {
        let mut c = ClockCache::new(3);
        for v in 1..=3 {
            assert_eq!(c.access(p(v)), Access::Miss);
        }
        assert_eq!(c.len(), 3);
        for v in 1..=3 {
            assert_eq!(c.access(p(v)), Access::Hit);
        }
    }

    #[test]
    fn resize_down_keeps_len_within_capacity() {
        let mut c = ClockCache::new(4);
        for v in 1..=4 {
            c.access(p(v));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        // Subsequent accesses must still behave.
        c.access(p(9));
        assert!(c.contains(p(9)));
        assert!(c.len() <= 2);
    }

    #[test]
    fn zero_capacity_is_a_stream() {
        let mut c = ClockCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.len(), 0);
    }
}
