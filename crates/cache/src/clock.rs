//! The Clock (second-chance) replacement policy.
//!
//! Clock approximates LRU with a single reference bit per frame and a
//! rotating hand — the policy most real kernels ship. It sits between FIFO
//! and LRU in quality and serves as another baseline for the policy
//! comparison benches.

use std::collections::HashMap;

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

#[derive(Clone, Debug)]
struct Frame {
    page: PageId,
    referenced: bool,
}

/// A Clock/second-chance cache.
#[derive(Clone, Debug)]
pub struct ClockCache {
    capacity: usize,
    frames: Vec<Frame>,
    hand: usize,
    map: HashMap<PageId, usize>,
}

impl ClockCache {
    /// Creates an empty Clock cache with the given capacity.
    pub fn new(capacity: usize) -> Self {
        ClockCache {
            capacity,
            frames: Vec::with_capacity(capacity.min(1 << 20)),
            hand: 0,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// Advances the hand until a victim frame (referenced bit clear) is
    /// found, clearing bits as it sweeps; returns the victim index.
    fn find_victim(&mut self) -> usize {
        loop {
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
            if self.frames[self.hand].referenced {
                self.frames[self.hand].referenced = false;
                self.hand += 1;
            } else {
                return self.hand;
            }
        }
    }
}

impl Cache for ClockCache {
    fn access(&mut self, page: PageId) -> Access {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].referenced = true;
            return Access::Hit;
        }
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.frames.len() < self.capacity {
            self.map.insert(page, self.frames.len());
            self.frames.push(Frame {
                page,
                referenced: false,
            });
        } else {
            let victim = self.find_victim();
            let old = self.frames[victim].page;
            self.map.remove(&old);
            self.frames[victim] = Frame {
                page,
                referenced: false,
            };
            self.map.insert(page, victim);
            self.hand = victim + 1;
        }
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.frames.len() > capacity {
            let victim = self.find_victim();
            let old = self.frames.swap_remove(victim).page;
            self.map.remove(&old);
            if victim < self.frames.len() {
                let moved = self.frames[victim].page;
                self.map.insert(moved, victim);
            }
        }
        if self.hand >= self.frames.len() {
            self.hand = 0;
        }
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

impl Checkpoint for ClockCache {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.hand);
        w.put_len(self.frames.len());
        for f in &self.frames {
            w.put_page(f.page);
            w.put_bool(f.referenced);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let hand = r.get_usize()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("Clock frame count exceeds capacity"));
        }
        if hand > n {
            return Err(CodecError::Invalid("Clock hand out of range"));
        }
        let mut frames = Vec::with_capacity(n);
        let mut map = HashMap::with_capacity(n);
        for i in 0..n {
            let page = r.get_page()?;
            let referenced = r.get_bool()?;
            if map.insert(page, i).is_some() {
                return Err(CodecError::Invalid("duplicate page in Clock checkpoint"));
            }
            frames.push(Frame { page, referenced });
        }
        self.capacity = capacity;
        self.frames = frames;
        self.hand = hand;
        self.map = map;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_hand_and_bits() {
        let mut c = ClockCache::new(3);
        for v in [1, 2, 3, 1, 4] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = ClockCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 3);
        assert_eq!(restored.hand, c.hand);
        // Same next victim on both sides.
        assert_eq!(restored.access(p(9)), Access::Miss);
        assert_eq!(c.access(p(9)), Access::Miss);
        let pages: Vec<PageId> = c.frames.iter().map(|f| f.page).collect();
        let rpages: Vec<PageId> = restored.frames.iter().map(|f| f.page).collect();
        assert_eq!(pages, rpages);
    }

    #[test]
    fn second_chance_spares_referenced_pages() {
        let mut c = ClockCache::new(2);
        c.access(p(1));
        c.access(p(2));
        c.access(p(1)); // sets reference bit on 1
        c.access(p(3)); // hand passes 1 (clearing its bit), evicts 2
        assert!(c.contains(p(1)));
        assert!(!c.contains(p(2)));
        assert!(c.contains(p(3)));
    }

    #[test]
    fn fills_before_evicting() {
        let mut c = ClockCache::new(3);
        for v in 1..=3 {
            assert_eq!(c.access(p(v)), Access::Miss);
        }
        assert_eq!(c.len(), 3);
        for v in 1..=3 {
            assert_eq!(c.access(p(v)), Access::Hit);
        }
    }

    #[test]
    fn resize_down_keeps_len_within_capacity() {
        let mut c = ClockCache::new(4);
        for v in 1..=4 {
            c.access(p(v));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        // Subsequent accesses must still behave.
        c.access(p(9));
        assert!(c.contains(p(9)));
        assert!(c.len() <= 2);
    }

    #[test]
    fn zero_capacity_is_a_stream() {
        let mut c = ClockCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.len(), 0);
    }
}
