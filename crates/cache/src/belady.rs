//! Belady's offline MIN algorithm — the optimal replacement policy.
//!
//! MIN evicts the resident page whose next use lies farthest in the future.
//! It is the per-processor *lower bound* on misses for any replacement policy
//! with the same capacity, which is exactly what the `T_OPT` lower-bound
//! calculator in `parapage-analysis` needs: even OPT, giving a processor the
//! entire cache `k` forever, cannot beat `hits + s·min_misses(R, k)` time on
//! that processor's sequence.

use std::collections::{BinaryHeap, HashMap};

use crate::policy::Access;
use crate::types::PageId;

/// Position used for "never accessed again".
const INFINITY: usize = usize::MAX;

/// Precomputed next-use indices: `next[i]` is the position of the next access
/// to `seq[i]`'s page strictly after `i`, or [`INFINITY`].
fn next_use(seq: &[PageId]) -> Vec<usize> {
    let mut next = vec![INFINITY; seq.len()];
    let mut last: HashMap<PageId, usize> = HashMap::new();
    for (i, &page) in seq.iter().enumerate().rev() {
        if let Some(&j) = last.get(&page) {
            next[i] = j;
        }
        last.insert(page, i);
    }
    next
}

/// Simulates Belady's MIN over `seq` with the given `capacity` and returns
/// the number of misses (including compulsory first-touch misses).
///
/// Runs in O(n log k) using a lazily-invalidated max-heap of next uses.
///
/// ```
/// use parapage_cache::{min_misses, PageId};
/// let seq: Vec<PageId> = [1, 2, 3, 1, 2, 3].iter().map(|&v| PageId(v)).collect();
/// // Capacity 3 holds the whole working set: only 3 compulsory misses.
/// assert_eq!(min_misses(&seq, 3), 3);
/// // Capacity 2: MIN does better than LRU's 6 misses.
/// assert_eq!(min_misses(&seq, 2), 4);
/// ```
pub fn min_misses(seq: &[PageId], capacity: usize) -> u64 {
    let mut sim = BeladyCache::new(seq, capacity);
    let mut misses = 0u64;
    for _ in 0..seq.len() {
        if sim.step() == Some(Access::Miss) {
            misses += 1;
        }
    }
    misses
}

/// A stepping simulator for Belady's MIN over a fixed sequence.
///
/// Unlike the online caches this is constructed *with* the sequence (MIN is
/// clairvoyant) and consumed one request at a time via [`BeladyCache::step`].
pub struct BeladyCache<'a> {
    seq: &'a [PageId],
    next: Vec<usize>,
    capacity: usize,
    pos: usize,
    /// page -> next use at the time it was last touched (for lazy heap
    /// invalidation).
    resident: HashMap<PageId, usize>,
    /// max-heap of (next_use, page); stale entries are skipped on pop.
    heap: BinaryHeap<(usize, PageId)>,
}

impl<'a> BeladyCache<'a> {
    /// Prepares a MIN simulation of `seq` with the given capacity.
    pub fn new(seq: &'a [PageId], capacity: usize) -> Self {
        BeladyCache {
            seq,
            next: next_use(seq),
            capacity,
            pos: 0,
            resident: HashMap::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Number of requests already served.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Serves the next request; `None` once the sequence is exhausted.
    pub fn step(&mut self) -> Option<Access> {
        if self.pos >= self.seq.len() {
            return None;
        }
        let page = self.seq[self.pos];
        let nxt = self.next[self.pos];
        let outcome = if self.resident.contains_key(&page) {
            self.resident.insert(page, nxt);
            self.heap.push((nxt, page));
            Access::Hit
        } else {
            if self.capacity > 0 {
                if self.resident.len() >= self.capacity {
                    self.evict_farthest();
                }
                self.resident.insert(page, nxt);
                self.heap.push((nxt, page));
            }
            Access::Miss
        };
        self.pos += 1;
        Some(outcome)
    }

    fn evict_farthest(&mut self) {
        while let Some((nxt, page)) = self.heap.pop() {
            // Skip stale heap entries (page absent or entry outdated).
            if self.resident.get(&page) == Some(&nxt) {
                self.resident.remove(&page);
                return;
            }
        }
        unreachable!("resident set non-empty implies a live heap entry");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use crate::policy::Cache;

    fn seq(vals: &[u64]) -> Vec<PageId> {
        vals.iter().map(|&v| PageId(v)).collect()
    }

    fn lru_misses(s: &[PageId], cap: usize) -> u64 {
        let mut c = LruCache::new(cap);
        s.iter().filter(|&&p| !c.access(p).is_hit()).count() as u64
    }

    #[test]
    fn next_use_indices() {
        let s = seq(&[1, 2, 1, 3, 2]);
        assert_eq!(next_use(&s), vec![2, 4, INFINITY, INFINITY, INFINITY]);
    }

    #[test]
    fn compulsory_misses_only_when_capacity_suffices() {
        let s = seq(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(min_misses(&s, 3), 3);
    }

    #[test]
    fn textbook_belady_example() {
        // Classic example: 1 2 3 4 1 2 5 1 2 3 4 5 with 3 frames -> 7 misses.
        let s = seq(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        assert_eq!(min_misses(&s, 3), 7);
    }

    #[test]
    fn min_never_exceeds_lru() {
        let patterns: Vec<Vec<u64>> = vec![
            (0..50).map(|i| i % 7).collect(),
            (0..50).map(|i| (i * i) % 11).collect(),
            (0..60)
                .map(|i| if i % 3 == 0 { i } else { i % 5 })
                .collect(),
        ];
        for pat in patterns {
            let s = seq(&pat);
            for cap in 1..8 {
                assert!(
                    min_misses(&s, cap) <= lru_misses(&s, cap),
                    "MIN beat by LRU on {pat:?} cap {cap}"
                );
            }
        }
    }

    #[test]
    fn min_misses_monotone_in_capacity() {
        let s = seq(&(0..80).map(|i| (i * 13) % 17).collect::<Vec<_>>());
        let mut prev = u64::MAX;
        for cap in 1..=17 {
            let m = min_misses(&s, cap);
            assert!(m <= prev);
            prev = m;
        }
        // Enough capacity -> only compulsory misses (17 distinct pages).
        assert_eq!(min_misses(&s, 17), 17);
    }

    #[test]
    fn zero_capacity_misses_everything() {
        let s = seq(&[1, 1, 1]);
        assert_eq!(min_misses(&s, 0), 3);
    }

    #[test]
    fn stepper_reports_position() {
        let s = seq(&[1, 2, 1]);
        let mut b = BeladyCache::new(&s, 1);
        assert_eq!(b.position(), 0);
        assert_eq!(b.step(), Some(Access::Miss));
        assert_eq!(b.step(), Some(Access::Miss));
        assert_eq!(b.step(), Some(Access::Miss)); // cap 1: 2 displaced 1
        assert_eq!(b.step(), None);
        assert_eq!(b.position(), 3);
    }
}
