//! # parapage-cache
//!
//! Cache simulation substrate for the `parapage` workspace — a from-scratch
//! reproduction of *Online Parallel Paging with Optimal Makespan*
//! (Agrawal et al., SPAA 2022).
//!
//! The paper's model (its §2) is built around a single primitive: a processor
//! serving a request sequence through a fixed-capacity cache, paying one time
//! step per hit and `s` time steps per miss. This crate provides that
//! primitive and the classic machinery around it:
//!
//! * [`LruCache`] — O(1) least-recently-used cache with *resizing* (grow keeps
//!   contents, shrink truncates the LRU tail). LRU is the replacement policy
//!   the paper fixes WLOG inside every memory box.
//! * [`FifoCache`], [`ClockCache`], [`LfuCache`], [`ArcCache`],
//!   [`TwoQueueCache`], [`LirsCache`] — alternative online policies, used
//!   as baselines and to cross-check the simulators.
//! * [`belady`] — Belady's offline MIN algorithm, the per-processor miss
//!   lower bound that feeds the `T_OPT` lower-bound calculator.
//! * [`mattson`] — single-pass stack-distance analysis producing the LRU miss
//!   count for **every** cache capacity at once (the classic Mattson et al.
//!   1970 technique), backed by the [`fenwick`] tree substrate.
//! * [`sampling`] — SHARDS-style spatially-hashed sampled stack distances,
//!   approximating the miss curve at a fraction of the cost for long
//!   traces.
//! * [`concurrent`] — concurrently-accessible caches behind the same
//!   [`Cache`] trait: a sharded fine-grained-locking baseline plus a
//!   lock-free split-ordered hash index with epoch-based reclamation,
//!   instrumented with yield points for schedule exploration.
//! * [`window`] — simulation of one *memory box*: run a request sequence
//!   through an LRU cache of height `h` for a time budget, which is the inner
//!   loop of every paging algorithm in the paper.
//!
//! All simulators are deterministic and allocation-conscious: hot paths use
//! arena-backed intrusive lists and never allocate per access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod belady;
pub mod checkpoint;
pub mod clock;
pub mod concurrent;
pub mod fenwick;
pub mod fifo;
pub mod lfu;
pub mod lirs;
pub mod lru;
pub mod mattson;
pub mod policy;
pub mod sampling;
pub mod stats;
pub mod testshim;
pub mod two_queue;
pub mod types;
pub mod window;

pub use arc::ArcCache;
pub use belady::{min_misses, BeladyCache};
pub use checkpoint::{
    decode_framed, fnv1a64, fnv1a64_seeded, frame_wal_record, parse_wal_record, Checkpoint,
    CodecError, SnapReader, SnapWriter, WalRecordStep, SNAP_MAGIC, SNAP_VERSION, WAL_RECORD_HEADER,
    WAL_RECORD_MAGIC,
};
pub use clock::ClockCache;
pub use concurrent::{LockFreeFifoCache, ShardedCache, ShardedLru, SplitOrderedMap};
pub use fenwick::Fenwick;
pub use fifo::FifoCache;
pub use lfu::LfuCache;
pub use lirs::LirsCache;
pub use lru::LruCache;
pub use mattson::{miss_curve, stack_distances, MissCurve};
pub use policy::{Access, Cache};
pub use sampling::{sampled_miss_curve, SampledCurve};
pub use stats::CacheStats;
pub use testshim::MapLru;
pub use two_queue::TwoQueueCache;
pub use types::{PageId, ProcId, Time};
pub use window::{run_box, run_box_budget, run_window, WindowOutcome};
