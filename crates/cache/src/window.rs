//! Simulation of one *memory box*: a request sequence running through a
//! cache for a bounded time budget.
//!
//! In the paper's WLOG normal form (§2) every paging algorithm hands each
//! processor a sequence of boxes; inside a box of height `h` the processor
//! runs LRU on `h` cache slots for `s·h` time steps. This module is that
//! inner loop: serve requests one by one, charging 1 step per hit and `s`
//! steps per miss, until the budget is exhausted or the sequence ends. A
//! request is served only if its full cost fits in the remaining budget —
//! partial fetches are discarded, which matches compartmentalized boxes
//! (whatever was in flight is evicted at the box boundary anyway).

use crate::policy::Cache;
use crate::stats::CacheStats;
use crate::types::{PageId, Time};

/// Result of running a sequence window through a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowOutcome {
    /// Index of the first request *not* served (equals `seq.len()` when the
    /// sequence finished inside the window).
    pub end_index: usize,
    /// Hits and misses among served requests.
    pub stats: CacheStats,
    /// Time actually consumed serving requests (`≤ budget`); the remainder
    /// of the budget, if any, is idle time.
    pub time_used: Time,
    /// Whether the sequence completed within this window.
    pub finished: bool,
}

/// Serves `seq[start..]` through `cache` for at most `budget` time steps,
/// with hit cost 1 and miss cost `miss_penalty`.
///
/// The cache is used as-is (callers wanting the paper's compartmentalized
/// semantics call [`Cache::clear`] first).
///
/// ```
/// use parapage_cache::{run_window, LruCache, PageId};
/// let seq: Vec<PageId> = [1, 2, 1, 2].iter().map(|&v| PageId(v)).collect();
/// let mut cache = LruCache::new(2);
/// // Budget 22, s = 10: serve 1 (10), 2 (10), then two hits (1 + 1) = 22.
/// let out = run_window(&seq, 0, &mut cache, 22, 10);
/// assert!(out.finished);
/// assert_eq!(out.time_used, 22);
/// assert_eq!(out.stats.hits, 2);
/// assert_eq!(out.stats.misses, 2);
/// ```
pub fn run_window<C: Cache>(
    seq: &[PageId],
    start: usize,
    cache: &mut C,
    budget: Time,
    miss_penalty: u64,
) -> WindowOutcome {
    debug_assert!(miss_penalty >= 1, "miss penalty must be at least hit cost");
    let mut idx = start;
    let mut remaining = budget;
    let mut stats = CacheStats::default();
    while idx < seq.len() {
        // One fused probe decides fit and serves the request; a request
        // only runs if its full cost fits (no partial fetches).
        let Some(outcome) = cache.access_if_fits(seq[idx], remaining, miss_penalty) else {
            break;
        };
        stats.record(outcome.is_hit());
        remaining -= outcome.cost(miss_penalty);
        idx += 1;
    }
    WindowOutcome {
        end_index: idx,
        stats,
        time_used: budget - remaining,
        finished: idx == seq.len(),
    }
}

/// Serves `seq[start..]` through a **fresh** LRU cache of height `height`
/// for the canonical box duration `miss_penalty · height` — i.e., one paper
/// box.
///
/// A key property this guarantees (used by Lemma 5 of the paper): a box of
/// height `h` always serves at least `h` requests when at least `h` remain,
/// because even all-miss service costs `s` per request and the budget is
/// `s·h`. For `height == 0` the box has zero duration and serves nothing.
pub fn run_box(seq: &[PageId], start: usize, height: usize, miss_penalty: u64) -> WindowOutcome {
    let mut cache = crate::lru::LruCache::new(height);
    run_window(
        seq,
        start,
        &mut cache,
        miss_penalty * height as u64,
        miss_penalty,
    )
}

/// Serves `seq[start..]` through a **fresh** LRU cache of `height` pages
/// with an explicit time `budget` (unlike [`run_box`], whose budget is the
/// canonical `s·height`). Used by schedulers that hand out fixed-length
/// rounds at varying heights.
pub fn run_box_budget(
    seq: &[PageId],
    start: usize,
    height: usize,
    budget: Time,
    miss_penalty: u64,
) -> WindowOutcome {
    let mut cache = crate::lru::LruCache::new(height);
    run_window(seq, start, &mut cache, budget, miss_penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;

    fn seq(vals: &[u64]) -> Vec<PageId> {
        vals.iter().map(|&v| PageId(v)).collect()
    }

    #[test]
    fn request_that_does_not_fit_is_not_served() {
        let s = seq(&[1, 2]);
        let mut cache = LruCache::new(2);
        // Budget 15, s = 10: serve 1 (10), then 2 would need 10 > 5 left.
        let out = run_window(&s, 0, &mut cache, 15, 10);
        assert_eq!(out.end_index, 1);
        assert_eq!(out.time_used, 10);
        assert!(!out.finished);
        assert!(!cache.contains(PageId(2)));
    }

    #[test]
    fn box_of_height_h_serves_at_least_h_requests() {
        // All-distinct pages: every access misses.
        let s: Vec<PageId> = (0..100).map(PageId).collect();
        for h in 1..10 {
            let out = run_box(&s, 0, h, 7);
            assert_eq!(out.end_index, h, "height {h}");
            assert_eq!(out.stats.misses, h as u64);
        }
    }

    #[test]
    fn box_on_cyclic_sequence_within_height_mostly_hits() {
        // Cycle over 4 pages, box height 8, s=10 -> budget 80.
        // 4 compulsory misses (40) + 40 hits = serves 44 requests.
        let s: Vec<PageId> = (0..200).map(|i| PageId(i % 4)).collect();
        let out = run_box(&s, 0, 8, 10);
        assert_eq!(out.stats.misses, 4);
        assert_eq!(out.stats.hits, 40);
        assert_eq!(out.end_index, 44);
        assert_eq!(out.time_used, 80);
    }

    #[test]
    fn zero_height_box_serves_nothing() {
        let s = seq(&[1, 2, 3]);
        let out = run_box(&s, 0, 0, 10);
        assert_eq!(out.end_index, 0);
        assert_eq!(out.time_used, 0);
    }

    #[test]
    fn finishes_short_sequences_and_reports_idle_time() {
        let s = seq(&[1]);
        let mut cache = LruCache::new(4);
        let out = run_window(&s, 0, &mut cache, 1000, 10);
        assert!(out.finished);
        assert_eq!(out.time_used, 10);
    }

    #[test]
    fn warm_cache_carries_over_between_windows() {
        let s = seq(&[1, 2, 1, 2]);
        let mut cache = LruCache::new(2);
        let first = run_window(&s, 0, &mut cache, 20, 10);
        assert_eq!(first.end_index, 2);
        // Second window reuses the warm cache: both remaining accesses hit.
        let second = run_window(&s, first.end_index, &mut cache, 20, 10);
        assert!(second.finished);
        assert_eq!(second.stats.hits, 2);
        assert_eq!(second.time_used, 2);
    }

    #[test]
    fn budgeted_box_respects_custom_budget() {
        let s: Vec<PageId> = (0..50).map(PageId).collect();
        // Height 4 but budget for exactly 3 misses at s=10.
        let out = run_box_budget(&s, 0, 4, 30, 10);
        assert_eq!(out.end_index, 3);
        assert_eq!(out.time_used, 30);
    }

    #[test]
    fn start_at_end_is_a_noop() {
        let s = seq(&[1]);
        let mut cache = LruCache::new(1);
        let out = run_window(&s, 1, &mut cache, 100, 10);
        assert!(out.finished);
        assert_eq!(out.time_used, 0);
        assert_eq!(out.stats.accesses(), 0);
    }
}
