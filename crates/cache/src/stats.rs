//! Hit/miss accounting shared by the simulators.

use std::ops::AddAssign;

/// Running hit/miss counters for a cache or a simulation window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses served from cache.
    pub hits: u64,
    /// Number of accesses requiring a fetch from memory.
    pub misses: u64,
}

impl CacheStats {
    /// Records one access outcome.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total accesses counted.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero for an empty window.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    /// Service time under miss penalty `s` (hits cost 1, misses cost `s`).
    pub fn service_time(&self, s: u64) -> u64 {
        self.hits + s * self.misses
    }

    /// Service time widened to `u128`, for aggregate accounting over long
    /// runs where `hits + s·misses` does not fit a `u64`.
    pub fn service_time_wide(&self, s: u64) -> u128 {
        self.hits as u128 + s as u128 * self.misses as u128
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::default();
        s.record(true);
        s.record(false);
        s.record(false);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.accesses(), 3);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.service_time(10), 21);
    }

    #[test]
    fn wide_service_time_does_not_wrap() {
        let s = CacheStats {
            hits: 7,
            misses: u64::MAX / 2,
        };
        let expect = 7u128 + 16u128 * (u64::MAX / 2) as u128;
        assert!(expect > u64::MAX as u128);
        assert_eq!(s.service_time_wide(16), expect);
    }

    #[test]
    fn empty_window_has_zero_miss_ratio() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = CacheStats { hits: 1, misses: 2 };
        a += CacheStats { hits: 3, misses: 4 };
        assert_eq!(a, CacheStats { hits: 4, misses: 6 });
    }
}
