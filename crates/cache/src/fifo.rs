//! First-in-first-out cache, a baseline replacement policy.
//!
//! FIFO ignores recency entirely: pages are evicted in arrival order. It is
//! k-competitive like LRU but lacks the inclusion property, which makes it a
//! useful cross-check that the analysis pipeline does not silently assume
//! LRU-specific structure.

use std::collections::{HashSet, VecDeque};

use crate::checkpoint::{set_from_pages, Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

/// A FIFO-replacement cache.
#[derive(Clone, Debug)]
pub struct FifoCache {
    capacity: usize,
    queue: VecDeque<PageId>,
    resident: HashSet<PageId>,
}

impl FifoCache {
    /// Creates an empty FIFO cache with the given capacity.
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            capacity,
            queue: VecDeque::with_capacity(capacity.min(1 << 20)),
            resident: HashSet::with_capacity(capacity.min(1 << 20)),
        }
    }
}

impl Cache for FifoCache {
    fn access(&mut self, page: PageId) -> Access {
        if self.resident.contains(&page) {
            return Access::Hit;
        }
        if self.capacity == 0 {
            return Access::Miss;
        }
        while self.resident.len() >= self.capacity {
            if let Some(old) = self.queue.pop_front() {
                self.resident.remove(&old);
            }
        }
        self.queue.push_back(page);
        self.resident.insert(page);
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.resident.len() > capacity {
            if let Some(old) = self.queue.pop_front() {
                self.resident.remove(&old);
            }
        }
    }

    fn clear(&mut self) {
        self.queue.clear();
        self.resident.clear();
    }
}

impl Checkpoint for FifoCache {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        w.put_len(self.queue.len());
        for &p in &self.queue {
            w.put_page(p);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("FIFO resident count exceeds capacity"));
        }
        let mut queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            queue.push_back(r.get_page()?);
        }
        self.resident = set_from_pages(queue.make_contiguous())?;
        self.queue = queue;
        self.capacity = capacity;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_arrival_order() {
        let mut c = FifoCache::new(3);
        for v in [1, 2, 3, 1] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = FifoCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 3);
        assert_eq!(restored.queue, c.queue);
        // Same next victim on both.
        assert_eq!(restored.access(p(4)), Access::Miss);
        assert_eq!(c.access(p(4)), Access::Miss);
        assert_eq!(restored.queue, c.queue);
    }

    #[test]
    fn evicts_in_arrival_order_regardless_of_recency() {
        let mut c = FifoCache::new(2);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.access(p(2)), Access::Miss);
        assert_eq!(c.access(p(1)), Access::Hit); // does NOT refresh 1
        assert_eq!(c.access(p(3)), Access::Miss); // evicts 1, not 2
        assert!(!c.contains(p(1)));
        assert!(c.contains(p(2)));
    }

    #[test]
    fn resize_shrinks_from_front() {
        let mut c = FifoCache::new(3);
        for v in 1..=3 {
            c.access(p(v));
        }
        c.resize(1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(p(3)));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = FifoCache::new(0);
        assert_eq!(c.access(p(9)), Access::Miss);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut c = FifoCache::new(2);
        c.access(p(1));
        c.clear();
        assert!(c.is_empty());
    }
}
