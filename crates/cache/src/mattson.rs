//! Mattson stack-distance analysis: the LRU miss count for *every* cache
//! capacity from a single O(n log n) pass.
//!
//! LRU has the *inclusion property* (Mattson et al., IBM Systems Journal
//! 1970): the contents of an LRU cache of capacity `c` are always a subset of
//! those of capacity `c+1`. Consequently each access has a well-defined
//! *stack distance* `d` — its depth in the LRU stack — and the access hits
//! under capacity `c` iff `c ≥ d`. Recording the histogram of distances
//! yields the full miss-ratio curve in one pass.
//!
//! This is the workhorse behind:
//! * the offline green-paging OPT dynamic program (`parapage-core`), which
//!   needs "how far does a box of height h get" for many heights;
//! * the `T_OPT` lower-bound calculator (`parapage-analysis`);
//! * property tests asserting the direct [`crate::LruCache`] simulator agrees
//!   with the analytic curve for every capacity.

use std::collections::HashMap;

use crate::fenwick::Fenwick;
use crate::types::PageId;

/// Stack distance of each access: `Some(d)` means the access hits under any
/// capacity `≥ d`; `None` marks a compulsory (first-touch) miss.
///
/// `d` counts the accessed page itself, so the minimum distance is 1
/// (immediate re-access).
pub fn stack_distances(seq: &[PageId]) -> Vec<Option<usize>> {
    let n = seq.len();
    let mut out = Vec::with_capacity(n);
    let mut last: HashMap<PageId, usize> = HashMap::new();
    // fw[i] = 1 iff time i is the most recent access of some page.
    let mut fw = Fenwick::new(n);
    for (i, &page) in seq.iter().enumerate() {
        match last.get(&page).copied() {
            None => out.push(None),
            Some(prev) => {
                // Distinct pages strictly between prev and i, plus the page
                // itself.
                let between = fw.range_sum(prev + 1, i.saturating_sub(1)) as usize;
                out.push(Some(between + 1));
                fw.add(prev, -1);
            }
        }
        fw.add(i, 1);
        last.insert(page, i);
    }
    out
}

/// The LRU miss count as a function of cache capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissCurve {
    /// `misses[c]` = LRU misses with capacity `c`, for `c ∈ 0..=max_capacity`.
    misses: Vec<u64>,
    /// Number of requests in the analyzed sequence.
    total: u64,
    /// Number of distinct pages (equals misses at infinite capacity).
    distinct: u64,
}

impl MissCurve {
    /// LRU misses at capacity `c`; capacities beyond the curve's range clamp
    /// to the infinite-capacity (compulsory-only) miss count.
    pub fn misses(&self, c: usize) -> u64 {
        if c < self.misses.len() {
            self.misses[c]
        } else {
            self.distinct
        }
    }

    /// LRU hits at capacity `c`.
    pub fn hits(&self, c: usize) -> u64 {
        self.total - self.misses(c)
    }

    /// Total requests analyzed.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// Number of distinct pages in the sequence.
    pub fn distinct_pages(&self) -> u64 {
        self.distinct
    }

    /// Largest capacity explicitly tabulated.
    pub fn max_capacity(&self) -> usize {
        self.misses.len() - 1
    }

    /// Total service time at capacity `c` under miss penalty `s`
    /// (`hits + s·misses`).
    pub fn service_time(&self, c: usize, s: u64) -> u64 {
        self.hits(c) + s * self.misses(c)
    }
}

/// Computes the full LRU miss curve of `seq` for capacities `0..=max_capacity`.
///
/// ```
/// use parapage_cache::{miss_curve, PageId};
/// let seq: Vec<PageId> = [1, 2, 1, 3, 2, 1].iter().map(|&v| PageId(v)).collect();
/// let curve = miss_curve(&seq, 4);
/// assert_eq!(curve.misses(0), 6);   // no cache: every access misses
/// assert_eq!(curve.misses(3), 3);   // whole working set fits: compulsory only
/// assert!(curve.misses(1) >= curve.misses(2)); // monotone
/// ```
pub fn miss_curve(seq: &[PageId], max_capacity: usize) -> MissCurve {
    let dists = stack_distances(seq);
    let mut hist = vec![0u64; max_capacity + 2];
    let mut compulsory = 0u64;
    for d in &dists {
        match d {
            None => compulsory += 1,
            Some(d) => {
                let idx = (*d).min(max_capacity + 1);
                hist[idx] += 1;
            }
        }
    }
    // misses(c) = compulsory + #(d > c).
    let total = seq.len() as u64;
    let mut misses = vec![0u64; max_capacity + 1];
    let mut hits_upto = 0u64; // #(d <= c)
    for c in 0..=max_capacity {
        hits_upto += hist[c];
        misses[c] = total - hits_upto;
    }
    MissCurve {
        misses,
        total,
        distinct: compulsory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use crate::policy::Cache;

    fn seq(vals: &[u64]) -> Vec<PageId> {
        vals.iter().map(|&v| PageId(v)).collect()
    }

    fn lru_misses(s: &[PageId], cap: usize) -> u64 {
        let mut c = LruCache::new(cap);
        s.iter().filter(|&&p| !c.access(p).is_hit()).count() as u64
    }

    #[test]
    fn distances_on_small_example() {
        let s = seq(&[1, 2, 1, 1, 3, 2]);
        let d = stack_distances(&s);
        assert_eq!(d, vec![None, None, Some(2), Some(1), None, Some(3)]);
    }

    #[test]
    fn curve_matches_direct_lru_simulation() {
        let patterns: Vec<Vec<u64>> = vec![
            (0..100).map(|i| i % 9).collect(),
            (0..100).map(|i| (i * 7) % 13).collect(),
            (0..100)
                .map(|i| if i % 4 == 0 { 100 + i } else { i % 6 })
                .collect(),
        ];
        for pat in patterns {
            let s = seq(&pat);
            let curve = miss_curve(&s, 16);
            for cap in 0..=16 {
                assert_eq!(
                    curve.misses(cap),
                    lru_misses(&s, cap),
                    "capacity {cap} on {pat:?}"
                );
            }
        }
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let s = seq(&(0..200).map(|i| (i * i + i / 3) % 23).collect::<Vec<_>>());
        let curve = miss_curve(&s, 30);
        for c in 1..=30 {
            assert!(curve.misses(c) <= curve.misses(c - 1));
        }
    }

    #[test]
    fn clamps_beyond_tabulated_capacity() {
        let s = seq(&[1, 2, 3, 1]);
        let curve = miss_curve(&s, 2);
        assert_eq!(curve.misses(100), 3); // distinct pages
        assert_eq!(curve.distinct_pages(), 3);
    }

    #[test]
    fn service_time_accounts_for_miss_penalty() {
        let s = seq(&[1, 1, 2]);
        let curve = miss_curve(&s, 4);
        // cap 2: misses = 2 (compulsory), hits = 1 -> 1 + 2s.
        assert_eq!(curve.service_time(2, 10), 21);
    }

    #[test]
    fn empty_sequence() {
        let curve = miss_curve(&[], 4);
        assert_eq!(curve.total_requests(), 0);
        assert_eq!(curve.misses(0), 0);
    }
}
