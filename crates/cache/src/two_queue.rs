//! 2Q replacement (Johnson & Shasha, VLDB 1994) — the simpler scan-resistant
//! alternative to ARC.
//!
//! New pages enter a small FIFO probation queue `A1in`; only pages
//! re-referenced *after leaving* `A1in` (tracked by the ghost queue
//! `A1out`) are admitted to the protected LRU `Am`. A single sequential
//! scan therefore churns only the probation queue.

use std::collections::{HashMap, VecDeque};

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::lru::LruCache;
use crate::policy::{Access, Cache};
use crate::types::PageId;

/// A 2Q cache with the classic 25%/50% sizing of `A1in`/`A1out`.
#[derive(Clone, Debug)]
pub struct TwoQueueCache {
    capacity: usize,
    in_cap: usize,
    out_cap: usize,
    a1in: VecDeque<PageId>,
    a1in_set: HashMap<PageId, ()>,
    a1out: VecDeque<PageId>,
    a1out_set: HashMap<PageId, ()>,
    am: LruCache,
}

impl TwoQueueCache {
    /// Creates an empty 2Q cache; `A1in` gets 25% of the capacity (at least
    /// one page when capacity allows), `A1out` remembers 50% worth of
    /// ghosts.
    pub fn new(capacity: usize) -> Self {
        let in_cap = (capacity / 4).max(usize::from(capacity > 0));
        TwoQueueCache {
            capacity,
            in_cap,
            out_cap: (capacity / 2).max(1),
            a1in: VecDeque::new(),
            a1in_set: HashMap::new(),
            a1out: VecDeque::new(),
            a1out_set: HashMap::new(),
            am: LruCache::new(capacity.saturating_sub(in_cap)),
        }
    }

    fn evict_from_a1in(&mut self) {
        if let Some(old) = self.a1in.pop_front() {
            self.a1in_set.remove(&old);
            self.a1out.push_back(old);
            self.a1out_set.insert(old, ());
            while self.a1out.len() > self.out_cap {
                if let Some(g) = self.a1out.pop_front() {
                    self.a1out_set.remove(&g);
                }
            }
        }
    }
}

impl Cache for TwoQueueCache {
    fn access(&mut self, page: PageId) -> Access {
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.am.contains(page) {
            return self.am.access(page); // refresh LRU position, Hit
        }
        if self.a1in_set.contains_key(&page) {
            return Access::Hit; // FIFO: position unchanged
        }
        if self.a1out_set.contains_key(&page) {
            // Re-reference after probation: admit to the protected region.
            if let Some(pos) = self.a1out.iter().position(|&x| x == page) {
                self.a1out.remove(pos);
            }
            self.a1out_set.remove(&page);
            if self.am.capacity() == 0 {
                // Degenerate tiny cache (capacity <= in_cap): probation is
                // all there is — the page must still become resident.
                while self.a1in.len() >= self.in_cap {
                    self.evict_from_a1in();
                }
                self.a1in.push_back(page);
                self.a1in_set.insert(page, ());
            } else {
                self.am.access(page); // insert (evicting LRU inside Am)
            }
            return Access::Miss;
        }
        // Cold miss: probation.
        while self.a1in.len() >= self.in_cap {
            self.evict_from_a1in();
        }
        self.a1in.push_back(page);
        self.a1in_set.insert(page, ());
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.am.contains(page) || self.a1in_set.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.am.len() + self.a1in.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.in_cap = (capacity / 4).max(usize::from(capacity > 0));
        self.out_cap = (capacity / 2).max(1);
        while self.a1in.len() > self.in_cap {
            self.evict_from_a1in();
        }
        self.am.resize(capacity.saturating_sub(self.in_cap));
    }

    fn clear(&mut self) {
        self.a1in.clear();
        self.a1in_set.clear();
        self.a1out.clear();
        self.a1out_set.clear();
        self.am.clear();
    }
}

impl Checkpoint for TwoQueueCache {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.in_cap);
        w.put_usize(self.out_cap);
        for list in [&self.a1in, &self.a1out] {
            w.put_len(list.len());
            for &pg in list {
                w.put_page(pg);
            }
        }
        self.am.save(w);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let in_cap = r.get_usize()?;
        let out_cap = r.get_usize()?;
        let mut lists: [VecDeque<PageId>; 2] = Default::default();
        for list in lists.iter_mut() {
            let n = r.get_len()?;
            let mut seen = HashMap::new();
            for _ in 0..n {
                let pg = r.get_page()?;
                if seen.insert(pg, ()).is_some() {
                    return Err(CodecError::Invalid("duplicate page in 2Q queue"));
                }
                list.push_back(pg);
            }
        }
        let [a1in, a1out] = lists;
        if a1in.len() > in_cap || a1out.len() > out_cap {
            return Err(CodecError::Invalid("2Q queue exceeds its sizing"));
        }
        let mut am = LruCache::new(0);
        am.load(r)?;
        self.capacity = capacity;
        self.in_cap = in_cap;
        self.out_cap = out_cap;
        self.a1in_set = a1in.iter().map(|&pg| (pg, ())).collect();
        self.a1out_set = a1out.iter().map(|&pg| (pg, ())).collect();
        self.a1in = a1in;
        self.a1out = a1out;
        self.am = am;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_probation_and_protected() {
        let mut c = TwoQueueCache::new(8);
        for v in [1, 2, 3, 1, 4, 5, 2, 1] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = TwoQueueCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 8);
        assert_eq!(restored.a1in, c.a1in);
        assert_eq!(restored.a1out, c.a1out);
        assert_eq!(restored.am.pages_mru_first(), c.am.pages_mru_first());
        for v in [6, 7, 3, 1, 8] {
            assert_eq!(restored.access(p(v)), c.access(p(v)));
        }
        assert_eq!(restored.a1in, c.a1in);
    }

    #[test]
    fn cold_pages_enter_probation_only() {
        let mut c = TwoQueueCache::new(8);
        c.access(p(1));
        assert!(c.a1in_set.contains_key(&p(1)));
        assert!(!c.am.contains(p(1)));
    }

    #[test]
    fn rereference_after_probation_promotes() {
        let mut c = TwoQueueCache::new(8); // in_cap = 2
        c.access(p(1));
        c.access(p(2));
        c.access(p(3)); // evicts 1 into A1out
        assert!(c.a1out_set.contains_key(&p(1)));
        c.access(p(1)); // ghost hit -> promoted to Am
        assert!(c.am.contains(p(1)));
    }

    #[test]
    fn scan_resistant() {
        let mut c = TwoQueueCache::new(8);
        // Build a hot page in Am.
        c.access(p(1));
        c.access(p(2));
        c.access(p(3));
        c.access(p(1)); // promote 1
        assert!(c.am.contains(p(1)));
        // Long scan of cold pages.
        for v in 100..140 {
            c.access(p(v));
        }
        assert!(c.contains(p(1)), "scan evicted the protected page");
    }

    #[test]
    fn capacity_respected() {
        let mut c = TwoQueueCache::new(6);
        for v in 0..50 {
            c.access(p(v % 13));
            assert!(c.len() <= 6, "len {} at v={v}", c.len());
        }
    }

    #[test]
    fn hit_iff_resident() {
        let mut c = TwoQueueCache::new(5);
        for &v in &[1u64, 2, 3, 1, 2, 9, 9, 4, 5, 6, 1, 2] {
            let was = c.contains(p(v));
            assert_eq!(c.access(p(v)).is_hit(), was);
        }
    }

    #[test]
    fn resize_and_clear() {
        let mut c = TwoQueueCache::new(8);
        for v in 0..20 {
            c.access(p(v % 6));
        }
        c.resize(4);
        assert!(c.len() <= 4);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_streams() {
        let mut c = TwoQueueCache::new(0);
        assert_eq!(c.access(p(5)), Access::Miss);
        assert_eq!(c.len(), 0);
    }
}
