//! SHARDS-style sampled stack-distance analysis (Waldspurger et al.,
//! FAST 2015).
//!
//! Exact Mattson analysis is O(n log n); for very long traces a *spatially
//! hashed* sample suffices: keep only pages whose hash falls below a
//! threshold `T` (sampling rate `R = T/2⁶⁴`), run the exact analysis on the
//! sampled sub-trace, and scale distances by `1/R` and counts by `1/R`.
//! Because the filter is per-*page* (not per-access), reuse structure is
//! preserved exactly within the sample.
//!
//! Used by the analysis pipeline when estimating miss curves of multi-
//! million-request workloads (e.g. paper-scale adversarial instances).

use std::collections::HashMap;

use crate::fenwick::Fenwick;
use crate::mattson::MissCurve;
use crate::types::PageId;

/// A sampled approximation of the LRU miss curve.
#[derive(Clone, Debug)]
pub struct SampledCurve {
    /// Scaled misses per capacity (index = capacity).
    misses: Vec<f64>,
    /// Scaled total requests.
    total: f64,
    /// Scaled distinct pages (compulsory misses).
    distinct: f64,
    /// The sampling rate actually used.
    pub rate: f64,
    /// Number of sampled accesses (diagnostic).
    pub sampled_accesses: usize,
}

impl SampledCurve {
    /// Estimated LRU misses at capacity `c` (clamped like
    /// [`MissCurve::misses`]).
    pub fn misses(&self, c: usize) -> f64 {
        if c < self.misses.len() {
            self.misses[c]
        } else {
            self.distinct
        }
    }

    /// Estimated total requests.
    pub fn total_requests(&self) -> f64 {
        self.total
    }

    /// Estimated miss ratio at capacity `c`.
    pub fn miss_ratio(&self, c: usize) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.misses(c) / self.total
        }
    }
}

/// SplitMix64: a fast, well-mixed page hash (spatial filter).
#[inline]
fn hash_page(p: PageId) -> u64 {
    let mut z = p.0.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Computes a sampled miss curve at the given `rate ∈ (0, 1]` for
/// capacities `0..=max_capacity`.
///
/// Distances measured in the sampled sub-trace are scaled by `1/rate`
/// (a sampled distance `d` witnesses ≈ `d/rate` distinct pages in the full
/// trace), and each sampled access stands for `1/rate` real accesses.
///
/// ```
/// use parapage_cache::{miss_curve, sampled_miss_curve, PageId};
/// let seq: Vec<PageId> = (0..50_000).map(|i| PageId(i * 7 % 400)).collect();
/// let exact = miss_curve(&seq, 512);
/// let approx = sampled_miss_curve(&seq, 512, 0.5);
/// // At capacities above the working set only compulsory misses remain;
/// // the sampled estimate recovers them within sampling noise.
/// let err = (exact.misses(512) as f64 - approx.misses(512)).abs()
///     / exact.misses(512) as f64;
/// assert!(err < 0.2, "relative error {err}");
/// // Total request count scales back accurately too.
/// assert!((approx.total_requests() - 50_000.0).abs() / 50_000.0 < 0.1);
/// ```
pub fn sampled_miss_curve(seq: &[PageId], max_capacity: usize, rate: f64) -> SampledCurve {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    let threshold = (rate * (u64::MAX as f64)) as u64;
    let scale = 1.0 / rate;

    // Exact Mattson pass over the sampled accesses only.
    let mut last: HashMap<PageId, usize> = HashMap::new();
    let mut fw = Fenwick::new(seq.len());
    let mut hist: Vec<u64> = vec![0; max_capacity + 2];
    let mut compulsory = 0u64;
    let mut sampled = 0usize;
    let mut sample_idx = 0usize; // dense index among sampled accesses
    for &page in seq {
        if hash_page(page) > threshold {
            continue;
        }
        sampled += 1;
        match last.get(&page).copied() {
            None => compulsory += 1,
            Some(prev) => {
                let between = fw.range_sum(prev + 1, sample_idx.saturating_sub(1)) as usize;
                let d_sampled = between + 1;
                // Scale the distance back to the full trace.
                let d = ((d_sampled as f64) * scale).round() as usize;
                let idx = d.clamp(1, max_capacity + 1);
                hist[idx] += 1;
                fw.add(prev, -1);
            }
        }
        fw.add(sample_idx, 1);
        last.insert(page, sample_idx);
        sample_idx += 1;
    }

    let total_sampled = sampled as u64;
    let mut misses = vec![0f64; max_capacity + 1];
    let mut hits_upto = 0u64;
    for c in 0..=max_capacity {
        hits_upto += hist[c];
        misses[c] = (total_sampled - hits_upto) as f64 * scale;
    }
    SampledCurve {
        misses,
        total: total_sampled as f64 * scale,
        distinct: compulsory as f64 * scale,
        rate,
        sampled_accesses: sampled,
    }
}

/// Convenience: compare a sampled curve against the exact one (max absolute
/// miss-ratio error over capacities `1..=max_capacity`). Used by tests and
/// diagnostics.
pub fn max_miss_ratio_error(exact: &MissCurve, approx: &SampledCurve, max_capacity: usize) -> f64 {
    let n = exact.total_requests().max(1) as f64;
    (1..=max_capacity)
        .map(|c| {
            let e = exact.misses(c) as f64 / n;
            let a = approx.miss_ratio(c);
            (e - a).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mattson::miss_curve;

    fn zipfish(n: usize, universe: u64) -> Vec<PageId> {
        // Deterministic skewed trace without rand: quadratic residues bias
        // low ids.
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2654435761) % (universe * universe);
                PageId((x as f64).sqrt() as u64 % universe)
            })
            .collect()
    }

    #[test]
    fn rate_one_matches_exact() {
        let seq = zipfish(5000, 200);
        let exact = miss_curve(&seq, 128);
        let approx = sampled_miss_curve(&seq, 128, 1.0);
        for c in 0..=128 {
            assert_eq!(approx.misses(c), exact.misses(c) as f64, "capacity {c}");
        }
        assert_eq!(approx.sampled_accesses, seq.len());
    }

    #[test]
    fn sampled_curve_tracks_exact_within_tolerance() {
        let seq = zipfish(60_000, 500);
        let exact = miss_curve(&seq, 256);
        let approx = sampled_miss_curve(&seq, 256, 0.25);
        // Knee regions are coarse at rate 0.25 (distance granularity 1/R);
        // SHARDS accuracy claims are about large traces and averaged error.
        let err = max_miss_ratio_error(&exact, &approx, 256);
        assert!(err < 0.3, "miss-ratio error {err}");
        // Away from the knee the estimate is tight.
        let tail_err = (192..=256)
            .map(|c| (exact.misses(c) as f64 / seq.len() as f64 - approx.miss_ratio(c)).abs())
            .fold(0.0, f64::max);
        assert!(tail_err < 0.1, "tail error {tail_err}");
        // Totals scale back to within 25%.
        let total_err = (approx.total_requests() - seq.len() as f64).abs() / seq.len() as f64;
        assert!(total_err < 0.25, "total error {total_err}");
    }

    #[test]
    fn monotone_in_capacity() {
        let seq = zipfish(20_000, 300);
        let approx = sampled_miss_curve(&seq, 128, 0.3);
        for c in 1..=128 {
            assert!(approx.misses(c) <= approx.misses(c - 1) + 1e-9);
        }
    }

    #[test]
    fn lower_rates_sample_fewer_accesses() {
        let seq = zipfish(30_000, 400);
        let a = sampled_miss_curve(&seq, 64, 0.5);
        let b = sampled_miss_curve(&seq, 64, 0.05);
        assert!(b.sampled_accesses < a.sampled_accesses);
        assert!(b.sampled_accesses > 0);
    }

    #[test]
    fn empty_trace() {
        let approx = sampled_miss_curve(&[], 16, 0.5);
        assert_eq!(approx.total_requests(), 0.0);
        assert_eq!(approx.miss_ratio(4), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn rejects_zero_rate() {
        sampled_miss_curve(&[PageId(1)], 4, 0.0);
    }
}
