//! Test-only reference implementations kept for differential testing.
//!
//! [`MapLru`] is the pre-packed LRU verbatim: an arena-allocated intrusive
//! list indexed by `HashMap<PageId, u32>`. It is *not* used anywhere in the
//! hot path — it exists so `tests/lru_differential.rs` can drive random
//! request streams through both implementations and assert identical
//! hit/miss/evict behaviour and identical checkpoint bytes. Keeping the old
//! code compiled (rather than comparing against a hand-written model) means
//! the differential test pins the packed rewrite against the exact
//! semantics the rest of the workspace was built on.

use std::collections::HashMap;

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// The old `HashMap`-indexed LRU, preserved as a differential-test oracle.
///
/// Behaviour (including the checkpoint byte encoding) is intentionally
/// frozen; do not "improve" this type — fixes belong in
/// [`crate::LruCache`], and this oracle exists to catch them diverging.
#[derive(Clone, Debug)]
pub struct MapLru {
    capacity: usize,
    /// page -> arena slot
    map: HashMap<PageId, u32>,
    arena: Vec<Node>,
    free: Vec<u32>,
    /// most-recently-used slot
    head: u32,
    /// least-recently-used slot
    tail: u32,
}

impl MapLru {
    /// Creates an empty cache holding at most `capacity` pages.
    ///
    /// (The old implementation clamped its pre-size at `1 << 20`; that only
    /// affected allocation, not behaviour, so the oracle simply pre-sizes
    /// nothing.)
    pub fn new(capacity: usize) -> Self {
        MapLru {
            capacity,
            map: HashMap::new(),
            arena: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Pages currently resident, most-recently-used first.
    pub fn pages_mru_first(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.arena[cur as usize];
            out.push(n.page);
            cur = n.next;
        }
        out
    }

    /// Evicts and returns the least-recently-used page, if any.
    pub fn pop_lru(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let page = self.arena[slot as usize].page;
        self.unlink(slot);
        self.map.remove(&page);
        self.free.push(slot);
        Some(page)
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.arena[slot as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.arena[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        {
            let n = &mut self.arena[slot as usize];
            n.prev = NIL;
            n.next = self.head;
        }
        if self.head != NIL {
            self.arena[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn alloc(&mut self, page: PageId) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = Node {
                page,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            let slot = self.arena.len() as u32;
            self.arena.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            slot
        }
    }
}

impl Cache for MapLru {
    fn access(&mut self, page: PageId) -> Access {
        if let Some(&slot) = self.map.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return Access::Hit;
        }
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.map.len() >= self.capacity {
            self.pop_lru();
        }
        let slot = self.alloc(page);
        self.push_front(slot);
        self.map.insert(page, slot);
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > capacity {
            self.pop_lru();
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.arena.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl Checkpoint for MapLru {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        let pages = self.pages_mru_first();
        w.put_len(pages.len());
        for p in pages {
            w.put_page(p);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("LRU resident count exceeds capacity"));
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            pages.push(r.get_page()?);
        }
        self.clear();
        self.capacity = capacity;
        for &p in pages.iter().rev() {
            if self.access(p) == Access::Hit {
                return Err(CodecError::Invalid("duplicate page in LRU checkpoint"));
            }
        }
        Ok(())
    }
}
