//! A lock-free split-ordered hash map over an index arena, in safe Rust.
//!
//! This is the Shalev–Shavit *split-ordered list* (recursive split-ordering
//! of one lock-free linked list, a growable bucket array of dummy-node
//! shortcuts) combined with a Harris linked list (logical deletion via a
//! mark bit, physical unlink by helping CAS). Three adaptations make it
//! expressible without `unsafe`:
//!
//! * **Index arena, not pointers.** Nodes live in an append-only segmented
//!   arena and are addressed by `u32` slot index; `next` links are packed
//!   `tag | mark | index` words in a single `AtomicU64`. Out-of-thin-air
//!   reads are impossible — a stale index at worst addresses a *different
//!   valid node*, which the version tag and epoch scheme rule out.
//! * **Version-tagged links.** Every successful CAS on a `next` word bumps
//!   a 31-bit tag, so an ABA'd index (slot recycled and relinked) can never
//!   satisfy a stale compare — the compare covers the tag.
//! * **Epoch-based slot recycling.** Unlinked slots are retired through
//!   [`super::epoch::EpochGc`] and recycled only two epochs later, so no
//!   pinned traversal can walk into a re-initialized slot (see `epoch.rs`
//!   for the reachability argument).
//!
//! Every shared load/CAS that another thread can race with is announced to
//! the schedule explorer via [`super::yieldpoint::yield_point`]; the
//! explorer in `parapage-conform` enumerates interleavings of
//! insert/find/delete/resize over exactly these points.
//!
//! The map stores `(PageId, u64)` entries; callers that want a set pass
//! `0` values. Keys are split-ordered by bit-reversed FNV-1a hash, with the
//! page id as tiebreak so full-hash collisions stay distinct entries.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::checkpoint::fnv1a64;
use crate::types::PageId;

use super::epoch::{EpochGc, EpochGuard};
use super::sabotage;
use super::yieldpoint::yield_point;

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

const IDX_MASK: u64 = 0xFFFF_FFFF;
const MARK_BIT: u64 = 1 << 32;
const TAG_SHIFT: u32 = 33;

#[inline]
fn pack(idx: u32, mark: bool, tag: u64) -> u64 {
    ((tag & 0x7FFF_FFFF) << TAG_SHIFT) | (u64::from(mark) * MARK_BIT) | u64::from(idx)
}

#[inline]
fn idx_of(w: u64) -> u32 {
    (w & IDX_MASK) as u32
}

#[inline]
fn is_marked(w: u64) -> bool {
    w & MARK_BIT != 0
}

#[inline]
fn tag_of(w: u64) -> u64 {
    w >> TAG_SHIFT
}

/// Successor word to install over `old`: same shape, tag bumped.
#[inline]
fn bump(old: u64, idx: u32, mark: bool) -> u64 {
    pack(idx, mark, tag_of(old).wrapping_add(1))
}

/// One arena node. All fields are atomics because a node's slot is shared
/// the instant its index is published by a CAS.
struct Node {
    /// Split-order key: bit-reversed hash; low bit 1 = regular, 0 = dummy.
    so_key: AtomicU64,
    /// The page id for regular nodes, the bucket number for dummies.
    page: AtomicU64,
    /// Caller value (FIFO stamp, etc.); 0 for dummies.
    val: AtomicU64,
    /// Packed `tag | mark | index` successor word. Doubles as the free-list
    /// link while the slot is awaiting reuse.
    next: AtomicU64,
}

impl Node {
    fn empty() -> Node {
        Node {
            so_key: AtomicU64::new(0),
            page: AtomicU64::new(0),
            val: AtomicU64::new(0),
            next: AtomicU64::new(pack(NIL, false, 0)),
        }
    }
}

/// Append-only segmented growable array: segment `i` holds `BASE << i`
/// elements, so capacity doubles per segment and an index maps to its
/// segment with integer log arithmetic. Segments materialize on first
/// touch through `OnceLock`, so growth takes no lock and never moves
/// existing elements (indices stay stable forever — the property the
/// whole design leans on).
struct Segmented<T> {
    segs: Box<[OnceLock<Box<[T]>>]>,
    base: usize,
}

impl<T> Segmented<T> {
    fn new(base: usize, segs: usize) -> Self {
        Segmented {
            segs: (0..segs).map(|_| OnceLock::new()).collect(),
            base,
        }
    }

    fn capacity(&self) -> usize {
        self.base * ((1usize << self.segs.len()) - 1)
    }

    #[inline]
    fn locate(&self, idx: usize) -> (usize, usize) {
        let q = idx / self.base + 1;
        let seg = (usize::BITS - 1 - q.leading_zeros()) as usize;
        let start = self.base * ((1 << seg) - 1);
        (seg, idx - start)
    }

    #[inline]
    fn get(&self, idx: usize, init: impl Fn() -> T) -> &T {
        let (seg, off) = self.locate(idx);
        let boxed = self.segs[seg].get_or_init(|| {
            let len = self.base << seg;
            (0..len).map(|_| init()).collect()
        });
        &boxed[off]
    }
}

/// A lock-free split-ordered hash map from [`PageId`] to `u64`.
///
/// `insert`/`remove`/`contains`/`get` are lock-free; [`grow`]
/// (bucket-array doubling — the structure's *resize*) is a single CAS with
/// lazy, lock-free bucket initialization. Slot recycling goes through
/// epoch-based reclamation.
///
/// [`grow`]: SplitOrderedMap::grow
pub struct SplitOrderedMap {
    nodes: Segmented<Node>,
    /// Bump cursor over arena slots that have never been used.
    fresh: AtomicUsize,
    /// Treiber free stack of recycled slots (tagged head word).
    free_head: AtomicU64,
    /// Bucket array: slot `b` holds `dummy_index + 1`, 0 while uninitialized.
    buckets: Segmented<AtomicU64>,
    /// Current bucket count (power of two).
    bucket_count: AtomicUsize,
    /// Live regular entries.
    size: AtomicUsize,
    /// Grow when `size >= bucket_count * load_factor`.
    load_factor: usize,
    gc: EpochGc,
}

impl std::fmt::Debug for SplitOrderedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitOrderedMap")
            .field("len", &self.len())
            .field("buckets", &self.bucket_count())
            .finish_non_exhaustive()
    }
}

/// Position returned by the internal Harris `find`.
struct FindPos {
    /// Predecessor node index (always a reachable, at-the-time-unmarked
    /// node: a dummy at minimum).
    prev: u32,
    /// The exact word read from `prev.next` (its tag arms the caller's CAS
    /// against concurrent mutation).
    prev_word: u64,
    /// Successor index (`NIL` at end of chain).
    curr: u32,
    /// Whether `curr` holds exactly the sought key.
    found: bool,
}

fn so_regular(hash: u64) -> u64 {
    (hash | (1 << 63)).reverse_bits()
}

fn so_dummy(bucket: u64) -> u64 {
    bucket.reverse_bits()
}

fn hash_page(page: PageId) -> u64 {
    fnv1a64(&page.0.to_le_bytes())
}

/// Bucket `b`'s parent: `b` with its most-significant set bit cleared.
fn parent_bucket(b: usize) -> usize {
    debug_assert!(b > 0);
    b ^ (1 << (usize::BITS - 1 - b.leading_zeros()))
}

impl Default for SplitOrderedMap {
    fn default() -> Self {
        Self::new()
    }
}

impl SplitOrderedMap {
    /// An empty map with 2 initial buckets and load factor 4.
    pub fn new() -> Self {
        SplitOrderedMap::with_config(2, 4)
    }

    /// An empty map with `initial_buckets` (rounded up to a power of two)
    /// and the given `load_factor` (grow when `size >= buckets * load`).
    /// Tiny values of both make bucket splits easy to provoke, which the
    /// schedule explorer uses to exercise the resize path.
    pub fn with_config(initial_buckets: usize, load_factor: usize) -> Self {
        let map = SplitOrderedMap {
            nodes: Segmented::new(64, 24),
            fresh: AtomicUsize::new(0),
            free_head: AtomicU64::new(pack(NIL, false, 0)),
            buckets: Segmented::new(8, 18),
            bucket_count: AtomicUsize::new(initial_buckets.next_power_of_two().max(1)),
            size: AtomicUsize::new(0),
            load_factor: load_factor.max(1),
            gc: EpochGc::new(),
        };
        // Bucket 0's dummy is the head of the whole chain; materialize it
        // eagerly so every traversal has an anchor.
        let head = map.alloc_node(so_dummy(0), 0, 0, NIL);
        map.bucket_slot(0)
            .store(u64::from(head) + 1, Ordering::SeqCst);
        map
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.size.load(Ordering::SeqCst)
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current bucket count (a power of two).
    pub fn bucket_count(&self) -> usize {
        self.bucket_count.load(Ordering::SeqCst)
    }

    fn node(&self, idx: u32) -> &Node {
        self.nodes.get(idx as usize, Node::empty)
    }

    fn bucket_slot(&self, b: usize) -> &AtomicU64 {
        self.buckets.get(b, || AtomicU64::new(0))
    }

    /// Pops a recycled slot or bumps the fresh cursor; initializes fields.
    fn alloc_node(&self, so_key: u64, page: u64, val: u64, next_idx: u32) -> u32 {
        let idx = match self.pop_free() {
            Some(i) => i,
            None => {
                // Opportunistically drain the epoch limbo into the free
                // stack before extending the arena.
                for freed in self.gc.try_advance() {
                    self.push_free(freed);
                }
                match self.pop_free() {
                    Some(i) => i,
                    None => {
                        let i = self.fresh.fetch_add(1, Ordering::SeqCst);
                        assert!(
                            i < self.nodes.capacity() && i < NIL as usize,
                            "split-ordered arena exhausted"
                        );
                        i as u32
                    }
                }
            }
        };
        let n = self.node(idx);
        n.so_key.store(so_key, Ordering::SeqCst);
        n.page.store(page, Ordering::SeqCst);
        n.val.store(val, Ordering::SeqCst);
        let old = n.next.load(Ordering::SeqCst);
        n.next.store(bump(old, next_idx, false), Ordering::SeqCst);
        idx
    }

    fn push_free(&self, idx: u32) {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            let n = self.node(idx);
            let old = n.next.load(Ordering::SeqCst);
            n.next
                .store(bump(old, idx_of(head), false), Ordering::SeqCst);
            if self
                .free_head
                .compare_exchange(
                    head,
                    bump(head, idx, false),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return;
            }
        }
    }

    fn pop_free(&self) -> Option<u32> {
        loop {
            let head = self.free_head.load(Ordering::SeqCst);
            let idx = idx_of(head);
            if idx == NIL {
                return None;
            }
            let next = idx_of(self.node(idx).next.load(Ordering::SeqCst));
            if self
                .free_head
                .compare_exchange(
                    head,
                    bump(head, next, false),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return Some(idx);
            }
        }
    }

    /// Returns the dummy-node index anchoring `bucket`, initializing the
    /// bucket (and, recursively, its parent chain) on first touch.
    fn ensure_bucket(&self, bucket: usize, guard: &EpochGuard<'_>) -> u32 {
        let slot = self.bucket_slot(bucket);
        let v = slot.load(Ordering::SeqCst);
        if v != 0 {
            return (v - 1) as u32;
        }
        debug_assert!(bucket > 0, "bucket 0 is initialized at construction");
        let parent = self.ensure_bucket(parent_bucket(bucket), guard);
        let key = so_dummy(bucket as u64);
        let dummy = if sabotage::resize_fence_dropped() {
            // SEEDED BUG (off by default): publish a detached dummy without
            // splicing it into the parent chain — the "resize fence" that
            // makes a fresh bucket's shortcut agree with the total list
            // order is dropped. Entries that sorted into this bucket's key
            // range before the split become unreachable through the new
            // shortcut: a lost update the schedule explorer must catch.
            self.alloc_node(key, bucket as u64, 0, NIL)
        } else {
            self.insert_at(parent, key, bucket as u64, 0, guard).1
        };
        yield_point("bucket-publish");
        match slot.compare_exchange(0, u64::from(dummy) + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => dummy,
            // Another thread initialized the bucket first. Without the
            // seeded bug both threads resolved the same keyed dummy node,
            // so the values agree; with it, drop ours on the floor (it is
            // detached by construction).
            Err(raced) => (raced - 1) as u32,
        }
    }

    /// Harris find over the chain anchored at `start`: locates the first
    /// node with `(so_key, page) >= (key, page_key)`, physically unlinking
    /// any marked node it steps over (and retiring its slot).
    fn find(&self, start: u32, key: u64, page_key: u64, guard: &EpochGuard<'_>) -> FindPos {
        'retry: loop {
            let mut prev = start;
            yield_point("find-head");
            let mut prev_word = self.node(prev).next.load(Ordering::SeqCst);
            loop {
                let curr = idx_of(prev_word);
                if curr == NIL {
                    return FindPos {
                        prev,
                        prev_word,
                        curr: NIL,
                        found: false,
                    };
                }
                let curr_node = self.node(curr);
                yield_point("find-next");
                let curr_word = curr_node.next.load(Ordering::SeqCst);
                let ckey = curr_node.so_key.load(Ordering::SeqCst);
                let cpage = curr_node.page.load(Ordering::SeqCst);
                if is_marked(curr_word) {
                    // Help: physically unlink the logically deleted node.
                    yield_point("unlink-cas");
                    let next_word = bump(prev_word, idx_of(curr_word), false);
                    match self.node(prev).next.compare_exchange(
                        prev_word,
                        next_word,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => {
                            // Unique unlinker (the tag made the transition
                            // exclusive): this thread owns the retirement.
                            self.gc.retire(guard, curr);
                            prev_word = next_word;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                if (ckey, cpage) >= (key, page_key) {
                    return FindPos {
                        prev,
                        prev_word,
                        curr,
                        found: ckey == key && cpage == page_key,
                    };
                }
                prev = curr;
                prev_word = curr_word;
            }
        }
    }

    /// Inserts `(key, page, val)` into the chain anchored at `start`.
    /// Returns `(inserted, node_index)` — on a duplicate key the existing
    /// node's index comes back (what bucket initialization needs).
    fn insert_at(
        &self,
        start: u32,
        key: u64,
        page: u64,
        val: u64,
        guard: &EpochGuard<'_>,
    ) -> (bool, u32) {
        loop {
            let pos = self.find(start, key, page, guard);
            if pos.found {
                return (false, pos.curr);
            }
            let fresh = self.alloc_node(key, page, val, pos.curr);
            yield_point("insert-cas");
            if self
                .node(pos.prev)
                .next
                .compare_exchange(
                    pos.prev_word,
                    bump(pos.prev_word, fresh, false),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return (true, fresh);
            }
            // Never published: the slot can go straight back.
            self.push_free(fresh);
        }
    }

    /// The dummy anchoring `page`'s bucket under the current bucket count.
    fn bucket_for(&self, hash: u64, guard: &EpochGuard<'_>) -> u32 {
        let b = (hash as usize) & (self.bucket_count() - 1);
        self.ensure_bucket(b, guard)
    }

    /// Inserts `page -> val`; returns `false` (without updating the value)
    /// when the page is already present.
    pub fn insert(&self, page: PageId, val: u64) -> bool {
        let guard = self.gc.pin();
        let hash = hash_page(page);
        let start = self.bucket_for(hash, &guard);
        let (inserted, _) = self.insert_at(start, so_regular(hash), page.0, val, &guard);
        if inserted {
            self.size.fetch_add(1, Ordering::SeqCst);
            drop(guard);
            self.maybe_grow();
        }
        inserted
    }

    /// Removes `page`; returns `false` when it was not present.
    pub fn remove(&self, page: PageId) -> bool {
        let guard = self.gc.pin();
        let hash = hash_page(page);
        let key = so_regular(hash);
        loop {
            let start = self.bucket_for(hash, &guard);
            let pos = self.find(start, key, page.0, &guard);
            if !pos.found {
                return false;
            }
            let curr_node = self.node(pos.curr);
            yield_point("mark-load");
            let curr_word = curr_node.next.load(Ordering::SeqCst);
            if is_marked(curr_word) {
                continue; // someone else is removing it; re-find (helps)
            }
            yield_point("mark-cas");
            if curr_node
                .next
                .compare_exchange(
                    curr_word,
                    bump(curr_word, idx_of(curr_word), true),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                // Logical removal done; this op owns the size decrement.
                self.size.fetch_sub(1, Ordering::SeqCst);
                // Attempt the physical unlink; on failure the next find
                // through this chain helps and retires instead.
                yield_point("remove-unlink");
                if self
                    .node(pos.prev)
                    .next
                    .compare_exchange(
                        pos.prev_word,
                        bump(pos.prev_word, idx_of(curr_word), false),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    self.gc.retire(&guard, pos.curr);
                }
                return true;
            }
        }
    }

    /// Whether `page` is present.
    pub fn contains(&self, page: PageId) -> bool {
        self.get(page).is_some()
    }

    /// The value stored for `page`, if present.
    pub fn get(&self, page: PageId) -> Option<u64> {
        let guard = self.gc.pin();
        let hash = hash_page(page);
        let start = self.bucket_for(hash, &guard);
        let pos = self.find(start, so_regular(hash), page.0, &guard);
        if pos.found {
            Some(self.node(pos.curr).val.load(Ordering::SeqCst))
        } else {
            None
        }
    }

    /// Doubles the bucket count (the structure's *resize*). Buckets
    /// themselves materialize lazily on first access. No-op at the bucket
    /// segment capacity limit.
    pub fn grow(&self) {
        loop {
            let cur = self.bucket_count();
            if cur * 2 > self.buckets.capacity() {
                return;
            }
            yield_point("grow-cas");
            if self
                .bucket_count
                .compare_exchange(cur, cur * 2, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    fn maybe_grow(&self) {
        if self.len() >= self.bucket_count().saturating_mul(self.load_factor) {
            self.grow();
        }
    }

    /// Weakly consistent scan of every live entry, sorted by page id.
    /// Exact when no writer is concurrent (the quiescent snapshots the
    /// checkpoint path and the test ledgers take).
    pub fn entries(&self) -> Vec<(PageId, u64)> {
        let guard = self.gc.pin();
        let _ = &guard;
        let head = (self.bucket_slot(0).load(Ordering::SeqCst) - 1) as u32;
        let mut out = Vec::with_capacity(self.len());
        let mut cur = idx_of(self.node(head).next.load(Ordering::SeqCst));
        while cur != NIL {
            let n = self.node(cur);
            let w = n.next.load(Ordering::SeqCst);
            let key = n.so_key.load(Ordering::SeqCst);
            if !is_marked(w) && key & 1 == 1 {
                out.push((
                    PageId(n.page.load(Ordering::SeqCst)),
                    n.val.load(Ordering::SeqCst),
                ));
            }
            cur = idx_of(w);
        }
        out.sort_unstable();
        out
    }

    /// The live entry with the smallest value (FIFO's eviction victim).
    /// Weakly consistent under concurrency, exact when quiescent.
    pub fn min_by_val(&self) -> Option<(PageId, u64)> {
        self.entries()
            .into_iter()
            .min_by_key(|&(page, val)| (val, page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn insert_find_remove_round_trip() {
        let m = SplitOrderedMap::new();
        assert!(m.is_empty());
        assert!(m.insert(p(1), 10));
        assert!(!m.insert(p(1), 99), "duplicate insert must fail");
        assert!(m.insert(p(2), 20));
        assert_eq!(m.get(p(1)), Some(10), "value survives duplicate insert");
        assert_eq!(m.get(p(2)), Some(20));
        assert_eq!(m.len(), 2);
        assert!(m.remove(p(1)));
        assert!(!m.remove(p(1)));
        assert!(!m.contains(p(1)));
        assert!(m.contains(p(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_membership() {
        let m = SplitOrderedMap::with_config(1, 2);
        for v in 0..200 {
            assert!(m.insert(p(v), v));
        }
        assert!(m.bucket_count() > 1, "load factor must have forced splits");
        for v in 0..200 {
            assert_eq!(m.get(p(v)), Some(v), "page {v} lost across splits");
        }
        assert_eq!(m.len(), 200);
        let entries = m.entries();
        assert_eq!(entries.len(), 200);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn explicit_grow_is_idempotent_on_membership() {
        let m = SplitOrderedMap::new();
        for v in 0..50 {
            m.insert(p(v), v);
        }
        for _ in 0..5 {
            m.grow();
        }
        for v in 0..50 {
            assert!(m.contains(p(v)));
        }
    }

    #[test]
    fn removed_slots_are_recycled() {
        let m = SplitOrderedMap::new();
        for round in 0..50u64 {
            for v in 0..20 {
                m.insert(p(round * 100 + v), v);
            }
            for v in 0..20 {
                m.remove(p(round * 100 + v));
            }
        }
        assert!(m.is_empty());
        // 1000 inserts with aggressive churn must not burn 1000 fresh
        // arena slots: recycling has to kick in.
        assert!(
            m.fresh.load(Ordering::SeqCst) < 500,
            "arena grew to {} slots for a 20-entry working set",
            m.fresh.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn min_by_val_tracks_fifo_order() {
        let m = SplitOrderedMap::new();
        m.insert(p(5), 2);
        m.insert(p(9), 0);
        m.insert(p(7), 1);
        assert_eq!(m.min_by_val(), Some((p(9), 0)));
        m.remove(p(9));
        assert_eq!(m.min_by_val(), Some((p(7), 1)));
    }

    #[test]
    fn concurrent_disjoint_ranges_lose_nothing() {
        let m = SplitOrderedMap::with_config(1, 2);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                s.spawn(move || {
                    for v in 0..500 {
                        assert!(m.insert(p(t * 10_000 + v), v));
                    }
                    for v in 0..500 {
                        assert!(m.contains(p(t * 10_000 + v)));
                    }
                    for v in 0..250 {
                        assert!(m.remove(p(t * 10_000 + v)));
                    }
                });
            }
        });
        assert_eq!(m.len(), 4 * 250);
        for t in 0..4u64 {
            for v in 250..500 {
                assert!(m.contains(p(t * 10_000 + v)));
            }
        }
    }

    #[test]
    fn concurrent_contended_single_key_is_exclusive() {
        // Many threads fight to insert/remove one key; the number of
        // successful inserts can exceed successful removes by at most the
        // final presence.
        let m = SplitOrderedMap::new();
        let ins = AtomicUsize::new(0);
        let del = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (m, ins, del) = (&m, &ins, &del);
                s.spawn(move || {
                    for _ in 0..200 {
                        if m.insert(p(42), 0) {
                            ins.fetch_add(1, Ordering::SeqCst);
                        }
                        if m.remove(p(42)) {
                            del.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        let (i, d) = (ins.load(Ordering::SeqCst), del.load(Ordering::SeqCst));
        let present = m.contains(p(42)) as usize;
        assert_eq!(
            i,
            d + present,
            "inserts {i} vs removes {d} + live {present}"
        );
        assert_eq!(m.len(), present);
    }
}
