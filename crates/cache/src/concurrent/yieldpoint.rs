//! Schedule-exploration yield points.
//!
//! Every lock-free operation in [`crate::concurrent`] announces its shared-
//! memory access points by calling [`yield_point`] immediately before each
//! load or CAS that another thread could race with. In production the call
//! is a thread-local read and a branch — there is no registered hook, so it
//! costs a few nanoseconds and touches no shared state.
//!
//! The conformance oracle's schedule explorer (`parapage-conform`'s
//! `schedules` module) registers a per-thread hook that parks the calling
//! thread and hands control back to a virtual scheduler, which then decides
//! which thread runs to its *next* yield point. Because the hook is
//! thread-local, an explorer driving three virtual threads in one process
//! does not perturb every other cache in the address space.

use std::cell::RefCell;

/// The hook type: called with a static label naming the access point
/// (useful when debugging a failing schedule).
pub type YieldHook = Box<dyn FnMut(&'static str)>;

thread_local! {
    static HOOK: RefCell<Option<YieldHook>> = const { RefCell::new(None) };
}

/// Installs `hook` as this thread's yield hook, replacing any previous one.
///
/// Intended for schedule-exploration harnesses only; every instrumented
/// shared-memory access on this thread will invoke the hook until
/// [`clear_yield_hook`] runs.
pub fn set_yield_hook(hook: YieldHook) {
    HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Removes this thread's yield hook (no-op when none is installed).
pub fn clear_yield_hook() {
    HOOK.with(|h| *h.borrow_mut() = None);
}

/// Announces an instrumented shared-memory access point.
///
/// No-op unless [`set_yield_hook`] installed a hook on this thread. The
/// `label` names the access site (`"find-load"`, `"insert-cas"`, …).
#[inline]
pub fn yield_point(label: &'static str) {
    HOOK.with(|h| {
        if let Ok(mut slot) = h.try_borrow_mut() {
            if let Some(hook) = slot.as_mut() {
                hook(label);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn hook_fires_only_when_installed() {
        let hits = Rc::new(Cell::new(0usize));
        yield_point("noop");
        let h = hits.clone();
        set_yield_hook(Box::new(move |_| h.set(h.get() + 1)));
        yield_point("a");
        yield_point("b");
        clear_yield_hook();
        yield_point("c");
        assert_eq!(hits.get(), 2);
    }

    #[test]
    fn reentrant_yield_inside_hook_does_not_deadlock() {
        // A hook that itself hits a yield point must not re-enter (the
        // RefCell is already borrowed; the inner call is a no-op).
        set_yield_hook(Box::new(move |_| yield_point("inner")));
        yield_point("outer");
        clear_yield_hook();
    }
}
