//! Sharded concurrent cache: the fine-grained-locking baseline.
//!
//! [`ShardedCache`] splits one logical cache into `n` (a power of two)
//! independent shards, each a plain sequential policy behind its own
//! `Mutex`. A page is routed to its shard by FNV-1a hash, so two threads
//! touching different shards never contend. This is the *baseline* the
//! lock-free substrate is judged against: trivially correct (each shard is
//! the already-verified sequential policy, serialized by its lock) and
//! already concurrent enough for the multi-tenant engine.
//!
//! Two properties anchor the test story:
//!
//! * **1-shard degeneracy.** With one shard the router is the identity and
//!   the checkpoint encoding below adds no framing, so a 1-shard cache is
//!   *byte-identical* — same behaviour, same snapshot bytes — to the
//!   sequential cache it wraps. The `sharded_props` proptest pins this for
//!   every policy.
//! * **Per-shard ledgers.** When recording is on, every access is logged
//!   (page, outcome) under the shard lock, in the exact order the lock
//!   serialized them. Replaying a shard's ledger through a fresh sequential
//!   cache of the same capacity must reproduce the outcomes exactly — the
//!   linearization evidence the conform oracle checks concurrent histories
//!   against.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::checkpoint::{fnv1a64, Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::lru::LruCache;
use crate::policy::{Access, Cache};
use crate::types::{PageId, Time};

use super::yieldpoint::yield_point;

/// A concurrent cache built from `n` independently locked sequential shards.
pub struct ShardedCache<C> {
    shards: Box<[Mutex<Shard<C>>]>,
    mask: u64,
    record_ledgers: AtomicBool,
}

struct Shard<C> {
    cache: C,
    ledger: Vec<(PageId, Access)>,
}

/// The conventional sharded LRU — what the engine integration uses.
pub type ShardedLru = ShardedCache<LruCache>;

/// Capacity of shard `i` when `total` pages are split across `n` shards:
/// `total / n`, with the first `total % n` shards holding one extra page.
pub fn shard_capacity(total: usize, n: usize, i: usize) -> usize {
    total / n + usize::from(i < total % n)
}

impl<C: std::fmt::Debug> std::fmt::Debug for ShardedCache<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedCache<LruCache> {
    /// A sharded LRU with `capacity` total pages across `shards` shards
    /// (rounded up to a power of two).
    pub fn with_shards(capacity: usize, shards: usize) -> ShardedLru {
        ShardedCache::with_shards_by(capacity, shards, LruCache::new)
    }
}

impl<C: Cache> ShardedCache<C> {
    /// Builds a sharded cache over `shards` (rounded up to a power of two)
    /// instances produced by `make`, which receives each shard's capacity.
    pub fn with_shards_by(
        capacity: usize,
        shards: usize,
        mut make: impl FnMut(usize) -> C,
    ) -> Self {
        let n = shards.next_power_of_two().max(1);
        ShardedCache {
            shards: (0..n)
                .map(|i| {
                    Mutex::new(Shard {
                        cache: make(shard_capacity(capacity, n, i)),
                        ledger: Vec::new(),
                    })
                })
                .collect(),
            mask: (n - 1) as u64,
            record_ledgers: AtomicBool::new(false),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `page` routes to.
    pub fn shard_of(&self, page: PageId) -> usize {
        if self.mask == 0 {
            return 0; // 1-shard degenerate case: router is the identity
        }
        (fnv1a64(&page.0.to_le_bytes()) & self.mask) as usize
    }

    fn shard(&self, i: usize) -> std::sync::MutexGuard<'_, Shard<C>> {
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Capacity of every shard, in shard order (what a ledger replayer
    /// needs to rebuild each shard's sequential twin).
    pub fn shard_capacities(&self) -> Vec<usize> {
        (0..self.shards.len())
            .map(|i| self.shard(i).cache.capacity())
            .collect()
    }

    /// Turns per-shard access ledgers on or off. Ledgers record every
    /// access (page, outcome) in shard-lock serialization order; the
    /// conform oracle replays them against the sequential policy.
    pub fn set_ledger_recording(&self, on: bool) {
        self.record_ledgers.store(on, Ordering::SeqCst);
    }

    /// Drains and returns the per-shard ledgers accumulated so far.
    pub fn take_ledgers(&self) -> Vec<Vec<(PageId, Access)>> {
        self.shards
            .iter()
            .map(|s| std::mem::take(&mut s.lock().unwrap_or_else(|e| e.into_inner()).ledger))
            .collect()
    }

    /// Concurrent access path: routes `page` to its shard, serializes on
    /// that shard's lock only.
    pub fn access_shared(&self, page: PageId) -> Access {
        yield_point("shard-lock");
        let mut shard = self.shard(self.shard_of(page));
        let outcome = shard.cache.access(page);
        if self.record_ledgers.load(Ordering::SeqCst) {
            shard.ledger.push((page, outcome));
        }
        outcome
    }

    /// Concurrent fused fit-check-and-access: one route, one lock
    /// acquisition, one shard probe — versus two of each for the default
    /// peek-then-access split (which would also be racy across the two lock
    /// acquisitions). The ledger records the access only when it happens,
    /// so replay evidence stays exact.
    pub fn access_if_fits_shared(
        &self,
        page: PageId,
        remaining: Time,
        miss_penalty: u64,
    ) -> Option<Access> {
        yield_point("shard-lock");
        let mut shard = self.shard(self.shard_of(page));
        let outcome = shard.cache.access_if_fits(page, remaining, miss_penalty)?;
        if self.record_ledgers.load(Ordering::SeqCst) {
            shard.ledger.push((page, outcome));
        }
        Some(outcome)
    }

    /// Concurrent residency probe.
    pub fn contains_shared(&self, page: PageId) -> bool {
        yield_point("shard-lock");
        self.shard(self.shard_of(page)).cache.contains(page)
    }

    /// Total resident pages across all shards (locks each shard in turn —
    /// a moment-in-time sum, not an atomic snapshot).
    pub fn len_shared(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, _)| self.shard(i).cache.len())
            .sum()
    }

    /// Total capacity across all shards.
    pub fn capacity_shared(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, _)| self.shard(i).cache.capacity())
            .sum()
    }
}

impl<C: Cache> Cache for ShardedCache<C> {
    fn access(&mut self, page: PageId) -> Access {
        self.access_shared(page)
    }

    fn access_if_fits(
        &mut self,
        page: PageId,
        remaining: Time,
        miss_penalty: u64,
    ) -> Option<Access> {
        self.access_if_fits_shared(page, remaining, miss_penalty)
    }

    fn contains(&self, page: PageId) -> bool {
        self.contains_shared(page)
    }

    fn len(&self) -> usize {
        self.len_shared()
    }

    fn capacity(&self) -> usize {
        self.capacity_shared()
    }

    fn resize(&mut self, capacity: usize) {
        let n = self.shards.len();
        for i in 0..n {
            let cap = shard_capacity(capacity, n, i);
            self.shard(i).cache.resize(cap);
        }
    }

    fn clear(&mut self) {
        for i in 0..self.shards.len() {
            self.shard(i).cache.clear();
        }
    }
}

impl<C: Cache + Checkpoint> Checkpoint for ShardedCache<C> {
    /// Shard payloads concatenated in shard order with **no header**: the
    /// shard count is construction-time configuration, not state, so a
    /// 1-shard cache's snapshot is byte-identical to its inner cache's.
    fn save(&self, w: &mut SnapWriter) {
        for i in 0..self.shards.len() {
            self.shard(i).cache.save(w);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        for i in 0..self.shards.len() {
            self.shard(i).cache.load(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoCache;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn one_shard_is_byte_identical_to_inner() {
        let mut plain = LruCache::new(5);
        let mut sharded = ShardedCache::with_shards(5, 1);
        for v in [1u64, 2, 3, 1, 4, 2, 5, 6, 1] {
            assert_eq!(plain.access(p(v)), sharded.access(p(v)));
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        plain.save(&mut wa);
        sharded.save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn capacity_splits_with_remainder_up_front() {
        let c = ShardedCache::with_shards(10, 4);
        let caps: Vec<usize> = (0..4).map(|i| c.shard(i).cache.capacity()).collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(c.capacity_shared(), 10);
    }

    #[test]
    fn resize_redistributes() {
        let mut c = ShardedCache::with_shards(8, 4);
        for v in 0..100 {
            c.access(p(v));
        }
        c.resize(4);
        assert_eq!(c.capacity(), 4);
        assert!(c.len() <= 4);
        c.resize(0);
        assert!(c.is_empty());
    }

    #[test]
    fn checkpoint_round_trips_across_shards() {
        let mut c = ShardedCache::with_shards_by(6, 4, FifoCache::new);
        for v in [9u64, 1, 5, 3, 7, 2, 9, 5] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = ShardedCache::with_shards_by(0, 4, FifoCache::new);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        for v in [9u64, 1, 5, 3, 7, 2] {
            assert_eq!(restored.contains(p(v)), c.contains(p(v)), "page {v}");
        }
        assert_eq!(restored.len(), c.len());
        assert_eq!(restored.capacity(), c.capacity());
    }

    #[test]
    fn ledgers_replay_exactly_through_sequential_policy() {
        let c = ShardedCache::with_shards(8, 4);
        c.set_ledger_recording(true);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for v in 0..200 {
                        c.access_shared(p((v * 17 + t * 31) % 64));
                    }
                });
            }
        });
        let ledgers = c.take_ledgers();
        assert_eq!(ledgers.iter().map(Vec::len).sum::<usize>(), 800);
        for (i, ledger) in ledgers.iter().enumerate() {
            let mut replay = LruCache::new(c.shard(i).cache.capacity());
            for &(page, outcome) in ledger {
                assert_eq!(replay.access(page), outcome, "shard {i} diverged");
            }
        }
    }

    #[test]
    fn disjoint_threads_lose_no_residency() {
        let c = ShardedCache::with_shards(1024, 8);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = &c;
                s.spawn(move || {
                    for v in 0..100 {
                        c.access_shared(p(t * 1000 + v));
                    }
                });
            }
        });
        // 800 distinct pages into capacity 1024: with a perfect router
        // nothing *must* survive per shard, but every page is either
        // resident or was evicted by its own shard's policy; the total
        // can never exceed capacity and the sum of ledgers is exact.
        assert!(c.len_shared() <= 1024);
        assert!(c.len_shared() > 0);
    }
}
