//! Concurrently-accessible cache substrate (ROADMAP open item 3).
//!
//! Two concurrent cache families behind the same [`crate::Cache`] trait the
//! sequential policies implement, so `Engine` and `Supervisor` drive them
//! unchanged:
//!
//! * [`ShardedCache`] / [`ShardedLru`] — the fine-grained-locking baseline:
//!   power-of-two shards, each a sequential policy behind its own mutex,
//!   pages routed by FNV-1a hash. With one shard it degenerates to exactly
//!   the wrapped cache, snapshot bytes included.
//! * [`LockFreeFifoCache`] over [`SplitOrderedMap`] — a lock-free
//!   split-ordered hash index (Shalev–Shavit recursive split-ordering over
//!   a Harris linked list) with a growable bucket array and epoch-based
//!   slot reclamation ([`epoch::EpochGc`]), written in safe Rust over an
//!   index arena with version-tagged links.
//!
//! Everything here is instrumented with [`yieldpoint::yield_point`] calls
//! at each racy shared access, which is what lets the schedule explorer in
//! `parapage-conform` enumerate thread interleavings deterministically.

pub mod epoch;
pub mod fifo;
pub mod sharded;
pub mod split_order;
pub mod yieldpoint;

pub use epoch::{EpochGc, EpochGuard};
pub use fifo::LockFreeFifoCache;
pub use sharded::{shard_capacity, ShardedCache, ShardedLru};
pub use split_order::SplitOrderedMap;
pub use yieldpoint::{clear_yield_hook, set_yield_hook, yield_point, YieldHook};

/// Deliberately seeded concurrency bugs, **off by default**, used to prove
/// the schedule-exploration harness can actually fail.
///
/// The acceptance bar for the harness is not "ten thousand green
/// interleavings" — it is that a real, subtle concurrency bug produces a
/// red one. This module hosts runtime switches that re-introduce such bugs
/// on demand; `parapage conform --concurrent` flips them on for a
/// self-check sweep and asserts the explorer reports violations.
pub mod sabotage {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RESIZE_FENCE_BUG: AtomicBool = AtomicBool::new(false);

    /// Enables/disables the *dropped resize fence* bug: bucket
    /// initialization in [`super::SplitOrderedMap`] publishes a detached
    /// dummy node without splicing it into the parent chain, so entries
    /// that sorted into the new bucket's key range before a grow become
    /// unreachable through the new shortcut — silent lost updates.
    ///
    /// Process-global: tests that flip it must run in their own process
    /// (a dedicated integration-test binary) and restore it when done.
    pub fn set_resize_fence_bug(on: bool) {
        RESIZE_FENCE_BUG.store(on, Ordering::SeqCst);
    }

    /// Whether the seeded resize-fence bug is currently enabled.
    pub fn resize_fence_dropped() -> bool {
        RESIZE_FENCE_BUG.load(Ordering::SeqCst)
    }

    static STALE_EPOCH_RETIRE_BUG: AtomicBool = AtomicBool::new(false);

    /// Enables/disables the *stale-pin retire* bug: [`super::EpochGc`]
    /// bins a retired slot by the retiring guard's pinned epoch instead of
    /// the current global epoch. A pin can lag the global by one (pins at
    /// the current epoch never block advancement), so the slot lands one
    /// bin too early and the very next advance recycles it while a reader
    /// pinned at the newer epoch may still hold the index — the exact
    /// stale-index/ABA hazard the epoch scheme exists to rule out.
    ///
    /// Process-global; same single-process discipline as
    /// [`set_resize_fence_bug`].
    pub fn set_stale_epoch_retire_bug(on: bool) {
        STALE_EPOCH_RETIRE_BUG.store(on, Ordering::SeqCst);
    }

    /// Whether the seeded stale-pin retire bug is currently enabled.
    pub fn stale_epoch_retire() -> bool {
        STALE_EPOCH_RETIRE_BUG.load(Ordering::SeqCst)
    }
}
