//! Epoch-based reclamation over arena slot indices.
//!
//! The lock-free structures in this module never free memory: nodes live in
//! an append-only segmented arena and are addressed by `u32` slot index.
//! "Reclamation" therefore means *recycling a slot index* for a new node.
//! The hazard is logical, not memory-unsafety (this crate forbids `unsafe`):
//! a traversal holding an index must not observe the slot re-initialized
//! with a different key mid-walk, or it could follow a recycled node's
//! `next` into an unrelated chain and return a wrong answer.
//!
//! The classic epoch scheme prevents exactly that:
//!
//! * every operation **pins** the global epoch for its duration
//!   ([`EpochGc::pin`] → [`EpochGuard`]);
//! * an unlinked node's slot is **retired** into the limbo bin of the
//!   *global* epoch at retire time ([`EpochGc::retire`]) — not the
//!   retirer's pinned epoch, which can lag the global by one, because pins
//!   at the current epoch never block advancement;
//! * a bin is handed back for reuse only once the global epoch has advanced
//!   **two** steps past it — which requires every pinned operation to have
//!   unpinned in between, so no live traversal can still hold the index.
//!
//! Pinning and unpinning are wait-free (one CAS-free slot claim, two
//! stores). Retiring and collecting take a short internal mutex on a limbo
//! bin; that path is off the reader fast path and bounded, which matches
//! the "epoch/hazard-style" contract this substrate promises: readers never
//! block, reclamation may briefly serialize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum simultaneously pinned operations. A claim beyond this many
/// concurrent guards spins (with periodic OS yields) until one of the
/// bounded in-flight operations drops its guard and frees a slot — an
/// operation is never allowed to run unpinned, because the epoch could
/// then advance twice under it and recycle indices it still holds.
const PARTICIPANTS: usize = 128;

/// Epoch-based slot-index reclamation domain; one per lock-free structure.
pub struct EpochGc {
    /// The global epoch counter.
    epoch: AtomicU64,
    /// Participant slots: `0` = free, else `pinned_epoch + 1`.
    slots: Box<[AtomicU64]>,
    /// Limbo bins, indexed by `retire_epoch % 3`. A bin is recyclable when
    /// the global epoch is two ahead of the bin's retire epoch.
    limbo: [Mutex<Vec<u32>>; 3],
}

impl std::fmt::Debug for EpochGc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGc")
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// An active pin on the epoch; dropping it unpins.
pub struct EpochGuard<'a> {
    gc: &'a EpochGc,
    /// Index of the participant slot this guard occupies in `gc.slots`.
    slot: usize,
    /// The epoch this guard pinned.
    epoch: u64,
}

impl EpochGuard<'_> {
    /// The epoch this guard is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.gc.slots[self.slot].store(0, Ordering::SeqCst);
    }
}

impl Default for EpochGc {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochGc {
    /// A fresh domain at epoch 0 with empty limbo bins.
    pub fn new() -> Self {
        EpochGc {
            epoch: AtomicU64::new(0),
            slots: (0..PARTICIPANTS).map(|_| AtomicU64::new(0)).collect(),
            limbo: [const { Mutex::new(Vec::new()) }; 3],
        }
    }

    /// The current global epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Pins the current epoch for the duration of the returned guard.
    ///
    /// When all [`PARTICIPANTS`] slots are occupied this waits (spinning,
    /// with periodic OS yields) for one to free rather than proceeding
    /// unpinned: an unpinned operation would leave the epoch free to
    /// advance twice mid-traversal and recycle indices it still holds.
    /// Every guard belongs to a bounded operation, so a slot frees soon.
    pub fn pin(&self) -> EpochGuard<'_> {
        let mut spins = 0u32;
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            // Claim the first free participant slot. The store must land
            // before we re-validate the epoch: if the epoch moved while we
            // were claiming, our recorded pin might be stale by one, which
            // the two-epoch grace period absorbs — but re-validating keeps
            // advancement responsive.
            let mut claimed = usize::MAX;
            for (i, s) in self.slots.iter().enumerate() {
                if s.compare_exchange(0, e + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    claimed = i;
                    break;
                }
            }
            if claimed == usize::MAX {
                spins = spins.wrapping_add(1);
                if spins % 64 == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            if self.epoch.load(Ordering::SeqCst) == e {
                return EpochGuard {
                    gc: self,
                    slot: claimed,
                    epoch: e,
                };
            }
            // Epoch moved mid-claim: release and retry so the pin is exact.
            self.slots[claimed].store(0, Ordering::SeqCst);
        }
    }

    /// Retires `idx` under `guard`: the slot joins the limbo bin of the
    /// **current global** epoch and becomes recyclable two advances later.
    ///
    /// Binning by the global epoch rather than `guard`'s pinned epoch is
    /// load-bearing: a pin can lag the global by one (pins at the current
    /// epoch never block [`Self::try_advance`]). If a thread pinned at `E`
    /// retired into bin `E` while the global was already `E+1`, the very
    /// next advance — which a reader pinned at `E+1` does *not* block —
    /// would hand the slot back while that reader may still hold the index
    /// it read before the unlink. Binning at the global epoch instead puts
    /// the slot a full two advances away from any such reader.
    pub fn retire(&self, guard: &EpochGuard<'_>, idx: u32) {
        let e = if super::sabotage::stale_epoch_retire() {
            guard.epoch()
        } else {
            self.epoch.load(Ordering::SeqCst)
        };
        let bin = (e % 3) as usize;
        self.limbo[bin]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(idx);
    }

    /// Attempts to advance the global epoch; on success returns the slot
    /// indices that just became safe to recycle (the bin retired two epochs
    /// ago). Returns an empty vec when any in-flight guard still pins an
    /// older epoch, or when another thread advanced first.
    pub fn try_advance(&self) -> Vec<u32> {
        let e = self.epoch.load(Ordering::SeqCst);
        for s in self.slots.iter() {
            let v = s.load(Ordering::SeqCst);
            if v != 0 && v - 1 != e {
                return Vec::new(); // a guard still pins an older epoch
            }
        }
        if self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Vec::new();
        }
        // Everything retired in epoch e-1 is now two epochs stale
        // (retire_epoch + 2 == e + 1 == the new global epoch).
        let freed_epoch = match e.checked_sub(1) {
            Some(f) => f,
            None => return Vec::new(),
        };
        let bin = (freed_epoch % 3) as usize;
        std::mem::take(&mut *self.limbo[bin].lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of slot indices currently waiting in limbo (test/metrics aid).
    pub fn limbo_len(&self) -> usize {
        self.limbo
            .iter()
            .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_slots_need_two_advances() {
        let gc = EpochGc::new();
        {
            let g = gc.pin();
            gc.retire(&g, 7);
            gc.retire(&g, 9);
            assert_eq!(gc.limbo_len(), 2);
        }
        // Retired at epoch 0: advancing 0 -> 1 frees nothing; advancing
        // 1 -> 2 hands the epoch-0 bin back.
        assert!(gc.try_advance().is_empty());
        let mut got = gc.try_advance();
        got.sort_unstable();
        assert_eq!(got, vec![7, 9]);
        assert_eq!(gc.limbo_len(), 0);
    }

    #[test]
    fn pinned_old_epoch_blocks_advancement() {
        let gc = EpochGc::new();
        let g = gc.pin();
        assert!(gc.try_advance().is_empty() && gc.current_epoch() == 1);
        // g still pins epoch 0, so 1 -> 2 must refuse.
        assert!(gc.try_advance().is_empty() && gc.current_epoch() == 1);
        drop(g);
        assert!(gc.try_advance().is_empty() && gc.current_epoch() == 2);
    }

    /// The review-pinning regression for retire binning: a pin can lag the
    /// global epoch by one, and retiring into the *pin's* bin would let the
    /// very next advance free the slot under a reader pinned at the newer
    /// epoch. Retiring must bin by the global epoch instead.
    #[test]
    fn stale_pin_retire_bins_by_global_epoch() {
        let gc = EpochGc::new();
        // `stale` pins at epoch 0, but pins at the current epoch never
        // block advancement: 0 -> 1.
        let stale = gc.pin();
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 1);
        // A reader pins at 1 and (conceptually) reads slot 7's index.
        let reader = gc.pin();
        assert_eq!(reader.epoch(), 1);
        // The stale-pinned thread unlinks and retires slot 7 while the
        // global is already 1. Binning by `stale.epoch()` (= 0) would park
        // it in the bin the next advance frees.
        gc.retire(&stale, 7);
        drop(stale);
        // Advance 1 -> 2 is NOT blocked by `reader` (pinned at current).
        // Slot 7 must survive it: it was retired at global epoch 1.
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 2);
        assert_eq!(gc.limbo_len(), 1, "slot freed under a live reader");
        // And `reader` (now one epoch stale) blocks 2 -> 3 until dropped.
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 2);
        drop(reader);
        assert_eq!(gc.try_advance(), vec![7]);
    }

    /// Participant overflow must wait for a slot, not run unpinned.
    #[test]
    fn overflow_pin_waits_for_a_slot() {
        let gc = EpochGc::new();
        let mut held: Vec<EpochGuard<'_>> = (0..PARTICIPANTS).map(|_| gc.pin()).collect();
        std::thread::scope(|s| {
            let h = s.spawn(|| gc.pin().epoch());
            std::thread::sleep(std::time::Duration::from_millis(20));
            // With every slot occupied the 129th pin must still be parked;
            // were it running unpinned it would have returned already.
            assert!(!h.is_finished(), "pin returned without a slot");
            held.pop();
            assert_eq!(h.join().expect("pin thread panicked"), 0);
        });
        drop(held);
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 1);
    }

    #[test]
    fn guards_release_their_slots() {
        let gc = EpochGc::new();
        for _ in 0..1000 {
            let _g = gc.pin();
        }
        // If slots leaked, the 129th pin would hit the overflow path and
        // current_epoch could never advance; instead everything is free.
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 1);
    }
}
