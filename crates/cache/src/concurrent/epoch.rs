//! Epoch-based reclamation over arena slot indices.
//!
//! The lock-free structures in this module never free memory: nodes live in
//! an append-only segmented arena and are addressed by `u32` slot index.
//! "Reclamation" therefore means *recycling a slot index* for a new node.
//! The hazard is logical, not memory-unsafety (this crate forbids `unsafe`):
//! a traversal holding an index must not observe the slot re-initialized
//! with a different key mid-walk, or it could follow a recycled node's
//! `next` into an unrelated chain and return a wrong answer.
//!
//! The classic epoch scheme prevents exactly that:
//!
//! * every operation **pins** the global epoch for its duration
//!   ([`EpochGc::pin`] → [`EpochGuard`]);
//! * an unlinked node's slot is **retired** into the limbo bin of the epoch
//!   it was retired in ([`EpochGc::retire`]);
//! * a bin is handed back for reuse only once the global epoch has advanced
//!   **two** steps past it — which requires every pinned operation to have
//!   unpinned in between, so no live traversal can still hold the index.
//!
//! Pinning and unpinning are wait-free (one CAS-free slot claim, two
//! stores). Retiring and collecting take a short internal mutex on a limbo
//! bin; that path is off the reader fast path and bounded, which matches
//! the "epoch/hazard-style" contract this substrate promises: readers never
//! block, reclamation may briefly serialize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum simultaneously pinned operations. A claim beyond this many
/// concurrent guards falls back to a "pinned forever" sentinel that simply
/// blocks epoch advancement until contention drops — safe, merely slower to
/// recycle.
const PARTICIPANTS: usize = 128;

/// Epoch-based slot-index reclamation domain; one per lock-free structure.
pub struct EpochGc {
    /// The global epoch counter.
    epoch: AtomicU64,
    /// Participant slots: `0` = free, else `pinned_epoch + 1`.
    slots: Box<[AtomicU64]>,
    /// Limbo bins, indexed by `retire_epoch % 3`. A bin is recyclable when
    /// the global epoch is two ahead of the bin's retire epoch.
    limbo: [Mutex<Vec<u32>>; 3],
}

impl std::fmt::Debug for EpochGc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGc")
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// An active pin on the epoch; dropping it unpins.
pub struct EpochGuard<'a> {
    gc: &'a EpochGc,
    /// Index into `gc.slots`, or `usize::MAX` when no slot was free (the
    /// overflow path: we pinned nothing, so we must have pinned *before*
    /// claiming — see [`EpochGc::pin`]).
    slot: usize,
    /// The epoch this guard pinned.
    epoch: u64,
}

impl EpochGuard<'_> {
    /// The epoch this guard is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        if self.slot != usize::MAX {
            self.gc.slots[self.slot].store(0, Ordering::SeqCst);
        }
    }
}

impl Default for EpochGc {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochGc {
    /// A fresh domain at epoch 0 with empty limbo bins.
    pub fn new() -> Self {
        EpochGc {
            epoch: AtomicU64::new(0),
            slots: (0..PARTICIPANTS).map(|_| AtomicU64::new(0)).collect(),
            limbo: [const { Mutex::new(Vec::new()) }; 3],
        }
    }

    /// The current global epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Pins the current epoch for the duration of the returned guard.
    pub fn pin(&self) -> EpochGuard<'_> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            // Claim the first free participant slot. The store must land
            // before we re-validate the epoch: if the epoch moved while we
            // were claiming, our recorded pin might be stale by one, which
            // the two-epoch grace period absorbs — but re-validating keeps
            // advancement responsive.
            let mut claimed = usize::MAX;
            for (i, s) in self.slots.iter().enumerate() {
                if s.compare_exchange(0, e + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    claimed = i;
                    break;
                }
            }
            if claimed == usize::MAX {
                // All slots busy: run unpinned but conservatively — report
                // the epoch we saw; with every slot occupied the epoch
                // cannot advance two steps under us anyway, because those
                // 128 pinned guards gate it.
                return EpochGuard {
                    gc: self,
                    slot: usize::MAX,
                    epoch: e,
                };
            }
            if self.epoch.load(Ordering::SeqCst) == e {
                return EpochGuard {
                    gc: self,
                    slot: claimed,
                    epoch: e,
                };
            }
            // Epoch moved mid-claim: release and retry so the pin is exact.
            self.slots[claimed].store(0, Ordering::SeqCst);
        }
    }

    /// Retires `idx` under `guard`: the slot joins the limbo bin of the
    /// guard's epoch and becomes recyclable two epochs later.
    pub fn retire(&self, guard: &EpochGuard<'_>, idx: u32) {
        let bin = (guard.epoch() % 3) as usize;
        self.limbo[bin]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(idx);
    }

    /// Attempts to advance the global epoch; on success returns the slot
    /// indices that just became safe to recycle (the bin retired two epochs
    /// ago). Returns an empty vec when any in-flight guard still pins an
    /// older epoch, or when another thread advanced first.
    pub fn try_advance(&self) -> Vec<u32> {
        let e = self.epoch.load(Ordering::SeqCst);
        for s in self.slots.iter() {
            let v = s.load(Ordering::SeqCst);
            if v != 0 && v - 1 != e {
                return Vec::new(); // a guard still pins an older epoch
            }
        }
        if self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Vec::new();
        }
        // Everything retired in epoch e-1 is now two epochs stale
        // (retire_epoch + 2 == e + 1 == the new global epoch).
        let freed_epoch = match e.checked_sub(1) {
            Some(f) => f,
            None => return Vec::new(),
        };
        let bin = (freed_epoch % 3) as usize;
        std::mem::take(&mut *self.limbo[bin].lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of slot indices currently waiting in limbo (test/metrics aid).
    pub fn limbo_len(&self) -> usize {
        self.limbo
            .iter()
            .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_slots_need_two_advances() {
        let gc = EpochGc::new();
        {
            let g = gc.pin();
            gc.retire(&g, 7);
            gc.retire(&g, 9);
            assert_eq!(gc.limbo_len(), 2);
        }
        // Retired at epoch 0: advancing 0 -> 1 frees nothing; advancing
        // 1 -> 2 hands the epoch-0 bin back.
        assert!(gc.try_advance().is_empty());
        let mut got = gc.try_advance();
        got.sort_unstable();
        assert_eq!(got, vec![7, 9]);
        assert_eq!(gc.limbo_len(), 0);
    }

    #[test]
    fn pinned_old_epoch_blocks_advancement() {
        let gc = EpochGc::new();
        let g = gc.pin();
        assert!(gc.try_advance().is_empty() && gc.current_epoch() == 1);
        // g still pins epoch 0, so 1 -> 2 must refuse.
        assert!(gc.try_advance().is_empty() && gc.current_epoch() == 1);
        drop(g);
        assert!(gc.try_advance().is_empty() && gc.current_epoch() == 2);
    }

    #[test]
    fn guards_release_their_slots() {
        let gc = EpochGc::new();
        for _ in 0..1000 {
            let _g = gc.pin();
        }
        // If slots leaked, the 129th pin would hit the overflow path and
        // current_epoch could never advance; instead everything is free.
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 1);
    }
}
