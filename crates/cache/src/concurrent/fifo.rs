//! A FIFO cache over the lock-free split-ordered index.
//!
//! Residency is a [`SplitOrderedMap`] from page to a monotonically
//! increasing *insertion stamp*; the eviction victim is the live entry with
//! the smallest stamp — exactly the queue front of the sequential
//! [`crate::FifoCache`]. Driven from one thread this cache is
//! operation-for-operation identical to the sequential FIFO (a unit test
//! and the conform sweep pin this); driven from many threads, individual
//! operations stay lock-free and the conform oracle checks the aggregate
//! hit/miss counts against the policy envelope instead of exact equality,
//! since `access` is a composite of several linearizable steps.
//!
//! The checkpoint encoding deliberately matches [`crate::FifoCache`] byte
//! for byte — `(capacity, len, pages in arrival order)` — so snapshots
//! taken from either implementation interchange.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

use super::split_order::SplitOrderedMap;

/// A concurrently accessible FIFO cache with lock-free operations.
#[derive(Debug)]
pub struct LockFreeFifoCache {
    map: SplitOrderedMap,
    capacity: AtomicUsize,
    stamp: AtomicU64,
}

impl LockFreeFifoCache {
    /// An empty cache with the given capacity.
    pub fn new(capacity: usize) -> Self {
        LockFreeFifoCache {
            map: SplitOrderedMap::new(),
            capacity: AtomicUsize::new(capacity),
            stamp: AtomicU64::new(0),
        }
    }

    /// Concurrent access path. Lock-free; under contention the miss path's
    /// evict-then-insert pair is not atomic as a unit (the conform oracle
    /// accounts for this with envelope checks rather than exact replay).
    pub fn access_shared(&self, page: PageId) -> Access {
        if self.map.contains(page) {
            return Access::Hit;
        }
        let cap = self.capacity.load(Ordering::SeqCst);
        if cap == 0 {
            return Access::Miss;
        }
        let stamp = self.stamp.fetch_add(1, Ordering::SeqCst);
        if !self.map.insert(page, stamp) {
            // A racing thread cached it between our probe and insert.
            return Access::Hit;
        }
        while self.map.len() > cap {
            match self.map.min_by_val() {
                Some((victim, _)) => {
                    self.map.remove(victim);
                }
                None => break,
            }
        }
        Access::Miss
    }

    /// Concurrent residency probe.
    pub fn contains_shared(&self, page: PageId) -> bool {
        self.map.contains(page)
    }
}

impl Cache for LockFreeFifoCache {
    fn access(&mut self, page: PageId) -> Access {
        self.access_shared(page)
    }

    fn contains(&self, page: PageId) -> bool {
        self.contains_shared(page)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity.load(Ordering::SeqCst)
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity.store(capacity, Ordering::SeqCst);
        while self.map.len() > capacity {
            match self.map.min_by_val() {
                Some((victim, _)) => {
                    self.map.remove(victim);
                }
                None => break,
            }
        }
    }

    fn clear(&mut self) {
        for (page, _) in self.map.entries() {
            self.map.remove(page);
        }
    }
}

impl Checkpoint for LockFreeFifoCache {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity.load(Ordering::SeqCst));
        let mut entries = self.map.entries();
        entries.sort_unstable_by_key(|&(page, stamp)| (stamp, page));
        w.put_len(entries.len());
        for (page, _) in entries {
            w.put_page(page);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("FIFO resident count exceeds capacity"));
        }
        let map = SplitOrderedMap::new();
        for stamp in 0..n as u64 {
            let page = r.get_page()?;
            if !map.insert(page, stamp) {
                return Err(CodecError::Invalid("duplicate page in FIFO snapshot"));
            }
        }
        self.map = map;
        self.capacity.store(capacity, Ordering::SeqCst);
        self.stamp.store(n as u64, Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoCache;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn sequential_drive_matches_fifo_exactly() {
        let mut seq = FifoCache::new(3);
        let mut conc = LockFreeFifoCache::new(3);
        let trace: Vec<u64> = (0..500).map(|i| (i * 7 + i / 3) % 11).collect();
        for &v in &trace {
            assert_eq!(seq.access(p(v)), conc.access(p(v)), "page {v}");
            assert_eq!(seq.len(), conc.len());
        }
        for v in 0..11 {
            assert_eq!(seq.contains(p(v)), conc.contains(p(v)), "page {v}");
        }
    }

    #[test]
    fn snapshot_bytes_interchange_with_sequential_fifo() {
        let mut seq = FifoCache::new(4);
        let mut conc = LockFreeFifoCache::new(4);
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            seq.access(p(v));
            conc.access(p(v));
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        seq.save(&mut wa);
        conc.save(&mut wb);
        let (ba, bb) = (wa.into_bytes(), wb.into_bytes());
        assert_eq!(ba, bb, "snapshot encodings diverge");
        // Cross-load: the sequential snapshot restores the concurrent cache.
        let mut restored = LockFreeFifoCache::new(0);
        restored.load(&mut SnapReader::new(&ba)).unwrap();
        assert_eq!(restored.access(p(7)), Access::Miss);
        assert_eq!(seq.access(p(7)), Access::Miss);
        assert_eq!(
            restored.contains(p(3)),
            seq.contains(p(3)),
            "same victim after restore"
        );
    }

    #[test]
    fn resize_and_clear_behave_like_sequential() {
        let mut c = LockFreeFifoCache::new(4);
        for v in 1..=4 {
            c.access(p(v));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(p(3)) && c.contains(p(4)), "oldest evicted first");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn zero_capacity_streams_through() {
        let mut c = LockFreeFifoCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn concurrent_hammering_never_exceeds_capacity_for_long() {
        let c = LockFreeFifoCache::new(16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for v in 0..1000 {
                        c.access_shared(p((v + t * 13) % 64));
                    }
                });
            }
        });
        // Quiescent: the final evict loops have run, so residency is
        // back inside capacity.
        assert!(c.len() <= 16, "len {} exceeds capacity", c.len());
        assert!(c.len() > 0);
    }
}
