//! LIRS — Low Inter-reference Recency Set replacement (Jiang & Zhang,
//! SIGMETRICS 2002).
//!
//! LIRS ranks pages by *reuse distance* rather than recency: pages with low
//! inter-reference recency (LIR) own most of the cache; the rest (HIR)
//! pass through a small resident queue, and a ghost presence in the
//! recency stack lets a re-referenced HIR page prove its reuse distance and
//! be promoted. Two properties matter for this workspace:
//!
//! * on loops slightly larger than the cache — exactly the paper's repeater
//!   pattern — LIRS keeps a stable LIR subset resident and hits on it,
//!   where LRU degrades to 0% hits;
//! * one sequential scan cannot displace the LIR set.
//!
//! The implementation uses a stamp-versioned stack with lazy invalidation
//! (amortized O(1) per access) and a periodic compaction to bound ghost
//! growth.

use std::collections::{HashMap, VecDeque};

use crate::policy::{Access, Cache};
use crate::types::PageId;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum St {
    Lir,
    HirResident,
    /// Non-resident, but still in the stack (its reuse distance is being
    /// tracked).
    HirGhost,
}

/// A LIRS cache.
#[derive(Clone, Debug)]
pub struct LirsCache {
    capacity: usize,
    /// Target LIR pages (`capacity - hir_cap`).
    lir_cap: usize,
    /// Target resident HIR pages (≥ 1 for capacity ≥ 2).
    hir_cap: usize,
    state: HashMap<PageId, St>,
    /// Recency stack (most recent at back), stamp-versioned.
    stack: VecDeque<(PageId, u64)>,
    /// Current stamp of each page's live stack entry.
    in_stack: HashMap<PageId, u64>,
    /// Resident HIR queue (front = eviction candidate).
    queue: VecDeque<PageId>,
    lir_count: usize,
    resident: usize,
    stamp: u64,
}

impl LirsCache {
    /// Creates an empty LIRS cache; ~1/8 of the capacity (at least one
    /// page, for capacities ≥ 2) is reserved for resident HIR pages.
    pub fn new(capacity: usize) -> Self {
        let hir_cap = if capacity >= 2 {
            (capacity / 8).max(1)
        } else {
            0
        };
        LirsCache {
            capacity,
            lir_cap: capacity - hir_cap,
            hir_cap,
            state: HashMap::new(),
            stack: VecDeque::new(),
            in_stack: HashMap::new(),
            queue: VecDeque::new(),
            lir_count: 0,
            resident: 0,
            stamp: 0,
        }
    }

    fn push_stack(&mut self, page: PageId) {
        self.stamp += 1;
        self.stack.push_back((page, self.stamp));
        self.in_stack.insert(page, self.stamp);
        // Compaction: bound the stack (ghosts + stale entries).
        if self.stack.len() > 8 * self.capacity.max(4) {
            let live = std::mem::take(&mut self.stack);
            self.stack = live
                .into_iter()
                .filter(|(p, st)| self.in_stack.get(p) == Some(st))
                .collect();
        }
    }

    /// Removes stale/non-LIR entries from the stack bottom; evicted ghosts
    /// are forgotten entirely (their reuse distance exceeded the stack).
    fn prune(&mut self) {
        while let Some(&(page, st)) = self.stack.front() {
            if self.in_stack.get(&page) != Some(&st) {
                self.stack.pop_front();
                continue;
            }
            match self.state.get(&page) {
                Some(St::Lir) => break,
                Some(St::HirGhost) => {
                    self.stack.pop_front();
                    self.in_stack.remove(&page);
                    self.state.remove(&page);
                }
                _ => {
                    self.stack.pop_front();
                    self.in_stack.remove(&page);
                }
            }
        }
    }

    /// Demotes the LIR page at the stack bottom to resident HIR.
    fn demote_bottom_lir(&mut self) {
        self.prune();
        if let Some(&(page, _)) = self.stack.front() {
            debug_assert_eq!(self.state.get(&page), Some(&St::Lir));
            self.state.insert(page, St::HirResident);
            self.lir_count -= 1;
            self.queue.push_back(page);
            // Its stack entry leaves (it must re-prove its reuse distance).
            self.stack.pop_front();
            self.in_stack.remove(&page);
            self.prune();
        }
    }

    /// Evicts one resident page to make room.
    fn evict_one(&mut self) {
        if let Some(victim) = self.queue.pop_front() {
            if self.state.get(&victim) == Some(&St::HirResident) {
                self.resident -= 1;
                if self.in_stack.contains_key(&victim) {
                    self.state.insert(victim, St::HirGhost);
                } else {
                    self.state.remove(&victim);
                }
            }
            return;
        }
        // No resident HIR (can happen transiently after resize): demote a
        // LIR page and retry.
        if self.lir_count > 0 {
            self.demote_bottom_lir();
            self.evict_one();
        }
    }

    fn queue_remove(&mut self, page: PageId) {
        if let Some(pos) = self.queue.iter().position(|&q| q == page) {
            self.queue.remove(pos);
        }
    }
}

impl Cache for LirsCache {
    fn access(&mut self, page: PageId) -> Access {
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.capacity == 1 {
            // Degenerate: behave as a 1-slot LRU.
            match self.state.get(&page) {
                Some(St::Lir) => return Access::Hit,
                _ => {
                    self.state.retain(|_, s| *s != St::Lir);
                    self.state.insert(page, St::Lir);
                    return Access::Miss;
                }
            }
        }
        match self.state.get(&page).copied() {
            Some(St::Lir) => {
                let was_bottom = self
                    .stack
                    .front()
                    .map(|&(p, st)| p == page && self.in_stack.get(&p) == Some(&st))
                    .unwrap_or(false);
                self.push_stack(page);
                if was_bottom {
                    self.prune();
                }
                Access::Hit
            }
            Some(St::HirResident) => {
                if self.in_stack.contains_key(&page) {
                    // Reuse distance proven: promote to LIR.
                    self.state.insert(page, St::Lir);
                    self.lir_count += 1;
                    self.queue_remove(page);
                    self.push_stack(page);
                    while self.lir_count > self.lir_cap {
                        self.demote_bottom_lir();
                    }
                } else {
                    // Long reuse distance: stay HIR, refresh both positions.
                    self.push_stack(page);
                    self.queue_remove(page);
                    self.queue.push_back(page);
                }
                Access::Hit
            }
            Some(St::HirGhost) => {
                // Miss, but the ghost proves a short reuse distance.
                while self.resident >= self.capacity {
                    self.evict_one();
                }
                self.state.insert(page, St::Lir);
                self.lir_count += 1;
                self.resident += 1;
                self.push_stack(page);
                while self.lir_count > self.lir_cap {
                    self.demote_bottom_lir();
                }
                Access::Miss
            }
            None => {
                while self.resident >= self.capacity {
                    self.evict_one();
                }
                self.resident += 1;
                if self.lir_count < self.lir_cap {
                    // Cold start: fill the LIR set first.
                    self.state.insert(page, St::Lir);
                    self.lir_count += 1;
                    self.push_stack(page);
                } else {
                    self.state.insert(page, St::HirResident);
                    self.push_stack(page);
                    self.queue.push_back(page);
                }
                Access::Miss
            }
        }
    }

    fn contains(&self, page: PageId) -> bool {
        if self.capacity == 1 {
            return self.state.get(&page) == Some(&St::Lir);
        }
        matches!(self.state.get(&page), Some(St::Lir) | Some(St::HirResident))
    }

    fn len(&self) -> usize {
        if self.capacity == 1 {
            return usize::from(self.state.values().any(|s| *s == St::Lir));
        }
        self.resident
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        if capacity == self.capacity {
            return;
        }
        if capacity <= 1 || self.capacity <= 1 {
            // Crossing the degenerate boundary: rebuild from scratch (the
            // degenerate representation does not carry over).
            *self = LirsCache::new(capacity);
            return;
        }
        self.capacity = capacity;
        self.hir_cap = (capacity / 8).max(1);
        self.lir_cap = capacity - self.hir_cap;
        while self.resident > capacity {
            self.evict_one();
        }
        while self.lir_count > self.lir_cap {
            self.demote_bottom_lir();
        }
    }

    fn clear(&mut self) {
        let cap = self.capacity;
        *self = LirsCache::new(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn hit_iff_resident_on_random_mix() {
        let mut c = LirsCache::new(6);
        let seq: Vec<u64> = (0..400).map(|i| (i * 7 + i * i / 3) % 23).collect();
        for &v in &seq {
            let was = c.contains(p(v));
            let hit = c.access(p(v)).is_hit();
            assert_eq!(hit, was, "page {v}");
            assert!(c.contains(p(v)));
            assert!(c.len() <= 6);
        }
    }

    #[test]
    fn beats_lru_on_loop_slightly_larger_than_cache() {
        // Cycle of 10 pages through caches of 8: LRU gets 0 hits; LIRS
        // stabilizes a LIR subset and hits on it.
        let mut lirs = LirsCache::new(8);
        let mut lru = LruCache::new(8);
        let mut lirs_hits = 0;
        let mut lru_hits = 0;
        for i in 0..1000u64 {
            if lirs.access(p(i % 10)).is_hit() {
                lirs_hits += 1;
            }
            if lru.access(p(i % 10)).is_hit() {
                lru_hits += 1;
            }
        }
        assert_eq!(lru_hits, 0);
        assert!(
            lirs_hits > 400,
            "LIRS only hit {lirs_hits} times on the loop"
        );
    }

    #[test]
    fn scan_does_not_displace_the_lir_set() {
        let mut c = LirsCache::new(8);
        // Establish a hot LIR set {0..5} with reuse.
        for _ in 0..4 {
            for v in 0..6 {
                c.access(p(v));
            }
        }
        // Long one-shot scan.
        for v in 1000..1100 {
            c.access(p(v));
        }
        let hot_resident = (0..6).filter(|&v| c.contains(p(v))).count();
        assert!(
            hot_resident >= 5,
            "scan displaced the LIR set: {hot_resident}/6"
        );
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut z = LirsCache::new(0);
        assert_eq!(z.access(p(1)), Access::Miss);
        assert_eq!(z.len(), 0);
        let mut one = LirsCache::new(1);
        assert_eq!(one.access(p(1)), Access::Miss);
        assert_eq!(one.access(p(1)), Access::Hit);
        assert_eq!(one.access(p(2)), Access::Miss);
        assert!(!one.contains(p(1)));
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn resize_shrinks_safely() {
        let mut c = LirsCache::new(12);
        for i in 0..200u64 {
            c.access(p(i % 15));
        }
        c.resize(4);
        assert!(c.len() <= 4);
        for i in 0..50u64 {
            let was = c.contains(p(i % 6));
            assert_eq!(c.access(p(i % 6)).is_hit(), was);
            assert!(c.len() <= 4);
        }
        c.resize(16);
        for i in 0..50u64 {
            c.access(p(i % 6));
        }
        assert!(c.len() <= 16);
    }

    #[test]
    fn clear_resets() {
        let mut c = LirsCache::new(8);
        for i in 0..20u64 {
            c.access(p(i % 5));
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.access(p(1)), Access::Miss);
    }

    #[test]
    fn ghost_promotion_requires_reuse_within_stack() {
        let mut c = LirsCache::new(4); // lir_cap 3, hir_cap 1
                                       // Fill LIR with 0,1,2; 3 becomes resident HIR.
        for v in 0..4 {
            c.access(p(v));
        }
        // 4 evicts 3 (queue front) making 3 a ghost; 3's re-access promotes.
        c.access(p(4));
        assert!(!c.contains(p(3)));
        let miss = !c.access(p(3)).is_hit();
        assert!(miss);
        assert!(c.contains(p(3)));
    }
}
