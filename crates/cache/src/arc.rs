//! ARC — the Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).
//!
//! ARC balances recency and frequency by splitting the cache into two LRU
//! lists, `T1` (seen once recently) and `T2` (seen at least twice), plus two
//! ghost lists of evicted page ids (`B1`, `B2`). Hits in a ghost list adapt
//! the target size `p` of `T1`: a `B1` hit means "recency is being
//! punished, grow T1"; a `B2` hit the reverse.
//!
//! In this workspace ARC is a *substrate baseline*: the paper fixes LRU
//! inside boxes WLOG, and the policy-comparison benches use ARC to show how
//! much (or little) a smarter replacement policy changes the parallel
//! picture — partitioning, not replacement, dominates.

use std::collections::{HashMap, VecDeque};

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    T1,
    T2,
    B1,
    B2,
}

/// An ARC cache.
#[derive(Clone, Debug)]
pub struct ArcCache {
    capacity: usize,
    /// Adaptive target size for T1.
    p: usize,
    /// Recency list (MRU at front).
    t1: VecDeque<PageId>,
    /// Frequency list (MRU at front).
    t2: VecDeque<PageId>,
    /// Ghost of T1 (MRU at front).
    b1: VecDeque<PageId>,
    /// Ghost of T2 (MRU at front).
    b2: VecDeque<PageId>,
    loc: HashMap<PageId, Loc>,
}

impl ArcCache {
    /// Creates an empty ARC cache.
    pub fn new(capacity: usize) -> Self {
        ArcCache {
            capacity,
            p: 0,
            t1: VecDeque::new(),
            t2: VecDeque::new(),
            b1: VecDeque::new(),
            b2: VecDeque::new(),
            loc: HashMap::new(),
        }
    }

    /// Current adaptive target for the recency list (diagnostic).
    pub fn recency_target(&self) -> usize {
        self.p
    }

    fn remove_from(list: &mut VecDeque<PageId>, page: PageId) {
        if let Some(pos) = list.iter().position(|&x| x == page) {
            list.remove(pos);
        }
    }

    /// REPLACE from the original paper: evict from T1 or T2 into the ghost
    /// lists, steering by the adaptive target.
    fn replace(&mut self, incoming_in_b2: bool) {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (incoming_in_b2 && t1_len == self.p)) {
            if let Some(victim) = self.t1.pop_back() {
                self.b1.push_front(victim);
                self.loc.insert(victim, Loc::B1);
            }
        } else if let Some(victim) = self.t2.pop_back() {
            self.b2.push_front(victim);
            self.loc.insert(victim, Loc::B2);
        } else if let Some(victim) = self.t1.pop_back() {
            self.b1.push_front(victim);
            self.loc.insert(victim, Loc::B1);
        }
    }

    fn trim_ghosts(&mut self) {
        // |T1|+|B1| <= c and total directory <= 2c.
        while self.t1.len() + self.b1.len() > self.capacity {
            if let Some(old) = self.b1.pop_back() {
                self.loc.remove(&old);
            } else {
                break;
            }
        }
        while self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() > 2 * self.capacity {
            if let Some(old) = self.b2.pop_back() {
                self.loc.remove(&old);
            } else {
                break;
            }
        }
    }
}

impl Cache for ArcCache {
    fn access(&mut self, page: PageId) -> Access {
        if self.capacity == 0 {
            return Access::Miss;
        }
        match self.loc.get(&page).copied() {
            Some(Loc::T1) => {
                // Promote to frequency list.
                Self::remove_from(&mut self.t1, page);
                self.t2.push_front(page);
                self.loc.insert(page, Loc::T2);
                Access::Hit
            }
            Some(Loc::T2) => {
                Self::remove_from(&mut self.t2, page);
                self.t2.push_front(page);
                Access::Hit
            }
            Some(Loc::B1) => {
                // Recency ghost hit: grow T1 target.
                let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
                self.p = (self.p + delta).min(self.capacity);
                self.replace(false);
                Self::remove_from(&mut self.b1, page);
                self.t2.push_front(page);
                self.loc.insert(page, Loc::T2);
                Access::Miss
            }
            Some(Loc::B2) => {
                // Frequency ghost hit: shrink T1 target.
                let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
                self.p = self.p.saturating_sub(delta);
                self.replace(true);
                Self::remove_from(&mut self.b2, page);
                self.t2.push_front(page);
                self.loc.insert(page, Loc::T2);
                Access::Miss
            }
            None => {
                if self.t1.len() + self.t2.len() >= self.capacity {
                    self.replace(false);
                }
                self.t1.push_front(page);
                self.loc.insert(page, Loc::T1);
                self.trim_ghosts();
                Access::Miss
            }
        }
    }

    fn contains(&self, page: PageId) -> bool {
        matches!(self.loc.get(&page), Some(Loc::T1) | Some(Loc::T2))
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.p = self.p.min(capacity);
        while self.len() > capacity {
            self.replace(false);
        }
        self.trim_ghosts();
    }

    fn clear(&mut self) {
        self.t1.clear();
        self.t2.clear();
        self.b1.clear();
        self.b2.clear();
        self.loc.clear();
        self.p = 0;
    }
}

impl Checkpoint for ArcCache {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.p);
        for list in [&self.t1, &self.t2, &self.b1, &self.b2] {
            w.put_len(list.len());
            for &pg in list {
                w.put_page(pg);
            }
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let p = r.get_usize()?;
        if p > capacity {
            return Err(CodecError::Invalid("ARC target exceeds capacity"));
        }
        let mut lists: [VecDeque<PageId>; 4] = Default::default();
        let mut loc = HashMap::new();
        for (list, tag) in lists.iter_mut().zip([Loc::T1, Loc::T2, Loc::B1, Loc::B2]) {
            let n = r.get_len()?;
            for _ in 0..n {
                let pg = r.get_page()?;
                if loc.insert(pg, tag).is_some() {
                    return Err(CodecError::Invalid("page in two ARC lists"));
                }
                list.push_back(pg);
            }
        }
        let [t1, t2, b1, b2] = lists;
        if t1.len() + t2.len() > capacity {
            return Err(CodecError::Invalid("ARC resident count exceeds capacity"));
        }
        self.capacity = capacity;
        self.p = p;
        self.t1 = t1;
        self.t2 = t2;
        self.b1 = b1;
        self.b2 = b2;
        self.loc = loc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_all_four_lists() {
        let mut c = ArcCache::new(3);
        for v in [1, 2, 3, 1, 4, 5, 2, 6] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = ArcCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 3);
        assert_eq!(restored.p, c.p);
        assert_eq!(restored.t1, c.t1);
        assert_eq!(restored.t2, c.t2);
        assert_eq!(restored.b1, c.b1);
        assert_eq!(restored.b2, c.b2);
        // Identical behaviour from here on, ghost adaptation included.
        for v in [2, 7, 1, 8, 3] {
            assert_eq!(restored.access(p(v)), c.access(p(v)));
        }
        assert_eq!(restored.t1, c.t1);
        assert_eq!(restored.t2, c.t2);
    }

    #[test]
    fn repeated_access_promotes_to_frequency_list() {
        let mut c = ArcCache::new(4);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.access(p(1)), Access::Hit);
        assert_eq!(c.t2.len(), 1);
        assert_eq!(c.t1.len(), 0);
    }

    #[test]
    fn respects_capacity() {
        let mut c = ArcCache::new(3);
        for v in 0..20 {
            c.access(p(v));
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn hit_iff_resident() {
        let mut c = ArcCache::new(4);
        let seq = [1u64, 2, 3, 1, 4, 5, 2, 1, 1, 6, 7, 2];
        for &v in &seq {
            let was = c.contains(p(v));
            let hit = c.access(p(v)).is_hit();
            assert_eq!(was, hit);
            assert!(c.contains(p(v)));
        }
    }

    #[test]
    fn scan_does_not_flush_frequent_pages() {
        // Make 1 and 2 frequent, then scan; ARC keeps the frequent pair
        // resident while plain LRU would evict them.
        let mut arc = ArcCache::new(4);
        let mut lru = crate::lru::LruCache::new(4);
        for _ in 0..5 {
            arc.access(p(1));
            arc.access(p(2));
            lru.access(p(1));
            lru.access(p(2));
        }
        for v in 100..108 {
            arc.access(p(v));
            lru.access(p(v));
        }
        assert!(arc.contains(p(1)) && arc.contains(p(2)), "ARC lost hot set");
        assert!(!lru.contains(p(1)), "LRU control failed");
    }

    #[test]
    fn ghost_hits_adapt_target() {
        let mut c = ArcCache::new(4);
        // Fill T1 and overflow into B1.
        for v in 0..8 {
            c.access(p(v));
        }
        let before = c.recency_target();
        // Touch a ghost from B1 -> target grows.
        assert!(matches!(c.loc.get(&p(0)), Some(Loc::B1) | None));
        if matches!(c.loc.get(&p(0)), Some(Loc::B1)) {
            c.access(p(0));
            assert!(c.recency_target() > before);
        }
    }

    #[test]
    fn resize_and_clear_are_safe() {
        let mut c = ArcCache::new(8);
        for v in 0..30 {
            c.access(p(v % 10));
        }
        c.resize(2);
        assert!(c.len() <= 2);
        c.access(p(99));
        assert!(c.contains(p(99)));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.access(p(1)), Access::Miss);
    }

    #[test]
    fn zero_capacity_streams() {
        let mut c = ArcCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.len(), 0);
    }
}
