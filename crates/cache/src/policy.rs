//! The common interface implemented by every online cache simulator.

use crate::types::{PageId, Time};

/// Outcome of a single page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The page was resident; the access costs one time step.
    Hit,
    /// The page was absent and has been fetched (evicting if necessary);
    /// the access costs `s` time steps in the paper's model.
    Miss,
}

impl Access {
    /// `true` for [`Access::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }

    /// Time cost of this access under miss penalty `s` (hit = 1, miss = s).
    #[inline]
    pub fn cost(self, s: u64) -> u64 {
        match self {
            Access::Hit => 1,
            Access::Miss => s,
        }
    }
}

/// An online cache with a fixed (but adjustable) capacity.
///
/// Implementations must uphold:
///
/// * `len() <= capacity()` at all times;
/// * `access(p)` returns [`Access::Hit`] iff `contains(p)` held immediately
///   before the call, and leaves `contains(p)` true afterwards (for
///   `capacity() > 0`);
/// * `clear()` empties the cache (the paper's *compartmentalized* box start).
pub trait Cache {
    /// Access `page`, fetching and possibly evicting on a miss.
    ///
    /// Accessing through a zero-capacity cache reports a miss and caches
    /// nothing (the page is streamed through).
    fn access(&mut self, page: PageId) -> Access;

    /// Access `page` only if its full cost (1 for a hit, `miss_penalty` for
    /// a miss) fits within `remaining` time steps; returns `None` — leaving
    /// the cache untouched — otherwise.
    ///
    /// Semantically equivalent to peeking with [`Cache::contains`] and then
    /// calling [`Cache::access`] when the cost fits, which is exactly the
    /// default implementation. Implementations with a hashed index should
    /// override this to fuse the peek and the access into a single probe —
    /// this is the innermost call of the box-window loop
    /// ([`crate::run_window`]), so the duplicate lookup it removes is paid
    /// once per simulated request.
    fn access_if_fits(
        &mut self,
        page: PageId,
        remaining: Time,
        miss_penalty: u64,
    ) -> Option<Access> {
        let cost = if self.contains(page) { 1 } else { miss_penalty };
        if cost > remaining {
            return None;
        }
        Some(self.access(page))
    }

    /// Whether `page` is currently resident.
    fn contains(&self, page: PageId) -> bool;

    /// Number of resident pages.
    fn len(&self) -> usize;

    /// `true` when no pages are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current capacity in pages.
    fn capacity(&self) -> usize;

    /// Change the capacity. Growing keeps all contents; shrinking must evict
    /// down to the new capacity according to the policy's own ranking (LRU
    /// evicts least-recent first, etc.).
    fn resize(&mut self, capacity: usize);

    /// Evict everything (compartmentalized box boundary).
    fn clear(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_cost_matches_model() {
        assert_eq!(Access::Hit.cost(100), 1);
        assert_eq!(Access::Miss.cost(100), 100);
        assert!(Access::Hit.is_hit());
        assert!(!Access::Miss.is_hit());
    }
}
