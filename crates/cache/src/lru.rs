//! O(1) least-recently-used cache: a packed intrusive doubly-linked list
//! over one contiguous node array, indexed by an open-addressing hash table.
//!
//! LRU is the replacement policy the paper fixes (WLOG, its §2) inside every
//! memory box, so this structure is the innermost loop of the whole
//! workspace. The layout is chosen for that loop:
//!
//! * **Packed nodes.** Every resident page is one 16-byte `Node` in a
//!   contiguous `Vec` (`page: u64, prev: u32, next: u32`); recency order is
//!   an intrusive list threaded through `u32` slot indices, so a hit's
//!   splice touches at most three adjacent-in-memory nodes and never
//!   allocates.
//! * **Open-addressing index.** page → slot lookups go through a
//!   power-of-two linear-probing table of `slot + 1` words (0 = empty) with
//!   Fibonacci hashing and backward-shift deletion — no `HashMap`, no
//!   SipHash, no per-entry boxes, no tombstone buildup.
//! * **Honest sizing.** The index is pre-sized to hold `capacity` residents
//!   below the ¾ load ceiling for any capacity up to [`PRESIZE_LIMIT`];
//!   beyond that it starts at the limit and doubles as residents actually
//!   arrive, so a `k > 1M` cache is never silently under-provisioned (the
//!   old implementation clamped its pre-size at `1 << 20` and left larger
//!   caches to rehash mid-run).
//!
//! Accesses never allocate once the arena has warmed up: evicted slots are
//! recycled through a free list, and the index only grows when the resident
//! count approaches its load ceiling.

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::{PageId, Time};

const NIL: u32 = u32::MAX;

/// Largest capacity the index is eagerly pre-sized for; larger caches start
/// here and grow on demand (a 2^22-word table is 16 MiB — pre-allocating
/// proportionally for a pathological `capacity` in the billions would be
/// worse than the amortized doubling it avoids).
pub const PRESIZE_LIMIT: usize = 1 << 22;

/// Fibonacci hashing constant (2^64 / φ): one multiply spreads consecutive
/// page ids across the high bits, which linear probing then consumes.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Clone, Debug)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// A resizable LRU cache.
///
/// * `access` — O(1) expected (one probe sequence + list splice).
/// * `resize` — shrinking evicts the LRU tail; growing keeps contents.
/// * `clear` — O(index), used at compartmentalized box boundaries.
///
/// ```
/// use parapage_cache::{Cache, LruCache, PageId, Access};
/// let mut c = LruCache::new(2);
/// assert_eq!(c.access(PageId(1)), Access::Miss);
/// assert_eq!(c.access(PageId(2)), Access::Miss);
/// assert_eq!(c.access(PageId(1)), Access::Hit);
/// assert_eq!(c.access(PageId(3)), Access::Miss); // evicts 2 (LRU)
/// assert!(!c.contains(PageId(2)));
/// ```
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    /// Packed node arena; recency list threaded through prev/next.
    nodes: Vec<Node>,
    /// Recycled arena slots.
    free: Vec<u32>,
    /// Resident count (the index stores exactly this many entries).
    len: usize,
    /// most-recently-used slot
    head: u32,
    /// least-recently-used slot
    tail: u32,
    /// Open-addressing page → slot index: `slot + 1`, 0 = empty. Length is
    /// always a power of two.
    index: Vec<u32>,
    /// Bits to right-shift a Fibonacci-hashed page id by to get an index
    /// position (`64 - log2(index.len())`).
    shift: u32,
}

/// Index length (a power of two) that keeps `residents` under a ¾ load
/// factor, floored at 8 so the zero-capacity streaming cache costs 32 bytes.
fn index_len_for(residents: usize) -> usize {
    (residents + residents / 2 + 1).next_power_of_two().max(8)
}

impl LruCache {
    /// Creates an empty cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        let index_len = index_len_for(capacity.min(PRESIZE_LIMIT));
        LruCache {
            capacity,
            nodes: Vec::with_capacity(capacity.min(PRESIZE_LIMIT)),
            free: Vec::new(),
            len: 0,
            head: NIL,
            tail: NIL,
            index: vec![0; index_len],
            shift: 64 - index_len.trailing_zeros(),
        }
    }

    #[inline(always)]
    fn home(&self, page: PageId) -> usize {
        (page.0.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// Probes for `page`: `Ok(pos)` when resident at index position `pos`,
    /// `Err(())` when absent.
    #[inline(always)]
    fn find(&self, page: PageId) -> Result<usize, ()> {
        let mask = self.index.len() - 1;
        let mut pos = self.home(page);
        loop {
            let entry = self.index[pos];
            if entry == 0 {
                return Err(());
            }
            if self.nodes[(entry - 1) as usize].page == page {
                return Ok(pos);
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Inserts `slot + 1` for a page *known absent* at its probe end.
    #[inline]
    fn index_insert(&mut self, page: PageId, slot: u32) {
        let mask = self.index.len() - 1;
        let mut pos = self.home(page);
        while self.index[pos] != 0 {
            pos = (pos + 1) & mask;
        }
        self.index[pos] = slot + 1;
    }

    /// Removes the entry at `pos` with backward-shift deletion: later
    /// same-run entries slide back so probe sequences stay unbroken without
    /// tombstones.
    fn index_remove_at(&mut self, mut pos: usize) {
        let mask = self.index.len() - 1;
        loop {
            let mut probe = pos;
            loop {
                probe = (probe + 1) & mask;
                let entry = self.index[probe];
                if entry == 0 {
                    self.index[pos] = 0;
                    return;
                }
                let home = self.home(self.nodes[(entry - 1) as usize].page);
                // The entry at `probe` may fill `pos` iff its home position
                // does not lie in the cyclic range (pos, probe].
                let in_range = if pos <= probe {
                    pos < home && home <= probe
                } else {
                    home > pos || home <= probe
                };
                if !in_range {
                    break;
                }
            }
            self.index[pos] = self.index[probe];
            pos = probe;
        }
    }

    /// Doubles the index when the next insert would cross the ¾ load
    /// ceiling (only ever reached past [`PRESIZE_LIMIT`] residents, or when
    /// `resize` grew the capacity after construction).
    #[inline]
    fn maybe_grow_index(&mut self) {
        if (self.len + 1) * 4 >= self.index.len() * 3 {
            self.grow_index();
        }
    }

    #[cold]
    fn grow_index(&mut self) {
        let new_len = self.index.len() * 2;
        self.index = vec![0; new_len];
        self.shift = 64 - new_len.trailing_zeros();
        let mut cur = self.head;
        while cur != NIL {
            let page = self.nodes[cur as usize].page;
            self.index_insert(page, cur);
            cur = self.nodes[cur as usize].next;
        }
    }

    /// Pages currently resident, most-recently-used first.
    pub fn pages_mru_first(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            out.push(n.page);
            cur = n.next;
        }
        out
    }

    /// Evicts and returns the least-recently-used page, if any.
    pub fn pop_lru(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let page = self.nodes[slot as usize].page;
        self.unlink(slot);
        let pos = self.find(page).expect("resident page must be indexed");
        self.index_remove_at(pos);
        self.free.push(slot);
        self.len -= 1;
        Some(page)
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.nodes[slot as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = NIL;
            n.next = self.head;
        }
        if self.head != NIL {
            self.nodes[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Moves a resident slot to the MRU position.
    #[inline]
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Admits an absent page (capacity > 0, eviction already done): arena
    /// slot, index entry, MRU position.
    fn admit(&mut self, page: PageId) {
        self.maybe_grow_index();
        let slot = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = Node {
                page,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            slot
        };
        self.index_insert(page, slot);
        self.push_front(slot);
        self.len += 1;
    }

    /// The miss path of `access`, shared with `access_if_fits`.
    fn admit_with_eviction(&mut self, page: PageId) -> Access {
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.len >= self.capacity {
            self.pop_lru();
        }
        self.admit(page);
        Access::Miss
    }
}

impl Cache for LruCache {
    fn access(&mut self, page: PageId) -> Access {
        if let Ok(pos) = self.find(page) {
            let slot = self.index[pos] - 1;
            self.touch(slot);
            return Access::Hit;
        }
        self.admit_with_eviction(page)
    }

    /// Single-probe fused peek-and-access: one index probe decides both
    /// whether the request fits the remaining budget and, if so, serves it.
    fn access_if_fits(
        &mut self,
        page: PageId,
        remaining: Time,
        miss_penalty: u64,
    ) -> Option<Access> {
        if let Ok(pos) = self.find(page) {
            if remaining == 0 {
                return None;
            }
            let slot = self.index[pos] - 1;
            self.touch(slot);
            return Some(Access::Hit);
        }
        if miss_penalty > remaining {
            return None;
        }
        Some(self.admit_with_eviction(page))
    }

    fn contains(&self, page: PageId) -> bool {
        self.find(page).is_ok()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.len > capacity {
            self.pop_lru();
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.len = 0;
        self.head = NIL;
        self.tail = NIL;
        self.index.fill(0);
    }
}

impl Checkpoint for LruCache {
    fn save(&self, w: &mut SnapWriter) {
        // The arena/index layout is an implementation detail; the logical
        // state is exactly (capacity, recency order). This encoding is
        // byte-identical to the pre-packed (HashMap-indexed) LRU's, which
        // is what keeps old checkpoints loadable and resume equivalence
        // intact across the rewrite.
        w.put_usize(self.capacity);
        let pages = self.pages_mru_first();
        w.put_len(pages.len());
        for p in pages {
            w.put_page(p);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("LRU resident count exceeds capacity"));
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            pages.push(r.get_page()?);
        }
        self.clear();
        self.capacity = capacity;
        // Re-access LRU → MRU rebuilds the exact recency order.
        for &p in pages.iter().rev() {
            if self.access(p) == Access::Hit {
                return Err(CodecError::Invalid("duplicate page in LRU checkpoint"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_recency_order() {
        let mut c = LruCache::new(4);
        for v in [1, 2, 3, 2, 1, 4] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = LruCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 4);
        assert_eq!(restored.pages_mru_first(), c.pages_mru_first());
        // Same next eviction on both.
        assert_eq!(restored.access(p(9)), Access::Miss);
        assert_eq!(c.access(p(9)), Access::Miss);
        assert_eq!(restored.pages_mru_first(), c.pages_mru_first());
    }

    #[test]
    fn zero_capacity_streams_through() {
        let mut c = LruCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        for v in 1..=3 {
            assert_eq!(c.access(p(v)), Access::Miss);
        }
        // Touch 1 so that 2 becomes LRU.
        assert_eq!(c.access(p(1)), Access::Hit);
        assert_eq!(c.access(p(4)), Access::Miss);
        assert!(!c.contains(p(2)));
        assert!(c.contains(p(1)));
        assert!(c.contains(p(3)));
        assert!(c.contains(p(4)));
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut c = LruCache::new(4);
        for v in [1, 2, 3, 2, 1, 4] {
            c.access(p(v));
        }
        assert_eq!(c.pages_mru_first(), vec![p(4), p(1), p(2), p(3)]);
    }

    #[test]
    fn shrink_evicts_lru_tail_grow_keeps_contents() {
        let mut c = LruCache::new(4);
        for v in 1..=4 {
            c.access(p(v));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(p(3)) && c.contains(p(4)));
        c.resize(10);
        assert!(c.contains(p(3)) && c.contains(p(4)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = LruCache::new(4);
        c.access(p(1));
        c.access(p(2));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.access(p(1)), Access::Miss);
    }

    #[test]
    fn cyclic_access_beyond_capacity_always_misses() {
        // The classic LRU pathology the paper's repeater sequences exploit:
        // cycling over capacity+1 pages misses every time.
        let mut c = LruCache::new(4);
        let mut misses = 0;
        for round in 0..10 {
            for v in 0..5 {
                if c.access(p(v)) == Access::Miss {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 50);
    }

    #[test]
    fn cyclic_access_within_capacity_hits_after_warmup() {
        let mut c = LruCache::new(5);
        let mut misses = 0;
        for _ in 0..10 {
            for v in 0..5 {
                if c.access(p(v)) == Access::Miss {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 5);
    }

    #[test]
    fn pop_lru_returns_in_lru_order() {
        let mut c = LruCache::new(3);
        for v in [1, 2, 3] {
            c.access(p(v));
        }
        c.access(p(1));
        assert_eq!(c.pop_lru(), Some(p(2)));
        assert_eq!(c.pop_lru(), Some(p(3)));
        assert_eq!(c.pop_lru(), Some(p(1)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn access_if_fits_matches_peek_then_access() {
        let mut a = LruCache::new(3);
        let mut b = LruCache::new(3);
        let stream = [1u64, 2, 3, 1, 4, 2, 2, 5, 1, 3, 4, 4, 1];
        let mut remaining = 40u64;
        for v in stream {
            let expect = {
                let cost = if b.contains(p(v)) { 1 } else { 10 };
                if cost > remaining {
                    None
                } else {
                    Some(b.access(p(v)))
                }
            };
            let got = a.access_if_fits(p(v), remaining, 10);
            assert_eq!(got, expect, "page {v} at budget {remaining}");
            if let Some(acc) = got {
                remaining -= acc.cost(10);
            }
        }
        assert_eq!(a.pages_mru_first(), b.pages_mru_first());
    }

    #[test]
    fn access_if_fits_zero_budget_serves_nothing() {
        let mut c = LruCache::new(2);
        c.access(p(1));
        assert_eq!(c.access_if_fits(p(1), 0, 10), None, "hit needs 1 step");
        assert_eq!(c.access_if_fits(p(2), 5, 10), None, "miss needs 10");
        assert!(!c.contains(p(2)), "rejected request must not be admitted");
        assert_eq!(c.access_if_fits(p(2), 10, 10), Some(Access::Miss));
    }

    /// The index must keep absorbing residents past the old `1 << 20`
    /// pre-size clamp: at a boundary capacity every inserted page stays
    /// resident and findable, and eviction starts exactly at capacity.
    #[test]
    fn boundary_capacity_holds_every_resident() {
        let cap = (1 << 20) + 1;
        let mut c = LruCache::new(cap);
        for v in 0..cap as u64 {
            assert_eq!(c.access(p(v)), Access::Miss);
        }
        assert_eq!(c.len(), cap);
        assert!(c.contains(p(0)), "oldest page still resident at capacity");
        // One more distinct page evicts exactly the LRU (page 0).
        assert_eq!(c.access(p(cap as u64)), Access::Miss);
        assert_eq!(c.len(), cap);
        assert!(!c.contains(p(0)));
        assert!(c.contains(p(1)));
        // Spot-check hits across the whole range (each touch is a splice).
        for v in [1u64, 1 << 10, 1 << 19, cap as u64 - 1, cap as u64] {
            assert_eq!(c.access(p(v)), Access::Hit, "page {v}");
        }
    }

    /// Deletions under heavy slot reuse keep probe chains intact
    /// (backward-shift deletion regression guard).
    #[test]
    fn churn_with_collisions_keeps_index_consistent() {
        let mut c = LruCache::new(16);
        // Page ids chosen dense and then strided: Fibonacci hashing maps
        // both patterns; churn forces constant insert/remove interleaving.
        for round in 0u64..50 {
            for v in 0..24u64 {
                c.access(p(v * 64 + round % 3));
            }
            assert!(c.len() <= 16);
        }
        let resident = c.pages_mru_first();
        assert_eq!(resident.len(), 16);
        for page in resident {
            assert!(c.contains(page));
        }
    }
}
