//! O(1) least-recently-used cache backed by an arena-allocated intrusive
//! doubly-linked list.
//!
//! LRU is the replacement policy the paper fixes (WLOG, its §2) inside every
//! memory box, so this structure is the innermost loop of the whole
//! workspace. Accesses never allocate once the arena has warmed up: evicted
//! slots are recycled through a free list.

use std::collections::HashMap;

use crate::checkpoint::{Checkpoint, CodecError, SnapReader, SnapWriter};
use crate::policy::{Access, Cache};
use crate::types::PageId;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// A resizable LRU cache.
///
/// * `access` — O(1) expected (one hash lookup + list splice).
/// * `resize` — shrinking evicts the LRU tail; growing keeps contents.
/// * `clear` — O(len), used at compartmentalized box boundaries.
///
/// ```
/// use parapage_cache::{Cache, LruCache, PageId, Access};
/// let mut c = LruCache::new(2);
/// assert_eq!(c.access(PageId(1)), Access::Miss);
/// assert_eq!(c.access(PageId(2)), Access::Miss);
/// assert_eq!(c.access(PageId(1)), Access::Hit);
/// assert_eq!(c.access(PageId(3)), Access::Miss); // evicts 2 (LRU)
/// assert!(!c.contains(PageId(2)));
/// ```
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    /// page -> arena slot
    map: HashMap<PageId, u32>,
    arena: Vec<Node>,
    free: Vec<u32>,
    /// most-recently-used slot
    head: u32,
    /// least-recently-used slot
    tail: u32,
}

impl LruCache {
    /// Creates an empty cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            arena: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Pages currently resident, most-recently-used first.
    pub fn pages_mru_first(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.arena[cur as usize];
            out.push(n.page);
            cur = n.next;
        }
        out
    }

    /// Evicts and returns the least-recently-used page, if any.
    pub fn pop_lru(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let page = self.arena[slot as usize].page;
        self.unlink(slot);
        self.map.remove(&page);
        self.free.push(slot);
        Some(page)
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.arena[slot as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.arena[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        {
            let n = &mut self.arena[slot as usize];
            n.prev = NIL;
            n.next = self.head;
        }
        if self.head != NIL {
            self.arena[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn alloc(&mut self, page: PageId) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = Node {
                page,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            let slot = self.arena.len() as u32;
            self.arena.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            slot
        }
    }
}

impl Cache for LruCache {
    fn access(&mut self, page: PageId) -> Access {
        if let Some(&slot) = self.map.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return Access::Hit;
        }
        if self.capacity == 0 {
            return Access::Miss;
        }
        if self.map.len() >= self.capacity {
            self.pop_lru();
        }
        let slot = self.alloc(page);
        self.push_front(slot);
        self.map.insert(page, slot);
        Access::Miss
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > capacity {
            self.pop_lru();
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.arena.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl Checkpoint for LruCache {
    fn save(&self, w: &mut SnapWriter) {
        // The arena layout is an implementation detail; the logical state
        // is exactly (capacity, recency order).
        w.put_usize(self.capacity);
        let pages = self.pages_mru_first();
        w.put_len(pages.len());
        for p in pages {
            w.put_page(p);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        let capacity = r.get_usize()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(CodecError::Invalid("LRU resident count exceeds capacity"));
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            pages.push(r.get_page()?);
        }
        self.clear();
        self.capacity = capacity;
        // Re-access LRU → MRU rebuilds the exact recency order.
        for &p in pages.iter().rev() {
            if self.access(p) == Access::Hit {
                return Err(CodecError::Invalid("duplicate page in LRU checkpoint"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> PageId {
        PageId(v)
    }

    #[test]
    fn checkpoint_round_trips_recency_order() {
        let mut c = LruCache::new(4);
        for v in [1, 2, 3, 2, 1, 4] {
            c.access(p(v));
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = LruCache::new(0);
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored.capacity(), 4);
        assert_eq!(restored.pages_mru_first(), c.pages_mru_first());
        // Same next eviction on both.
        assert_eq!(restored.access(p(9)), Access::Miss);
        assert_eq!(c.access(p(9)), Access::Miss);
        assert_eq!(restored.pages_mru_first(), c.pages_mru_first());
    }

    #[test]
    fn zero_capacity_streams_through() {
        let mut c = LruCache::new(0);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.access(p(1)), Access::Miss);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        for v in 1..=3 {
            assert_eq!(c.access(p(v)), Access::Miss);
        }
        // Touch 1 so that 2 becomes LRU.
        assert_eq!(c.access(p(1)), Access::Hit);
        assert_eq!(c.access(p(4)), Access::Miss);
        assert!(!c.contains(p(2)));
        assert!(c.contains(p(1)));
        assert!(c.contains(p(3)));
        assert!(c.contains(p(4)));
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut c = LruCache::new(4);
        for v in [1, 2, 3, 2, 1, 4] {
            c.access(p(v));
        }
        assert_eq!(c.pages_mru_first(), vec![p(4), p(1), p(2), p(3)]);
    }

    #[test]
    fn shrink_evicts_lru_tail_grow_keeps_contents() {
        let mut c = LruCache::new(4);
        for v in 1..=4 {
            c.access(p(v));
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(p(3)) && c.contains(p(4)));
        c.resize(10);
        assert!(c.contains(p(3)) && c.contains(p(4)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = LruCache::new(4);
        c.access(p(1));
        c.access(p(2));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.access(p(1)), Access::Miss);
    }

    #[test]
    fn cyclic_access_beyond_capacity_always_misses() {
        // The classic LRU pathology the paper's repeater sequences exploit:
        // cycling over capacity+1 pages misses every time.
        let mut c = LruCache::new(4);
        let mut misses = 0;
        for round in 0..10 {
            for v in 0..5 {
                if c.access(p(v)) == Access::Miss {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 50);
    }

    #[test]
    fn cyclic_access_within_capacity_hits_after_warmup() {
        let mut c = LruCache::new(5);
        let mut misses = 0;
        for _ in 0..10 {
            for v in 0..5 {
                if c.access(p(v)) == Access::Miss {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 5);
    }

    #[test]
    fn pop_lru_returns_in_lru_order() {
        let mut c = LruCache::new(3);
        for v in [1, 2, 3] {
            c.access(p(v));
        }
        c.access(p(1));
        assert_eq!(c.pop_lru(), Some(p(2)));
        assert_eq!(c.pop_lru(), Some(p(3)));
        assert_eq!(c.pop_lru(), Some(p(1)));
        assert_eq!(c.pop_lru(), None);
    }
}
