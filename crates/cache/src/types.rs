//! Fundamental identifier and time types shared across the workspace.
//!
//! These live in the lowest crate of the workspace so that every layer
//! (workload generators, paging algorithms, schedulers, analysis) can agree
//! on them without a dependency cycle.

use std::fmt;

/// Identifier of a memory page (the paper's unit of transfer).
///
/// Pages are opaque: the simulators only ever compare them for equality.
/// Each processor's request sequence accesses a *disjoint* set of pages
/// (paper §2), which the workload generators guarantee by namespacing the
/// upper bits per processor; see `parapage-workloads`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Builds a page id in the private namespace of processor `proc_`.
    ///
    /// The top 16 bits hold the processor index, the low 48 bits the local
    /// page number, so sequences built this way are disjoint by construction.
    #[inline]
    pub fn namespaced(proc_: ProcId, local: u64) -> Self {
        debug_assert!(local < (1 << 48), "local page number overflows 48 bits");
        debug_assert!(proc_.0 < (1 << 16), "processor index overflows 16 bits");
        PageId(((proc_.0 as u64) << 48) | local)
    }

    /// The processor namespace this page was created in (if `namespaced` was
    /// used); pages created directly from raw ids report namespace 0.
    #[inline]
    pub fn namespace(self) -> ProcId {
        ProcId((self.0 >> 48) as u32)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

/// Index of a processor, `0..p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The processor index as a `usize`, for indexing per-processor tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for ProcId {
    fn from(v: u32) -> Self {
        ProcId(v)
    }
}

/// Discrete simulation time, in unit steps (one hit = one step).
///
/// The paper's makespans scale like `s·k²·log p`, which for the parameter
/// ranges exercised here stays far below `u64::MAX`; arithmetic is checked in
/// debug builds regardless.
pub type Time = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaced_pages_are_disjoint_across_processors() {
        let a = PageId::namespaced(ProcId(1), 7);
        let b = PageId::namespaced(ProcId(2), 7);
        assert_ne!(a, b);
        assert_eq!(a.namespace(), ProcId(1));
        assert_eq!(b.namespace(), ProcId(2));
    }

    #[test]
    fn namespaced_pages_with_same_proc_and_local_are_equal() {
        assert_eq!(
            PageId::namespaced(ProcId(3), 42),
            PageId::namespaced(ProcId(3), 42)
        );
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", PageId(5)), "p5");
        assert_eq!(format!("{:?}", ProcId(5)), "P5");
    }
}
