//! Checkpoint/restore substrate: a compact hand-rolled byte codec and the
//! [`Checkpoint`] trait every cache (and, one crate up, every policy)
//! implements so an engine run can be frozen and resumed byte-for-byte.
//!
//! The workspace builds offline with no serde; the codec here is the whole
//! wire format. A framed blob is
//!
//! ```text
//! MAGIC(4) | version u16 | payload … | fnv1a64(payload) u64
//! ```
//!
//! with every multi-byte integer little-endian. Decoding validates the
//! magic, the version, and the FNV-1a integrity digest before handing a
//! single payload byte to the caller, so a corrupted or truncated snapshot
//! is rejected with a typed [`CodecError`] — never a panic.
//!
//! Determinism contract: `save` must write a canonical byte sequence (sort
//! hash-map contents by key before writing) so that two states that compare
//! equal encode identically. The engine's resume-equivalence checker relies
//! on this.

use std::collections::HashSet;

use crate::types::PageId;

/// Leading magic of a framed snapshot blob (`b"ppsn"`).
pub const SNAP_MAGIC: [u8; 4] = *b"ppsn";

/// Current wire-format version of framed snapshot blobs.
pub const SNAP_VERSION: u16 = 1;

/// Why a blob could not be decoded. Every variant is a *typed* rejection:
/// corrupted input surfaces as an `Err`, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-field.
    UnexpectedEof,
    /// The blob does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The blob's version tag is not [`SNAP_VERSION`].
    BadVersion(u16),
    /// The FNV-1a digest over the payload does not match the trailer:
    /// the blob was corrupted in storage or transit.
    DigestMismatch {
        /// Digest recomputed over the received payload.
        computed: u64,
        /// Digest stored in the blob's trailer.
        stored: u64,
    },
    /// A decoded value is structurally impossible (e.g. a length that
    /// exceeds the remaining bytes, or an inconsistent list).
    Invalid(&'static str),
    /// The component (policy) does not support checkpointing.
    Unsupported(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "snapshot truncated: unexpected end of input"),
            CodecError::BadMagic => write!(f, "not a snapshot blob (bad magic)"),
            CodecError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAP_VERSION})")
            }
            CodecError::DigestMismatch { computed, stored } => write!(
                f,
                "snapshot integrity digest mismatch (computed {computed:#018x}, stored {stored:#018x})"
            ),
            CodecError::Invalid(what) => write!(f, "snapshot field invalid: {what}"),
            CodecError::Unsupported(who) => {
                write!(f, "policy `{who}` does not support checkpointing")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash over `bytes` — the snapshot integrity digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append-only payload writer with typed little-endian primitives.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The payload written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding the raw payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Consumes the writer, yielding a framed blob: magic, version tag,
    /// payload, FNV-1a trailer. The shape [`decode_framed`] accepts.
    pub fn into_framed(self) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(payload.len() + 14);
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a collection length (alias of [`SnapWriter::put_usize`],
    /// named for intent at call sites).
    pub fn put_len(&mut self, v: usize) {
        self.put_usize(v);
    }

    /// Writes a [`PageId`].
    pub fn put_page(&mut self, v: PageId) {
        self.put_u64(v.0);
    }

    /// Writes raw bytes, length-prefixed.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based payload reader matching [`SnapWriter`] field for field.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reads a raw (unframed) payload.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte not 0/1")),
        }
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` previously written as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("usize does not fit this platform"))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a collection length; bounded by the remaining bytes so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        // Every element of every encoded collection occupies ≥ 1 byte, so
        // a length beyond the remaining payload is always corruption.
        if n > self.remaining() {
            return Err(CodecError::Invalid("collection length exceeds payload"));
        }
        Ok(n)
    }

    /// Reads a [`PageId`].
    pub fn get_page(&mut self) -> Result<PageId, CodecError> {
        Ok(PageId(self.get_u64()?))
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len()?;
        self.take(n)
    }
}

/// Validates a framed blob (magic, version, FNV-1a digest) and returns the
/// payload on success.
pub fn decode_framed(blob: &[u8]) -> Result<&[u8], CodecError> {
    if blob.len() < 14 {
        return Err(CodecError::UnexpectedEof);
    }
    if blob[..4] != SNAP_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes(blob[4..6].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let payload = &blob[6..blob.len() - 8];
    let stored = u64::from_le_bytes(blob[blob.len() - 8..].try_into().unwrap());
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(CodecError::DigestMismatch { computed, stored });
    }
    Ok(payload)
}

/// A component whose live state can be frozen into a [`SnapWriter`] and
/// rebuilt from a [`SnapReader`].
///
/// `load` replaces the receiver's state in place; the receiver's
/// construction-time configuration (capacities baked into the constructor)
/// is expected to match what was saved — implementations write enough of it
/// to validate. After `load`, the component must behave byte-identically to
/// the saved one under the same subsequent inputs.
pub trait Checkpoint {
    /// Serializes the full dynamic state into `w`, canonically (equal
    /// states write equal bytes).
    fn save(&self, w: &mut SnapWriter);

    /// Replaces `self`'s state with the one `r` holds.
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError>;
}

/// Rebuilds a `HashSet<PageId>` from a list of pages, rejecting duplicates
/// (a duplicated member means the blob is corrupt or non-canonical).
pub(crate) fn set_from_pages(pages: &[PageId]) -> Result<HashSet<PageId>, CodecError> {
    let mut set = HashSet::with_capacity(pages.len());
    for &p in pages {
        if !set.insert(p) {
            return Err(CodecError::Invalid("duplicate page in checkpointed list"));
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-12);
        w.put_u128(u128::MAX - 5);
        w.put_usize(9999);
        w.put_f64(0.25);
        w.put_page(PageId(42));
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -12);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 5);
        assert_eq!(r.get_usize().unwrap(), 9999);
        assert_eq!(r.get_f64().unwrap(), 0.25);
        assert_eq!(r.get_page().unwrap(), PageId(42));
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_a_typed_eof() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn framing_round_trips_and_rejects_corruption() {
        let mut w = SnapWriter::new();
        w.put_u64(0xdead_beef);
        w.put_bytes(b"payload");
        let blob = w.into_framed();
        let payload = decode_framed(&blob).unwrap();
        let mut r = SnapReader::new(payload);
        assert_eq!(r.get_u64().unwrap(), 0xdead_beef);

        // Flip one payload byte: the digest must catch it.
        let mut bad = blob.clone();
        bad[8] ^= 0x40;
        assert!(matches!(
            decode_framed(&bad),
            Err(CodecError::DigestMismatch { .. })
        ));

        // Wrong magic and wrong version are distinct typed errors.
        let mut nomagic = blob.clone();
        nomagic[0] = b'x';
        assert_eq!(decode_framed(&nomagic), Err(CodecError::BadMagic));
        let mut newver = blob.clone();
        newver[4] = 0xff;
        assert!(matches!(
            decode_framed(&newver),
            Err(CodecError::BadVersion(_))
        ));

        // Truncating the trailer is EOF, not a panic.
        assert_eq!(decode_framed(&blob[..10]), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn lengths_beyond_payload_are_invalid() {
        let mut w = SnapWriter::new();
        w.put_len(1000);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.get_len(),
            Err(CodecError::Invalid("collection length exceeds payload"))
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
