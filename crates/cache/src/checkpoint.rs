//! Checkpoint/restore substrate: a compact hand-rolled byte codec and the
//! [`Checkpoint`] trait every cache (and, one crate up, every policy)
//! implements so an engine run can be frozen and resumed byte-for-byte.
//!
//! The workspace builds offline with no serde; the codec here is the whole
//! wire format. A framed blob is
//!
//! ```text
//! MAGIC(4) | version u16 | payload … | fnv1a64(payload) u64
//! ```
//!
//! with every multi-byte integer little-endian. Decoding validates the
//! magic, the version, and the FNV-1a integrity digest before handing a
//! single payload byte to the caller, so a corrupted or truncated snapshot
//! is rejected with a typed [`CodecError`] — never a panic.
//!
//! Determinism contract: `save` must write a canonical byte sequence (sort
//! hash-map contents by key before writing) so that two states that compare
//! equal encode identically. The engine's resume-equivalence checker relies
//! on this.

use std::collections::HashSet;

use crate::types::PageId;

/// Leading magic of a framed snapshot blob (`b"ppsn"`).
pub const SNAP_MAGIC: [u8; 4] = *b"ppsn";

/// Current wire-format version of framed snapshot blobs.
pub const SNAP_VERSION: u16 = 1;

/// Why a blob could not be decoded. Every variant is a *typed* rejection:
/// corrupted input surfaces as an `Err`, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-field.
    UnexpectedEof,
    /// The blob does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The blob's version tag is not [`SNAP_VERSION`].
    BadVersion(u16),
    /// The FNV-1a digest over the payload does not match the trailer:
    /// the blob was corrupted in storage or transit.
    DigestMismatch {
        /// Digest recomputed over the received payload.
        computed: u64,
        /// Digest stored in the blob's trailer.
        stored: u64,
    },
    /// A decoded value is structurally impossible (e.g. a length that
    /// exceeds the remaining bytes, or an inconsistent list).
    Invalid(&'static str),
    /// The component (policy) does not support checkpointing.
    Unsupported(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "snapshot truncated: unexpected end of input"),
            CodecError::BadMagic => write!(f, "not a snapshot blob (bad magic)"),
            CodecError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {SNAP_VERSION})")
            }
            CodecError::DigestMismatch { computed, stored } => write!(
                f,
                "snapshot integrity digest mismatch (computed {computed:#018x}, stored {stored:#018x})"
            ),
            CodecError::Invalid(what) => write!(f, "snapshot field invalid: {what}"),
            CodecError::Unsupported(who) => {
                write!(f, "policy `{who}` does not support checkpointing")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash over `bytes` — the snapshot integrity digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a 64-bit hash continued from an arbitrary `seed` state.
///
/// This is what chains WAL record digests: each record's digest seeds the
/// next record's hash, and the first record is seeded by the digest of the
/// base snapshot, so a record can only verify against the exact log prefix
/// (and base) it was written after. Seeding with the standard offset basis
/// reduces to plain [`fnv1a64`].
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Leading magic of one framed WAL delta record (`b"ppwr"`).
pub const WAL_RECORD_MAGIC: [u8; 4] = *b"ppwr";

/// Bytes of a WAL record before the payload: magic, sequence number,
/// payload length.
pub const WAL_RECORD_HEADER: usize = 4 + 8 + 4;

/// Frames one WAL delta record and returns `(bytes, digest)`:
///
/// ```text
/// WAL_RECORD_MAGIC(4) | seq u64 | payload_len u32 | payload … | digest u64
/// ```
///
/// where `digest = fnv1a64_seeded(chain, seq ‖ payload_len ‖ payload)`.
/// `chain` is the previous record's digest (or the base snapshot's
/// [`fnv1a64`] for the first record), so the returned digest is the chain
/// seed for the *next* record. A record therefore only verifies in the
/// exact position it was appended at: against a different base, a reordered
/// log, or a gap, the chain breaks and [`parse_wal_record`] reports a tear.
pub fn frame_wal_record(seq: u64, chain: u64, payload: &[u8]) -> (Vec<u8>, u64) {
    let len = u32::try_from(payload.len()).expect("WAL record payload exceeds u32");
    let mut out = Vec::with_capacity(WAL_RECORD_HEADER + payload.len() + 8);
    out.extend_from_slice(&WAL_RECORD_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    let digest = fnv1a64_seeded(chain, &out[4..]);
    out.extend_from_slice(&digest.to_le_bytes());
    (out, digest)
}

/// Outcome of parsing one WAL record off the front of a log buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecordStep<'a> {
    /// A complete, digest-valid record. `digest` seeds the next record's
    /// chain; `consumed` is the record's total framed length.
    Record {
        /// Sequence number stored in the record header.
        seq: u64,
        /// The record's payload bytes.
        payload: &'a [u8],
        /// The record's chained digest (= the next chain seed).
        digest: u64,
        /// Framed bytes consumed from the buffer.
        consumed: usize,
    },
    /// The buffer is empty: a clean end of log.
    End,
    /// The buffer ends or breaks mid-record — a torn write, a partial
    /// tail, a flipped byte, or a chain break — with the typed reason.
    /// Everything before this point is intact; recovery truncates here.
    Torn(CodecError),
}

/// Parses one WAL record off the front of `buf`, verifying its chained
/// digest against `chain` (the previous record's digest, or the base
/// snapshot digest for the first record).
///
/// Never panics: every malformed shape maps onto a typed [`CodecError`]
/// inside [`WalRecordStep::Torn`] — a short buffer (torn write or partial
/// tail mid-header or mid-payload) is [`CodecError::UnexpectedEof`], wrong
/// leading bytes are [`CodecError::BadMagic`], and any byte flip or
/// chain/ordering break is [`CodecError::DigestMismatch`].
pub fn parse_wal_record(buf: &[u8], chain: u64) -> WalRecordStep<'_> {
    if buf.is_empty() {
        return WalRecordStep::End;
    }
    if buf.len() < WAL_RECORD_HEADER {
        return WalRecordStep::Torn(CodecError::UnexpectedEof);
    }
    if buf[..4] != WAL_RECORD_MAGIC {
        return WalRecordStep::Torn(CodecError::BadMagic);
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let total = WAL_RECORD_HEADER + len + 8;
    if buf.len() < total {
        return WalRecordStep::Torn(CodecError::UnexpectedEof);
    }
    let payload = &buf[WAL_RECORD_HEADER..WAL_RECORD_HEADER + len];
    let stored = u64::from_le_bytes(buf[total - 8..total].try_into().unwrap());
    let computed = fnv1a64_seeded(chain, &buf[4..total - 8]);
    if computed != stored {
        return WalRecordStep::Torn(CodecError::DigestMismatch { computed, stored });
    }
    WalRecordStep::Record {
        seq,
        payload,
        digest: computed,
        consumed: total,
    }
}

/// Append-only payload writer with typed little-endian primitives.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The payload written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding the raw payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Consumes the writer, yielding a framed blob: magic, version tag,
    /// payload, FNV-1a trailer. The shape [`decode_framed`] accepts.
    pub fn into_framed(self) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(payload.len() + 14);
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a collection length (alias of [`SnapWriter::put_usize`],
    /// named for intent at call sites).
    pub fn put_len(&mut self, v: usize) {
        self.put_usize(v);
    }

    /// Writes a [`PageId`].
    pub fn put_page(&mut self, v: PageId) {
        self.put_u64(v.0);
    }

    /// Writes raw bytes, length-prefixed.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based payload reader matching [`SnapWriter`] field for field.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reads a raw (unframed) payload.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte not 0/1")),
        }
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` previously written as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("usize does not fit this platform"))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a collection length; bounded by the remaining bytes so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        // Every element of every encoded collection occupies ≥ 1 byte, so
        // a length beyond the remaining payload is always corruption.
        if n > self.remaining() {
            return Err(CodecError::Invalid("collection length exceeds payload"));
        }
        Ok(n)
    }

    /// Reads a [`PageId`].
    pub fn get_page(&mut self) -> Result<PageId, CodecError> {
        Ok(PageId(self.get_u64()?))
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len()?;
        self.take(n)
    }
}

/// Validates a framed blob (magic, version, FNV-1a digest) and returns the
/// payload on success.
pub fn decode_framed(blob: &[u8]) -> Result<&[u8], CodecError> {
    if blob.len() < 14 {
        return Err(CodecError::UnexpectedEof);
    }
    if blob[..4] != SNAP_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes(blob[4..6].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let payload = &blob[6..blob.len() - 8];
    let stored = u64::from_le_bytes(blob[blob.len() - 8..].try_into().unwrap());
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(CodecError::DigestMismatch { computed, stored });
    }
    Ok(payload)
}

/// A component whose live state can be frozen into a [`SnapWriter`] and
/// rebuilt from a [`SnapReader`].
///
/// `load` replaces the receiver's state in place; the receiver's
/// construction-time configuration (capacities baked into the constructor)
/// is expected to match what was saved — implementations write enough of it
/// to validate. After `load`, the component must behave byte-identically to
/// the saved one under the same subsequent inputs.
pub trait Checkpoint {
    /// Serializes the full dynamic state into `w`, canonically (equal
    /// states write equal bytes).
    fn save(&self, w: &mut SnapWriter);

    /// Replaces `self`'s state with the one `r` holds.
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError>;
}

/// Rebuilds a `HashSet<PageId>` from a list of pages, rejecting duplicates
/// (a duplicated member means the blob is corrupt or non-canonical).
pub(crate) fn set_from_pages(pages: &[PageId]) -> Result<HashSet<PageId>, CodecError> {
    let mut set = HashSet::with_capacity(pages.len());
    for &p in pages {
        if !set.insert(p) {
            return Err(CodecError::Invalid("duplicate page in checkpointed list"));
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-12);
        w.put_u128(u128::MAX - 5);
        w.put_usize(9999);
        w.put_f64(0.25);
        w.put_page(PageId(42));
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -12);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 5);
        assert_eq!(r.get_usize().unwrap(), 9999);
        assert_eq!(r.get_f64().unwrap(), 0.25);
        assert_eq!(r.get_page().unwrap(), PageId(42));
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_a_typed_eof() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn framing_round_trips_and_rejects_corruption() {
        let mut w = SnapWriter::new();
        w.put_u64(0xdead_beef);
        w.put_bytes(b"payload");
        let blob = w.into_framed();
        let payload = decode_framed(&blob).unwrap();
        let mut r = SnapReader::new(payload);
        assert_eq!(r.get_u64().unwrap(), 0xdead_beef);

        // Flip one payload byte: the digest must catch it.
        let mut bad = blob.clone();
        bad[8] ^= 0x40;
        assert!(matches!(
            decode_framed(&bad),
            Err(CodecError::DigestMismatch { .. })
        ));

        // Wrong magic and wrong version are distinct typed errors.
        let mut nomagic = blob.clone();
        nomagic[0] = b'x';
        assert_eq!(decode_framed(&nomagic), Err(CodecError::BadMagic));
        let mut newver = blob.clone();
        newver[4] = 0xff;
        assert!(matches!(
            decode_framed(&newver),
            Err(CodecError::BadVersion(_))
        ));

        // Truncating the trailer is EOF, not a panic.
        assert_eq!(decode_framed(&blob[..10]), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn lengths_beyond_payload_are_invalid() {
        let mut w = SnapWriter::new();
        w.put_len(1000);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.get_len(),
            Err(CodecError::Invalid("collection length exceeds payload"))
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeded_fnv_continues_the_stream() {
        // Hashing "foo" then "bar" from the intermediate state must equal
        // hashing "foobar" in one go.
        let mid = fnv1a64(b"foo");
        assert_eq!(fnv1a64_seeded(mid, b"bar"), fnv1a64(b"foobar"));
        assert_eq!(fnv1a64_seeded(0xcbf2_9ce4_8422_2325, b"a"), fnv1a64(b"a"));
    }

    #[test]
    fn wal_records_chain_and_round_trip() {
        let base = fnv1a64(b"base snapshot bytes");
        let (r0, d0) = frame_wal_record(0, base, b"first");
        let (r1, d1) = frame_wal_record(1, d0, b"second");
        let mut log = r0.clone();
        log.extend_from_slice(&r1);

        let step = parse_wal_record(&log, base);
        let WalRecordStep::Record {
            seq,
            payload,
            digest,
            consumed,
        } = step
        else {
            panic!("expected record, got {step:?}");
        };
        assert_eq!(
            (seq, payload, digest, consumed),
            (0, &b"first"[..], d0, r0.len())
        );
        let step = parse_wal_record(&log[consumed..], digest);
        let WalRecordStep::Record {
            seq,
            payload,
            digest,
            ..
        } = step
        else {
            panic!("expected record, got {step:?}");
        };
        assert_eq!((seq, payload, digest), (1, &b"second"[..], d1));
        assert_eq!(parse_wal_record(&[], d1), WalRecordStep::End);
    }

    #[test]
    fn wal_record_tears_are_typed() {
        let base = fnv1a64(b"base");
        let (rec, _) = frame_wal_record(3, base, b"payload");

        // Partial header (torn write very early).
        assert_eq!(
            parse_wal_record(&rec[..7], base),
            WalRecordStep::Torn(CodecError::UnexpectedEof)
        );
        // Mid-payload truncation (torn write inside the record).
        assert_eq!(
            parse_wal_record(&rec[..rec.len() - 3], base),
            WalRecordStep::Torn(CodecError::UnexpectedEof)
        );
        // Garbage where the magic should be.
        let mut bad = rec.clone();
        bad[0] = b'x';
        assert_eq!(
            parse_wal_record(&bad, base),
            WalRecordStep::Torn(CodecError::BadMagic)
        );
        // A flipped payload byte breaks the digest.
        let mut bad = rec.clone();
        bad[WAL_RECORD_HEADER + 2] ^= 0x10;
        assert!(matches!(
            parse_wal_record(&bad, base),
            WalRecordStep::Torn(CodecError::DigestMismatch { .. })
        ));
        // The right record against the wrong chain seed (stale base /
        // reordered log) is a digest mismatch too.
        assert!(matches!(
            parse_wal_record(&rec, base ^ 1),
            WalRecordStep::Torn(CodecError::DigestMismatch { .. })
        ));
    }
}
