//! Fenwick (binary indexed) tree over `u64` counts.
//!
//! Substrate for the Mattson stack-distance pass: it maintains, for each time
//! index, whether that index is the *most recent* access of some page, and
//! answers "how many distinct pages were touched in `(a, b]`" in O(log n).

/// A Fenwick tree supporting point update and prefix sum over `u64`.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a tree over indices `0..n` with all counts zero.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Number of indices the tree covers.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// `true` if the tree covers no indices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at `idx` (0-based).
    pub fn add(&mut self, idx: usize, delta: i64) {
        let mut i = idx + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counts over `0..=idx` (0-based, inclusive).
    pub fn prefix_sum(&self, idx: usize) -> u64 {
        let mut i = (idx + 1).min(self.tree.len() - 1);
        let mut acc = 0u64;
        while i > 0 {
            acc = acc.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Sum of counts over the closed range `[lo, hi]`; zero if `lo > hi`.
    pub fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            return 0;
        }
        let upper = self.prefix_sum(hi);
        if lo == 0 {
            upper
        } else {
            upper.wrapping_sub(self.prefix_sum(lo - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let n = 100;
        let mut fw = Fenwick::new(n);
        let mut naive = vec![0i64; n];
        // Deterministic pseudo-random updates.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let idx = (x % n as u64) as usize;
            let delta = ((x >> 32) % 7) as i64 - 3;
            fw.add(idx, delta);
            naive[idx] += delta;
        }
        let mut acc = 0i64;
        for (i, &v) in naive.iter().enumerate() {
            acc += v;
            assert_eq!(fw.prefix_sum(i), acc as u64, "prefix mismatch at {i}");
        }
    }

    #[test]
    fn range_sum_handles_edges() {
        let mut fw = Fenwick::new(10);
        for i in 0..10 {
            fw.add(i, 1);
        }
        assert_eq!(fw.range_sum(0, 9), 10);
        assert_eq!(fw.range_sum(3, 3), 1);
        assert_eq!(fw.range_sum(5, 4), 0);
        assert_eq!(fw.range_sum(0, 0), 1);
    }

    #[test]
    fn add_then_remove_cancels() {
        let mut fw = Fenwick::new(8);
        fw.add(4, 1);
        fw.add(4, -1);
        assert_eq!(fw.prefix_sum(7), 0);
    }

    #[test]
    fn empty_tree() {
        let fw = Fenwick::new(0);
        assert!(fw.is_empty());
    }
}
