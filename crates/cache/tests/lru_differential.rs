//! Differential test: packed open-addressing [`LruCache`] vs the frozen
//! `HashMap`-indexed oracle [`MapLru`] (`testshim`).
//!
//! The packed rewrite (ISSUE 10) must be observationally identical to the
//! old implementation: same hit/miss outcome per access, same eviction
//! (checked via `pop_lru` order and resident sets), same checkpoint bytes,
//! and same behaviour through resize/clear churn. Random request streams
//! drive both side by side and compare after every single operation.

use proptest::prelude::*;

use parapage_cache::{Cache, Checkpoint, LruCache, MapLru, PageId, SnapReader, SnapWriter};

fn checkpoint_bytes<C: Checkpoint>(c: &C) -> Vec<u8> {
    let mut w = SnapWriter::new();
    c.save(&mut w);
    w.into_bytes()
}

/// One comparison point: every observable the two caches expose.
fn assert_same_state(packed: &LruCache, oracle: &MapLru, ctx: &str) {
    assert_eq!(packed.len(), oracle.len(), "{ctx}: len");
    assert_eq!(packed.capacity(), oracle.capacity(), "{ctx}: capacity");
    assert_eq!(
        packed.pages_mru_first(),
        oracle.pages_mru_first(),
        "{ctx}: recency order"
    );
    assert_eq!(
        checkpoint_bytes(packed),
        checkpoint_bytes(oracle),
        "{ctx}: checkpoint bytes"
    );
}

fn seq_strategy(universe: u64, max_len: usize) -> impl Strategy<Value = Vec<PageId>> {
    prop::collection::vec((0..universe).prop_map(PageId), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same hit/miss sequence, same recency order, same checkpoint bytes
    /// after every access.
    #[test]
    fn access_streams_are_identical(seq in seq_strategy(48, 200), cap in 0usize..24) {
        let mut packed = LruCache::new(cap);
        let mut oracle = MapLru::new(cap);
        for (i, &page) in seq.iter().enumerate() {
            prop_assert_eq!(
                packed.contains(page),
                oracle.contains(page),
                "contains({:?}) before access {}", page, i
            );
            let a = packed.access(page);
            let b = oracle.access(page);
            prop_assert_eq!(a, b, "access #{} on {:?}", i, page);
            assert_same_state(&packed, &oracle, &format!("after access #{i}"));
        }
        // Identical eviction order all the way down.
        loop {
            let a = packed.pop_lru();
            let b = oracle.pop_lru();
            prop_assert_eq!(a, b, "pop_lru order");
            if a.is_none() {
                break;
            }
        }
    }

    /// Interleaved resize/clear churn keeps the two in lockstep.
    #[test]
    fn resize_and_clear_churn_is_identical(
        seq in seq_strategy(32, 120),
        caps in prop::collection::vec(0usize..20, 1..6),
    ) {
        let mut packed = LruCache::new(caps[0]);
        let mut oracle = MapLru::new(caps[0]);
        for (i, &page) in seq.iter().enumerate() {
            if i % 17 == 16 {
                let cap = caps[i % caps.len()];
                packed.resize(cap);
                oracle.resize(cap);
                assert_same_state(&packed, &oracle, &format!("after resize to {cap}"));
            }
            if i % 41 == 40 {
                packed.clear();
                oracle.clear();
                assert_same_state(&packed, &oracle, "after clear");
            }
            prop_assert_eq!(packed.access(page), oracle.access(page), "access #{}", i);
        }
        assert_same_state(&packed, &oracle, "final");
    }

    /// A checkpoint written by either implementation restores into the
    /// other byte-identically (resume equivalence across the rewrite).
    #[test]
    fn checkpoints_cross_load(seq in seq_strategy(40, 150), cap in 1usize..24) {
        let mut packed = LruCache::new(cap);
        let mut oracle = MapLru::new(cap);
        for &page in &seq {
            packed.access(page);
            oracle.access(page);
        }
        let bytes = checkpoint_bytes(&packed);
        prop_assert_eq!(&bytes, &checkpoint_bytes(&oracle), "save bytes");

        // Old bytes -> new impl.
        let mut restored_packed = LruCache::new(0);
        restored_packed.load(&mut SnapReader::new(&bytes)).unwrap();
        // New bytes -> old impl.
        let mut restored_oracle = MapLru::new(0);
        restored_oracle.load(&mut SnapReader::new(&bytes)).unwrap();

        assert_same_state(&restored_packed, &restored_oracle, "after cross-load");
        prop_assert_eq!(restored_packed.pages_mru_first(), packed.pages_mru_first());

        // Both restored caches evolve identically from here.
        for &page in seq.iter().take(30) {
            prop_assert_eq!(
                restored_packed.access(page),
                restored_oracle.access(page),
                "post-restore access"
            );
        }
        assert_same_state(&restored_packed, &restored_oracle, "post-restore final");
    }

    /// The fused single-probe path takes exactly the decisions the
    /// peek-then-access oracle takes under a shrinking budget.
    #[test]
    fn access_if_fits_matches_oracle(
        seq in seq_strategy(32, 150),
        cap in 0usize..16,
        budget in 0u64..600,
        penalty in 1u64..20,
    ) {
        let mut packed = LruCache::new(cap);
        let mut oracle = MapLru::new(cap);
        let mut remaining = budget;
        for (i, &page) in seq.iter().enumerate() {
            let expect = {
                let cost = if oracle.contains(page) { 1 } else { penalty };
                if cost > remaining { None } else { Some(oracle.access(page)) }
            };
            let got = packed.access_if_fits(page, remaining, penalty);
            prop_assert_eq!(got, expect, "access_if_fits #{} on {:?}", i, page);
            if let Some(acc) = got {
                remaining -= acc.cost(penalty);
            }
            assert_same_state(&packed, &oracle, &format!("after fused access #{i}"));
        }
    }
}

/// Non-proptest pin: the old implementation pre-sized at `1 << 20` and the
/// new one must stay correct past that boundary (see
/// `boundary_capacity_holds_every_resident` in `lru.rs` for the large-scale
/// variant; here we cross-check the two impls right at a big power of two,
/// sized down so the differential run stays fast).
#[test]
fn large_capacity_agrees_with_oracle() {
    let cap = 1 << 15;
    let mut packed = LruCache::new(cap);
    let mut oracle = MapLru::new(cap);
    for v in 0..(cap as u64 + 100) {
        assert_eq!(packed.access(PageId(v)), oracle.access(PageId(v)));
    }
    // Mixed hits after wrap-around.
    for v in (100..200u64).chain(40_000..40_050) {
        assert_eq!(
            packed.access(PageId(v)),
            oracle.access(PageId(v)),
            "page {v}"
        );
    }
    assert_eq!(packed.pages_mru_first(), oracle.pages_mru_first());
    assert_eq!(checkpoint_bytes(&packed), checkpoint_bytes(&oracle));
}
