//! Property-based tests for the cache substrate.
//!
//! The central invariants:
//! * LRU obeys the *inclusion property*, so the Mattson curve must agree with
//!   direct simulation at every capacity;
//! * Belady's MIN lower-bounds every online policy;
//! * miss counts are monotone non-increasing in capacity (for stack policies);
//! * window simulation conserves time and requests.

use proptest::prelude::*;

use parapage_cache::{
    min_misses, miss_curve, run_window, ArcCache, Cache, ClockCache, FifoCache, LfuCache,
    LirsCache, LruCache, PageId, TwoQueueCache,
};

fn seq_strategy(max_len: usize, universe: u64) -> impl Strategy<Value = Vec<PageId>> {
    prop::collection::vec((0..universe).prop_map(PageId), 0..max_len)
}

fn count_misses<C: Cache>(cache: &mut C, seq: &[PageId]) -> u64 {
    seq.iter().filter(|&&p| !cache.access(p).is_hit()).count() as u64
}

/// Serves `seq` to completion through fixed-budget windows (the same path
/// the box engine uses) and returns `(misses, served)`, or a description of
/// the first invariant breach (capacity overrun or a stalled window).
fn drive_windows<C: Cache>(
    cache: &mut C,
    seq: &[PageId],
    budget: u64,
    s: u64,
    cap: usize,
) -> Result<(u64, u64), String> {
    let mut pos = 0usize;
    let mut misses = 0u64;
    let mut served = 0u64;
    while pos < seq.len() {
        let out = run_window(seq, pos, cache, budget, s);
        if cache.len() > cap {
            return Err(format!("holds {} residents, capacity {cap}", cache.len()));
        }
        if out.end_index == pos && !out.finished {
            return Err(format!("window made no progress at index {pos}"));
        }
        misses += out.stats.misses;
        served += out.stats.accesses();
        pos = out.end_index;
    }
    Ok((misses, served))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mattson's analytic curve equals direct LRU simulation at every capacity.
    #[test]
    fn mattson_agrees_with_lru(seq in seq_strategy(300, 20), cap in 0usize..24) {
        let curve = miss_curve(&seq, 24);
        let mut lru = LruCache::new(cap);
        prop_assert_eq!(curve.misses(cap), count_misses(&mut lru, &seq));
    }

    /// Belady's MIN never incurs more misses than LRU, FIFO, Clock, or LFU.
    #[test]
    fn belady_lower_bounds_online_policies(seq in seq_strategy(200, 12), cap in 1usize..10) {
        let opt = min_misses(&seq, cap);
        prop_assert!(opt <= count_misses(&mut LruCache::new(cap), &seq));
        prop_assert!(opt <= count_misses(&mut FifoCache::new(cap), &seq));
        prop_assert!(opt <= count_misses(&mut ClockCache::new(cap), &seq));
        prop_assert!(opt <= count_misses(&mut LfuCache::new(cap), &seq));
        prop_assert!(opt <= count_misses(&mut ArcCache::new(cap), &seq));
        prop_assert!(opt <= count_misses(&mut TwoQueueCache::new(cap), &seq));
        prop_assert!(opt <= count_misses(&mut LirsCache::new(cap), &seq));
    }

    /// More capacity never hurts LRU or MIN (inclusion / clairvoyance).
    #[test]
    fn lru_and_min_monotone_in_capacity(seq in seq_strategy(200, 15)) {
        let curve = miss_curve(&seq, 16);
        for c in 1..=16 {
            prop_assert!(curve.misses(c) <= curve.misses(c - 1));
            prop_assert!(min_misses(&seq, c) <= min_misses(&seq, c - 1));
        }
    }

    /// Every policy keeps len() within capacity, and hits imply residency.
    #[test]
    fn policies_respect_capacity(seq in seq_strategy(150, 10), cap in 0usize..8) {
        let mut caches: Vec<Box<dyn Cache>> = vec![
            Box::new(LruCache::new(cap)),
            Box::new(FifoCache::new(cap)),
            Box::new(ClockCache::new(cap)),
            Box::new(LfuCache::new(cap)),
            Box::new(ArcCache::new(cap)),
            Box::new(TwoQueueCache::new(cap)),
            Box::new(LirsCache::new(cap)),
        ];
        for c in &mut caches {
            for &p in &seq {
                let was_resident = c.contains(p);
                let hit = c.access(p).is_hit();
                prop_assert_eq!(hit, was_resident);
                prop_assert!(c.len() <= cap);
                if cap > 0 {
                    prop_assert!(c.contains(p));
                }
            }
        }
    }

    /// Window simulation: time used equals hits + s*misses, never exceeds
    /// budget, and served count equals end_index - start.
    #[test]
    fn window_conserves_time(
        seq in seq_strategy(200, 12),
        cap in 0usize..8,
        budget in 0u64..500,
        s in 1u64..20,
    ) {
        let mut cache = LruCache::new(cap);
        let out = run_window(&seq, 0, &mut cache, budget, s);
        prop_assert_eq!(out.time_used, out.stats.hits + s * out.stats.misses);
        prop_assert!(out.time_used <= budget);
        prop_assert_eq!(out.stats.accesses(), out.end_index as u64);
        prop_assert_eq!(out.finished, out.end_index == seq.len());
        // Leftover budget is always smaller than one miss cost unless done.
        if !out.finished {
            prop_assert!(budget - out.time_used < s);
        }
    }

    /// Splitting a window in two at any budget point serves a prefix of what
    /// one combined window serves (warm cache carried over).
    #[test]
    fn window_split_is_consistent(
        seq in seq_strategy(150, 8),
        cap in 1usize..6,
        b1 in 0u64..200,
        b2 in 0u64..200,
        s in 1u64..10,
    ) {
        let mut warm = LruCache::new(cap);
        let first = run_window(&seq, 0, &mut warm, b1, s);
        let second = run_window(&seq, first.end_index, &mut warm, b2, s);

        let mut whole = LruCache::new(cap);
        let combined = run_window(&seq, 0, &mut whole, b1 + b2, s);
        // The split run can only fall behind the combined run (budget lost at
        // the seam when a miss straddles the boundary), never get ahead.
        prop_assert!(second.end_index <= combined.end_index);
        // Budget accounting: the split run wastes < s at the seam and < s at
        // its own tail, so it trails the combined run by strictly less than
        // two miss costs of work.
        let split_time = first.time_used + second.time_used;
        prop_assert!(split_time <= combined.time_used);
        prop_assert!(combined.time_used - split_time < 2 * s);
    }

    /// Cross-policy differential: every replacement policy, driven through
    /// the same windowed serve path the engine uses (`run_window` over
    /// random window budgets), keeps at most `cap` residents at every
    /// step, serves every request exactly once, and never undercuts
    /// Belady's clairvoyant miss count on the prefix it served.
    #[test]
    fn cross_policy_window_differential(
        seq in seq_strategy(250, 14),
        cap in 1usize..10,
        budget in 5u64..120,
        s in 2u64..12,
    ) {
        // A window that cannot fit even one miss would stall forever, so the
        // budget is at least one miss cost.
        let budget = budget.max(s);
        type DriveOutcome = Result<(u64, u64), String>;
        let outcomes: Vec<(&str, DriveOutcome)> = vec![
            ("lru", drive_windows(&mut LruCache::new(cap), &seq, budget, s, cap)),
            ("fifo", drive_windows(&mut FifoCache::new(cap), &seq, budget, s, cap)),
            ("clock", drive_windows(&mut ClockCache::new(cap), &seq, budget, s, cap)),
            ("lfu", drive_windows(&mut LfuCache::new(cap), &seq, budget, s, cap)),
            ("2q", drive_windows(&mut TwoQueueCache::new(cap), &seq, budget, s, cap)),
            ("lirs", drive_windows(&mut LirsCache::new(cap), &seq, budget, s, cap)),
            ("arc", drive_windows(&mut ArcCache::new(cap), &seq, budget, s, cap)),
        ];
        let opt = min_misses(&seq, cap);
        for (name, outcome) in outcomes {
            let (misses, served) = match outcome {
                Ok(pair) => pair,
                Err(e) => return Err(TestCaseError::fail(format!("{name}: {e}"))),
            };
            prop_assert_eq!(served, seq.len() as u64, "{} lost requests", name);
            prop_assert!(
                misses >= opt,
                "{} beat Belady: {} < {}", name, misses, opt
            );
        }
    }

    /// LRU resize down to c then simulating equals... at minimum, the cache
    /// always retains the MRU pages after a shrink.
    #[test]
    fn lru_shrink_keeps_mru(seq in seq_strategy(100, 10), new_cap in 1usize..5) {
        let mut lru = LruCache::new(8);
        for &p in &seq {
            lru.access(p);
        }
        let before = lru.pages_mru_first();
        lru.resize(new_cap);
        let after = lru.pages_mru_first();
        let expect: Vec<PageId> = before.into_iter().take(new_cap).collect();
        prop_assert_eq!(after, expect);
    }
}
