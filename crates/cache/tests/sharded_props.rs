//! Property pins for the sharded concurrent cache:
//!
//! * a **1-shard** [`ShardedCache`] is indistinguishable — access outcome
//!   by access outcome *and* snapshot byte by snapshot byte — from the
//!   sequential cache it wraps, for every checkpointable policy and random
//!   traces (the degeneracy the whole test story is anchored on);
//! * with any shard count, driving the sharded cache equals driving each
//!   shard's sequential twin with the routed subsequence;
//! * the lock-free FIFO tracks the sequential FIFO op-for-op, snapshot
//!   bytes included, so their blobs cross-load.

use proptest::prelude::*;

use parapage_cache::{
    concurrent::shard_capacity, ArcCache, Cache, Checkpoint, ClockCache, FifoCache, LfuCache,
    LockFreeFifoCache, LruCache, PageId, ShardedCache, SnapReader, SnapWriter, TwoQueueCache,
};

fn seq_strategy(max_len: usize, universe: u64) -> impl Strategy<Value = Vec<PageId>> {
    prop::collection::vec((0..universe).prop_map(PageId), 0..max_len)
}

fn snapshot_bytes<C: Checkpoint>(cache: &C) -> Vec<u8> {
    let mut w = SnapWriter::new();
    cache.save(&mut w);
    w.into_bytes()
}

/// Drives a plain `make(cap)` cache and a 1-shard sharded wrapper over the
/// same trace, insisting on identical outcomes, identical snapshot bytes,
/// and that the plain cache's blob loads into the sharded one unchanged.
fn assert_one_shard_identical<C, F>(
    name: &str,
    make: F,
    cap: usize,
    seq: &[PageId],
) -> Result<(), TestCaseError>
where
    C: Cache + Checkpoint,
    F: Fn(usize) -> C,
{
    let mut plain = make(cap);
    let mut sharded = ShardedCache::with_shards_by(cap, 1, &make);
    prop_assert_eq!(sharded.shard_count(), 1, "{}", name);
    for &page in seq {
        prop_assert_eq!(
            plain.access(page),
            sharded.access(page),
            "{} diverged",
            name
        );
    }
    prop_assert_eq!(plain.len(), sharded.len(), "{}", name);
    let (a, b) = (snapshot_bytes(&plain), snapshot_bytes(&sharded));
    prop_assert_eq!(&a, &b, "{}: snapshot bytes differ", name);

    // Cross-load: the *sequential* blob restores the sharded cache, and the
    // restored state re-encodes to the same bytes.
    let mut restored = ShardedCache::with_shards_by(cap, 1, &make);
    restored
        .load(&mut SnapReader::new(&a))
        .map_err(|e| TestCaseError::fail(format!("{name}: cross-load failed: {e}")))?;
    prop_assert_eq!(snapshot_bytes(&restored), b, "{}: re-encode differs", name);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 1's headline: for every checkpointable policy, a 1-shard
    /// sharded cache is byte-identical to the sequential cache it wraps.
    /// (LIRS is absent only because it does not implement `Checkpoint`.)
    #[test]
    fn one_shard_is_byte_identical_for_every_policy(
        seq in seq_strategy(200, 24),
        cap in 0usize..10,
    ) {
        assert_one_shard_identical("lru", LruCache::new, cap, &seq)?;
        assert_one_shard_identical("fifo", FifoCache::new, cap, &seq)?;
        assert_one_shard_identical("clock", ClockCache::new, cap, &seq)?;
        assert_one_shard_identical("lfu", LfuCache::new, cap, &seq)?;
        assert_one_shard_identical("arc", ArcCache::new, cap, &seq)?;
        assert_one_shard_identical("2q", TwoQueueCache::new, cap, &seq)?;
    }

    /// With any power-of-two shard count, the sharded cache behaves exactly
    /// like `n` independent sequential caches fed the routed subsequences —
    /// the router partitions, it never mixes.
    #[test]
    fn routing_equals_per_shard_sequential_twins(
        seq in seq_strategy(300, 32),
        cap in 0usize..16,
        shards_exp in 0u32..4,
    ) {
        let n = 1usize << shards_exp;
        let mut sharded = ShardedCache::with_shards(cap, n);
        let mut twins: Vec<LruCache> =
            (0..n).map(|i| LruCache::new(shard_capacity(cap, n, i))).collect();
        for &page in &seq {
            let i = sharded.shard_of(page);
            prop_assert_eq!(
                sharded.access(page),
                twins[i].access(page),
                "shard {} diverged on {:?}", i, page
            );
        }
        prop_assert_eq!(sharded.len(), twins.iter().map(Cache::len).sum::<usize>());
        // The sharded snapshot is exactly the twins' payloads concatenated.
        let mut w = SnapWriter::new();
        for t in &twins {
            t.save(&mut w);
        }
        prop_assert_eq!(snapshot_bytes(&sharded), w.into_bytes());
    }

    /// The lock-free FIFO is a drop-in for the sequential FIFO on any
    /// single-threaded trace: same outcomes, same residents, and snapshot
    /// blobs that load into each other.
    #[test]
    fn lock_free_fifo_tracks_sequential_fifo(
        seq in seq_strategy(250, 20),
        cap in 0usize..12,
    ) {
        let mut plain = FifoCache::new(cap);
        let mut lock_free = LockFreeFifoCache::new(cap);
        for &page in &seq {
            prop_assert_eq!(plain.access(page), lock_free.access(page), "{:?}", page);
        }
        prop_assert_eq!(plain.len(), lock_free.len());
        let (a, b) = (snapshot_bytes(&plain), snapshot_bytes(&lock_free));
        prop_assert_eq!(&a, &b, "snapshot bytes differ");

        // Cross-load both directions, then verify observable agreement.
        let mut from_plain = LockFreeFifoCache::new(0);
        from_plain
            .load(&mut SnapReader::new(&a))
            .map_err(|e| TestCaseError::fail(format!("fifo blob -> lock-free: {e}")))?;
        let mut from_lock_free = FifoCache::new(0);
        from_lock_free
            .load(&mut SnapReader::new(&b))
            .map_err(|e| TestCaseError::fail(format!("lock-free blob -> fifo: {e}")))?;
        for &page in &seq {
            prop_assert_eq!(from_plain.contains(page), plain.contains(page));
            prop_assert_eq!(from_lock_free.contains(page), plain.contains(page));
        }
        prop_assert_eq!(snapshot_bytes(&from_plain), a);
        prop_assert_eq!(snapshot_bytes(&from_lock_free), b);
    }
}
