//! Checkpoint coverage for the concurrent caches: snapshots taken while
//! other threads are live must decode, load, and uphold the same
//! invariants as quiescent ones — and a corrupted concurrent-cache blob
//! must fail with exactly the typed [`CodecError`] the sequential codec
//! promises (flip a byte → `DigestMismatch`, cut the tail →
//! `UnexpectedEof`), never a panic or a silently wrong cache.

use std::sync::atomic::{AtomicBool, Ordering};

use parapage_cache::{
    decode_framed, Cache, Checkpoint, CodecError, FifoCache, LockFreeFifoCache, PageId, ShardedLru,
    SnapReader, SnapWriter, SNAP_MAGIC,
};

fn p(v: u64) -> PageId {
    PageId(v)
}

fn framed_snapshot<C: Checkpoint>(cache: &C) -> Vec<u8> {
    let mut w = SnapWriter::new();
    cache.save(&mut w);
    w.into_framed()
}

/// Spawns `readers` threads looping `probe`, runs `f` on the main thread,
/// then stops the loops and joins.
fn with_readers<R>(readers: usize, probe: impl Fn(u64) + Sync, f: impl FnOnce() -> R) -> R {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..readers as u64 {
            let (stop, probe) = (&stop, &probe);
            s.spawn(move || {
                let mut v = t;
                while !stop.load(Ordering::Relaxed) {
                    probe(v);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(t);
                }
            });
        }
        let out = f();
        stop.store(true, Ordering::Relaxed);
        out
    })
}

/// Sharded snapshots taken while four threads keep *accessing* (not just
/// probing — shard locks make mutation safe under `save`) stay decodable
/// and loadable, and every loaded state is a legal cache state.
#[test]
fn sharded_snapshot_under_concurrent_accessors_is_valid() {
    let cache = ShardedLru::with_shards(64, 4);
    for v in 0..48 {
        cache.access_shared(p(v));
    }
    let blobs = with_readers(
        4,
        |v| {
            cache.access_shared(p(v % 96));
        },
        || (0..16).map(|_| framed_snapshot(&cache)).collect::<Vec<_>>(),
    );
    for (i, blob) in blobs.iter().enumerate() {
        let payload = decode_framed(blob).unwrap_or_else(|e| panic!("snapshot {i}: {e}"));
        let mut restored = ShardedLru::with_shards(64, 4);
        restored
            .load(&mut SnapReader::new(payload))
            .unwrap_or_else(|e| panic!("snapshot {i} failed to load: {e}"));
        assert!(restored.len() <= restored.capacity(), "snapshot {i}");
        // Each shard payload was written under that shard's lock, so the
        // restored shard must be a state sequential LRU can actually reach
        // — in particular its residents re-route to the same shard.
        for shard_cap in restored.shard_capacities() {
            assert!(shard_cap <= 64);
        }
    }
}

/// Lock-free FIFO snapshots under concurrent readers decode, cross-load
/// into the *sequential* FIFO (the byte-compatibility contract), and agree
/// with the live structure.
#[test]
fn lock_free_fifo_snapshot_under_concurrent_readers_is_valid() {
    let cache = LockFreeFifoCache::new(128);
    for v in 0..100 {
        cache.access_shared(p(v));
    }
    let blobs = with_readers(
        4,
        |v| {
            cache.contains_shared(p(v % 200));
        },
        || (0..16).map(|_| framed_snapshot(&cache)).collect::<Vec<_>>(),
    );
    for (i, blob) in blobs.iter().enumerate() {
        let payload = decode_framed(blob).unwrap_or_else(|e| panic!("snapshot {i}: {e}"));
        let mut seq_twin = FifoCache::new(0);
        seq_twin
            .load(&mut SnapReader::new(payload))
            .unwrap_or_else(|e| panic!("snapshot {i} rejected by sequential FIFO: {e}"));
        assert_eq!(seq_twin.len(), 100, "snapshot {i}: readers changed state");
        assert_eq!(seq_twin.capacity(), 128, "snapshot {i}");
        for v in 0..100 {
            assert!(seq_twin.contains(p(v)), "snapshot {i} lost page {v}");
        }
    }
}

/// Every flipped payload byte in a framed concurrent-cache snapshot is a
/// `DigestMismatch` — the corruption detection the sequential codec
/// promises holds verbatim for the concurrent blobs.
#[test]
fn any_flipped_byte_in_a_concurrent_snapshot_is_a_digest_mismatch() {
    let mut cache = ShardedLru::with_shards(16, 4);
    for v in 0..24 {
        cache.access(p(v));
    }
    let blob = framed_snapshot(&cache);
    let payload_start = SNAP_MAGIC.len() + 2;
    for i in payload_start..blob.len() - 8 {
        let mut bad = blob.clone();
        bad[i] ^= 0x01;
        match decode_framed(&bad) {
            Err(CodecError::DigestMismatch { computed, stored }) => {
                assert_ne!(computed, stored, "byte {i}")
            }
            other => panic!("byte {i} flipped: expected DigestMismatch, got {other:?}"),
        }
    }
}

/// Truncations fail typed: cutting the frame is `UnexpectedEof`, and a
/// frame-valid blob whose *payload* is short leaves the loader at
/// `UnexpectedEof` too (a missing shard never loads as an empty one).
#[test]
fn truncated_concurrent_snapshots_are_unexpected_eof() {
    let mut cache = ShardedLru::with_shards(16, 4);
    for v in 0..24 {
        cache.access(p(v));
    }
    let blob = framed_snapshot(&cache);
    // Cut inside the frame header: the frame itself refuses.
    assert_eq!(decode_framed(&blob[..13]), Err(CodecError::UnexpectedEof));
    // Cut off the trailing digest: the bytes now posing as the digest are
    // payload, so the frame fails integrity, never silently decodes.
    assert!(matches!(
        decode_framed(&blob[..blob.len() - 8]),
        Err(CodecError::DigestMismatch { .. } | CodecError::UnexpectedEof)
    ));
    // A well-framed but short payload: reframe a strict prefix, then load.
    let payload = decode_framed(&blob).unwrap();
    for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
        let mut restored = ShardedLru::with_shards(16, 4);
        let err = restored
            .load(&mut SnapReader::new(&payload[..cut]))
            .expect_err("short payload must not load");
        assert_eq!(err, CodecError::UnexpectedEof, "cut at {cut}");
    }
    // The intact payload still loads after all that prodding.
    let mut restored = ShardedLru::with_shards(16, 4);
    restored.load(&mut SnapReader::new(payload)).unwrap();
    assert_eq!(restored.len(), cache.len());
}

/// A corrupted blob must leave a concurrent cache *usable*: a failed load
/// may leave partial state, but the cache still honors its capacity bound
/// and serves accesses afterwards.
#[test]
fn failed_load_leaves_the_cache_operational() {
    let mut cache = ShardedLru::with_shards(8, 4);
    for v in 0..8 {
        cache.access(p(v));
    }
    let mut w = SnapWriter::new();
    cache.save(&mut w);
    let payload = w.into_bytes();
    let mut victim = ShardedLru::with_shards(8, 4);
    assert!(victim
        .load(&mut SnapReader::new(&payload[..payload.len() / 2]))
        .is_err());
    for v in 100..120 {
        victim.access(p(v));
        assert!(victim.len() <= victim.capacity());
    }
    // And a clean retry fully recovers it.
    victim.load(&mut SnapReader::new(&payload)).unwrap();
    let mut twin_bytes = SnapWriter::new();
    victim.save(&mut twin_bytes);
    assert_eq!(twin_bytes.into_bytes(), payload);
}
