//! Every [`CodecError`] variant, end to end: a hand-corrupted stream of
//! each shape must decode to exactly the right variant (never a panic,
//! never a misclassification), and the Display strings downstream tooling
//! greps for must stay stable.

use parapage_cache::{
    decode_framed, fnv1a64, frame_wal_record, parse_wal_record, CodecError, SnapReader, SnapWriter,
    WalRecordStep, SNAP_MAGIC, SNAP_VERSION, WAL_RECORD_HEADER,
};

/// A small framed blob with a known payload.
fn framed() -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u64(0xdead_beef);
    w.put_bool(true);
    w.put_bytes(b"payload");
    w.into_framed()
}

#[test]
fn display_strings_are_stable() {
    let cases: [(CodecError, &str); 6] = [
        (
            CodecError::UnexpectedEof,
            "snapshot truncated: unexpected end of input",
        ),
        (CodecError::BadMagic, "not a snapshot blob (bad magic)"),
        (
            CodecError::BadVersion(65535),
            "unsupported snapshot version 65535 (expected 1)",
        ),
        (
            CodecError::DigestMismatch {
                computed: 1,
                stored: 2,
            },
            "snapshot integrity digest mismatch (computed 0x0000000000000001, \
             stored 0x0000000000000002)",
        ),
        (
            CodecError::Invalid("bool byte not 0/1"),
            "snapshot field invalid: bool byte not 0/1",
        ),
        (
            CodecError::Unsupported("shared-lru"),
            "policy `shared-lru` does not support checkpointing",
        ),
    ];
    for (err, want) in cases {
        assert_eq!(err.to_string(), want);
    }
}

#[test]
fn empty_and_short_blobs_are_unexpected_eof() {
    assert_eq!(decode_framed(&[]), Err(CodecError::UnexpectedEof));
    assert_eq!(decode_framed(b"ppsn"), Err(CodecError::UnexpectedEof));
    // One byte short of the smallest valid frame (magic+version+digest).
    assert_eq!(
        decode_framed(&framed()[..13]),
        Err(CodecError::UnexpectedEof)
    );
}

#[test]
fn wrong_leading_bytes_are_bad_magic() {
    let mut blob = framed();
    blob[0] ^= 0xff;
    assert_eq!(decode_framed(&blob), Err(CodecError::BadMagic));
    // An entirely different stream of sufficient length.
    assert_eq!(decode_framed(&[0u8; 32]), Err(CodecError::BadMagic));
}

#[test]
fn unknown_version_is_bad_version_with_the_tag() {
    let mut blob = framed();
    blob[4..6].copy_from_slice(&0xffff_u16.to_le_bytes());
    assert_eq!(decode_framed(&blob), Err(CodecError::BadVersion(65535)));
    blob[4..6].copy_from_slice(&2u16.to_le_bytes());
    assert_eq!(decode_framed(&blob), Err(CodecError::BadVersion(2)));
    // The current version still decodes.
    blob[4..6].copy_from_slice(&SNAP_VERSION.to_le_bytes());
    assert!(decode_framed(&blob).is_ok());
}

#[test]
fn any_flipped_payload_byte_is_a_digest_mismatch() {
    let blob = framed();
    let payload_start = SNAP_MAGIC.len() + 2;
    for i in payload_start..blob.len() - 8 {
        let mut bad = blob.clone();
        bad[i] ^= 0x01;
        match decode_framed(&bad) {
            Err(CodecError::DigestMismatch { computed, stored }) => {
                assert_ne!(computed, stored, "byte {i}")
            }
            other => panic!("byte {i} flipped: expected DigestMismatch, got {other:?}"),
        }
    }
}

#[test]
fn a_non_boolean_byte_is_invalid() {
    let mut r = SnapReader::new(&[2u8]);
    assert_eq!(r.get_bool(), Err(CodecError::Invalid("bool byte not 0/1")));
    let mut r = SnapReader::new(&[1u8]);
    assert_eq!(r.get_bool(), Ok(true));
}

#[test]
fn an_oversized_collection_length_is_invalid_not_an_allocation() {
    // Length 1000 with only 2 bytes of payload behind it: must be the
    // typed Invalid, reported before any allocation is attempted.
    let mut w = SnapWriter::new();
    w.put_u64(1000);
    w.put_u8(0);
    w.put_u8(0);
    let buf = w.into_bytes();
    let mut r = SnapReader::new(&buf);
    assert_eq!(
        r.get_len(),
        Err(CodecError::Invalid("collection length exceeds payload"))
    );
}

#[test]
fn reading_past_the_end_is_unexpected_eof() {
    let mut w = SnapWriter::new();
    w.put_u32(7);
    let buf = w.into_bytes();
    let mut r = SnapReader::new(&buf);
    assert_eq!(r.get_u32(), Ok(7));
    assert!(r.is_exhausted());
    assert_eq!(r.get_u64(), Err(CodecError::UnexpectedEof));
    assert_eq!(r.get_bytes().unwrap_err(), CodecError::UnexpectedEof);
}

#[test]
fn torn_wal_records_carry_the_right_variant() {
    let base_digest = fnv1a64(b"base snapshot bytes");
    let (record, _) = frame_wal_record(1, base_digest, b"delta payload");

    // Cut mid-header: too short to even read the frame.
    match parse_wal_record(&record[..WAL_RECORD_HEADER - 2], base_digest) {
        WalRecordStep::Torn(CodecError::UnexpectedEof) => {}
        other => panic!("mid-header cut: {other:?}"),
    }
    // Cut mid-payload: header reads, bytes run out.
    match parse_wal_record(&record[..record.len() - 3], base_digest) {
        WalRecordStep::Torn(CodecError::UnexpectedEof) => {}
        other => panic!("mid-payload cut: {other:?}"),
    }
    // Wrong magic.
    let mut bad = record.clone();
    bad[0] = b'X';
    match parse_wal_record(&bad, base_digest) {
        WalRecordStep::Torn(CodecError::BadMagic) => {}
        other => panic!("bad magic: {other:?}"),
    }
    // Flipped payload byte: chained digest breaks.
    let mut bad = record.clone();
    bad[WAL_RECORD_HEADER + 2] ^= 0x10;
    match parse_wal_record(&bad, base_digest) {
        WalRecordStep::Torn(CodecError::DigestMismatch { .. }) => {}
        other => panic!("flipped byte: {other:?}"),
    }
    // Wrong chain seed (stale base / reordered log).
    match parse_wal_record(&record, base_digest ^ 1) {
        WalRecordStep::Torn(CodecError::DigestMismatch { .. }) => {}
        other => panic!("wrong chain: {other:?}"),
    }
    // The intact record in its right position still parses.
    match parse_wal_record(&record, base_digest) {
        WalRecordStep::Record {
            seq: 1, payload, ..
        } => assert_eq!(payload, b"delta payload"),
        other => panic!("intact record: {other:?}"),
    }
}

#[test]
fn error_values_round_trip_through_clone_and_eq() {
    let all = [
        CodecError::UnexpectedEof,
        CodecError::BadMagic,
        CodecError::BadVersion(3),
        CodecError::DigestMismatch {
            computed: 10,
            stored: 20,
        },
        CodecError::Invalid("x"),
        CodecError::Unsupported("y"),
    ];
    for e in &all {
        assert_eq!(e, &e.clone());
        // Distinct variants never compare equal.
        assert_eq!(all.iter().filter(|o| *o == e).count(), 1);
    }
}
