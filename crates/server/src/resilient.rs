//! [`ResilientClient`]: reconnect, re-attach, and retry on top of the
//! single-connection [`Client`](crate::client::Client).
//!
//! The contract is the adversarial-network version of the server's
//! byte-identical reply guarantee: however the transport fails — cut
//! mid-frame in either direction, stalled, trickled, or shed with a typed
//! [`Frame::Busy`] — a request either completes with exactly the reply a
//! clean run would have produced, or fails with a **typed**
//! [`ClientError`]. There is no silent-divergence outcome.
//!
//! Recovery is anchored on the v2 re-attach handshake. A `HelloAck`
//! carries the server's resume coordinates (`next_batch`, `reply_chain`);
//! the client compares them against its own cursor and the chain digest of
//! the last reply it saw:
//!
//! - server expects the batch we were sending → the batch never executed;
//!   re-send it (the chain must still match — anything else is a typed
//!   divergence);
//! - server expects the *next* batch → the batch executed but its reply
//!   was lost in the cut; fetch the cached frame with [`Frame::Replay`]
//!   and require its chain to equal the handshake's `reply_chain`;
//! - anything else → typed divergence, surfaced, never papered over.
//!
//! Because the protocol is strictly request/reply, at most one batch can
//! ever be in doubt, which is what makes the one-frame replay cache on the
//! server sufficient for byte-identical resumption.
//!
//! Reconnect pacing reuses the supervisor's capped exponential backoff
//! ([`parapage::sched::jittered_backoff`]) with deterministic per-seed
//! jitter, so a herd of restarting clients de-synchronizes while any one
//! schedule stays reproducible.

use std::net::SocketAddr;
use std::time::Duration;

use parapage::cache::PageId;
use parapage::conform::NetFaultPlan;
use parapage::sched::jittered_backoff;

use crate::client::Client;
use crate::protocol::{error_code, Frame, TenantConfig, WireError};

/// Retry tuning for a [`ResilientClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryOpts {
    /// Per-request read deadline on every connection.
    pub deadline: Option<Duration>,
    /// Transport attempts per request before [`ClientError::Exhausted`].
    pub max_attempts: u32,
    /// First reconnect backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Ceiling on a server-suggested `Busy` retry-after.
    pub busy_cap: Duration,
    /// Jitter seed (distinct per client; schedules stay deterministic).
    pub seed: u64,
}

impl Default for RetryOpts {
    fn default() -> Self {
        RetryOpts {
            deadline: Some(Duration::from_secs(5)),
            max_attempts: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(250),
            busy_cap: Duration::from_millis(500),
            seed: 0,
        }
    }
}

/// What a client survived while keeping its reply stream byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Connections established after the first (reconnects).
    pub reconnects: u64,
    /// Requests re-attempted after a transport failure.
    pub retries: u64,
    /// Missed replies recovered via [`Frame::Replay`].
    pub replays: u64,
    /// [`Frame::Busy`] shed notices absorbed (back-off-and-retry).
    pub sheds: u64,
    /// Per-request deadlines that expired.
    pub timeouts: u64,
}

impl RetryCounters {
    /// Folds another tally into this one.
    pub fn absorb(&mut self, other: &RetryCounters) {
        self.reconnects += other.reconnects;
        self.retries += other.retries;
        self.replays += other.replays;
        self.sheds += other.sheds;
        self.timeouts += other.timeouts;
    }

    /// Total recovered events (anything nonzero means the network
    /// misbehaved and the client absorbed it).
    pub fn recovered(&self) -> u64 {
        self.reconnects + self.retries + self.replays + self.sheds + self.timeouts
    }
}

/// Why a resilient request failed for good. Every variant is typed and
/// final — transient failures are retried internally, never surfaced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The retry budget ran out; `last` is the final transient failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last transient failure, rendered.
        last: String,
    },
    /// The server rejected the request with a typed application error —
    /// deterministic, so retrying would be futile.
    Rejected {
        /// One of [`crate::protocol::error_code`]'s constants.
        code: u16,
        /// Server-provided detail.
        message: String,
    },
    /// The resume handshake or a replayed frame did not line up with what
    /// this client already observed — the one outcome that must never be
    /// silent.
    Divergence {
        /// What failed to line up.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts: {last}"
                )
            }
            ClientError::Rejected { code, message } => {
                write!(f, "rejected (code {code}): {message}")
            }
            ClientError::Divergence { detail } => write!(f, "reply-stream divergence: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One attached connection and the server's resume coordinates from its
/// `HelloAck`.
#[derive(Debug)]
struct Attached {
    client: Client,
    server_next: u64,
    server_chain: u64,
}

/// A tenant client that survives transport faults with byte-identical
/// replies.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: TenantConfig,
    opts: RetryOpts,
    /// Fault plans by the connection index their `conn` field names;
    /// connections with no plan run clean.
    faults: Vec<NetFaultPlan>,
    conn_index: u64,
    conn: Option<Attached>,
    /// Client-side batch cursor: the next batch to submit.
    next_batch: u64,
    /// Reply-chain digest after the last `BatchDone` this client saw.
    last_chain: Option<u64>,
    counters: RetryCounters,
    /// Wire bytes of connections already closed.
    closed_sent: u64,
    closed_received: u64,
}

/// Classifies a typed server `Error` frame: a mid-frame read-deadline kill
/// (`TIMED_OUT`) is the server ending a stalled *connection*, not the
/// request — transient, reconnect and retry. Everything else is a
/// deterministic application rejection and final.
fn rejected(code: u16, message: String) -> TryErr {
    if code == error_code::TIMED_OUT {
        TryErr::Transient(format!("server closed a stalled connection: {message}"))
    } else {
        TryErr::Fatal(ClientError::Rejected { code, message })
    }
}

/// Internal: a failure during one attempt.
enum TryErr {
    /// Worth a reconnect + retry (transport faults, deadline expiries,
    /// shed notices).
    Transient(String),
    /// Final; surfaced to the caller as-is.
    Fatal(ClientError),
}

impl ResilientClient {
    /// A client for `config`'s tenant at `addr`. No connection is made
    /// until the first request.
    pub fn new(addr: SocketAddr, config: TenantConfig, opts: RetryOpts) -> Self {
        ResilientClient {
            addr,
            config,
            opts,
            faults: Vec::new(),
            conn_index: 0,
            conn: None,
            next_batch: 0,
            last_chain: None,
            counters: RetryCounters::default(),
            closed_sent: 0,
            closed_received: 0,
        }
    }

    /// Attaches deterministic fault plans; each applies to the connection
    /// whose 0-based index equals its `conn` field.
    pub fn with_faults(mut self, faults: Vec<NetFaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// What this client absorbed so far.
    pub fn counters(&self) -> RetryCounters {
        self.counters
    }

    /// Total `(sent, received)` wire bytes across every connection this
    /// client opened.
    pub fn wire_bytes(&self) -> (u64, u64) {
        let (mut s, mut r) = (self.closed_sent, self.closed_received);
        if let Some(att) = &self.conn {
            s += att.client.transport().bytes_sent();
            r += att.client.transport().bytes_received();
        }
        (s, r)
    }

    /// The next batch this client will submit.
    pub fn next_batch(&self) -> u64 {
        self.next_batch
    }

    /// Drops the current connection, banking its byte counters.
    fn drop_conn(&mut self) {
        if let Some(att) = self.conn.take() {
            self.closed_sent += att.client.transport().bytes_sent();
            self.closed_received += att.client.transport().bytes_received();
        }
    }

    /// Ensures an attached connection, reconnecting and re-attaching as
    /// needed.
    fn ensure_attached(&mut self) -> Result<(), TryErr> {
        if self.conn.is_some() {
            return Ok(());
        }
        let plan = self
            .faults
            .iter()
            .copied()
            .find(|p| p.conn == self.conn_index);
        let reconnect = self.conn_index > 0;
        self.conn_index += 1;
        let mut client = Client::connect_with(self.addr, plan, self.opts.deadline)
            .map_err(|e| TryErr::Transient(format!("connect: {e}")))?;
        if reconnect {
            self.counters.reconnects += 1;
        }
        match client.hello(self.config.clone()) {
            Ok(Frame::HelloAck {
                next_batch,
                reply_chain,
                ..
            }) => {
                // Re-seed the expected digest chain from the server's
                // acked state. If the server expects the batch we are
                // about to (re-)send, its chain must equal the one we
                // observed — anything else is a divergence, not a retry.
                if next_batch == self.next_batch {
                    if let Some(chain) = self.last_chain {
                        if chain != reply_chain {
                            return Err(TryErr::Fatal(ClientError::Divergence {
                                detail: format!(
                                    "re-attach at batch {next_batch}: server chain \
                                     {reply_chain:#x} != observed {chain:#x}"
                                ),
                            }));
                        }
                    }
                }
                self.conn = Some(Attached {
                    client,
                    server_next: next_batch,
                    server_chain: reply_chain,
                });
                Ok(())
            }
            Ok(Frame::Busy { retry_after_ms }) => {
                self.counters.sheds += 1;
                std::thread::sleep(
                    Duration::from_millis(u64::from(retry_after_ms)).min(self.opts.busy_cap),
                );
                Err(TryErr::Transient("shed with Busy".into()))
            }
            Ok(Frame::Error { code, message }) => Err(rejected(code, message)),
            Ok(other) => Err(TryErr::Fatal(ClientError::Divergence {
                detail: format!("unexpected Hello reply: {other:?}"),
            })),
            Err(e) => Err(self.transient(e, "hello")),
        }
    }

    /// Classifies a wire error as a transient failure, counting deadline
    /// expiries.
    fn transient(&mut self, e: WireError, what: &str) -> TryErr {
        if matches!(e, WireError::TimedOut { .. }) {
            self.counters.timeouts += 1;
        }
        TryErr::Transient(format!("{what}: {e}"))
    }

    /// One attempt at submitting (or recovering) `batch`.
    fn try_batch(&mut self, batch: u64, seqs: &[Vec<PageId>]) -> Result<Frame, TryErr> {
        self.ensure_attached()?;
        let att = self.conn.as_mut().expect("just attached");
        let (server_next, server_chain) = (att.server_next, att.server_chain);

        if server_next == batch + 1 {
            // The server served this batch but the reply was lost in a
            // cut: fetch the cached frame. Its chain must equal the
            // handshake's — the server's chain after `batch` — or the
            // streams have diverged.
            let reply = match att.client.call(&Frame::Replay { batch }) {
                Ok(f) => f,
                Err(e) => return Err(self.transient(e, "replay")),
            };
            return match reply {
                Frame::BatchDone {
                    batch: b, chain, ..
                } if b == batch => {
                    if chain != server_chain {
                        return Err(TryErr::Fatal(ClientError::Divergence {
                            detail: format!(
                                "replayed batch {batch} chain {chain:#x} != \
                                 server re-attach chain {server_chain:#x}"
                            ),
                        }));
                    }
                    self.counters.replays += 1;
                    self.last_chain = Some(chain);
                    Ok(reply)
                }
                Frame::Error { code, message } => Err(rejected(code, message)),
                other => Err(TryErr::Fatal(ClientError::Divergence {
                    detail: format!("unexpected Replay reply: {other:?}"),
                })),
            };
        }

        if server_next != batch {
            return Err(TryErr::Fatal(ClientError::Divergence {
                detail: format!(
                    "server expects batch {server_next}, client is at {batch} — \
                     cursors irreconcilable"
                ),
            }));
        }

        let reply = match att.client.call(&Frame::Batch {
            batch,
            seqs: seqs.to_vec(),
        }) {
            Ok(f) => f,
            Err(e) => return Err(self.transient(e, "batch")),
        };
        match reply {
            Frame::BatchDone {
                batch: b, chain, ..
            } if b == batch => {
                // Keep the resume coordinates current so a later fault on
                // this same connection re-attaches correctly.
                att.server_next = batch + 1;
                att.server_chain = chain;
                self.last_chain = Some(chain);
                Ok(reply)
            }
            Frame::Error { code, message } => Err(rejected(code, message)),
            other => Err(TryErr::Fatal(ClientError::Divergence {
                detail: format!("unexpected Batch reply: {other:?}"),
            })),
        }
    }

    /// Submits the next batch, surviving transport faults; returns the
    /// `BatchDone` a clean run would have produced.
    ///
    /// # Errors
    /// A typed [`ClientError`] once the retry budget is exhausted, the
    /// server rejects the request, or the reply stream diverges.
    pub fn run_batch(&mut self, seqs: &[Vec<PageId>]) -> Result<Frame, ClientError> {
        let batch = self.next_batch;
        let mut attempts = 0u32;
        let mut last = String::new();
        while attempts < self.opts.max_attempts {
            match self.try_batch(batch, seqs) {
                Ok(frame) => {
                    self.next_batch = batch + 1;
                    return Ok(frame);
                }
                Err(TryErr::Fatal(e)) => return Err(e),
                Err(TryErr::Transient(reason)) => {
                    self.drop_conn();
                    attempts += 1;
                    if attempts > 1 {
                        self.counters.retries += 1;
                    }
                    last = reason;
                    let backoff = jittered_backoff(
                        self.opts.backoff_base,
                        self.opts.backoff_cap,
                        attempts - 1,
                        self.opts.seed,
                    );
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Closes the session cleanly (best effort).
    pub fn goodbye(&mut self) {
        if let Some(att) = &mut self.conn {
            let _ = att.client.call(&Frame::Goodbye);
        }
        self.drop_conn();
    }
}
