//! The `parapage serve` wire protocol: length-prefixed, digest-chained
//! frames in the mould of the WAL record framing
//! (`parapage_cache::checkpoint::frame_wal_record`), with its own magic so
//! a wire capture can never be confused with a checkpoint log:
//!
//! ```text
//! WIRE_MAGIC(4) | seq u64 | payload_len u32 | payload … | digest u64
//! ```
//!
//! where `digest = fnv1a64_seeded(chain, seq ‖ payload_len ‖ payload)` and
//! `chain` is the previous frame's digest in the *same direction* (seeded
//! per direction from [`C2S_CHAIN_SEED`]/[`S2C_CHAIN_SEED`]). Sequence
//! numbers start at 0 per direction and must be contiguous, so a dropped,
//! reordered, replayed, or bit-flipped frame breaks the chain and surfaces
//! as a typed [`CodecError`] — never a panic.
//!
//! The payload is one tag byte followed by the [`Frame`] body in the
//! [`SnapWriter`] little-endian codec. Decoding is allocation-disciplined:
//! every declared length is validated against the bytes actually present
//! (and [`MAX_FRAME`]) *before* any buffer is reserved, so a hostile
//! length prefix cannot over-allocate.

use parapage::cache::{fnv1a64, fnv1a64_seeded, CodecError, PageId, SnapReader, SnapWriter};

/// Leading magic of one wire frame (`b"ppwf"` — parallel paging wire
/// frame; distinct from the checkpoint log's `b"ppwr"`).
pub const WIRE_MAGIC: [u8; 4] = *b"ppwf";

/// Protocol version spoken by this crate; [`Frame::Hello`] carries it and
/// the server rejects a mismatch with a typed [`Frame::Error`].
///
/// Version 2 (the chaos-layer revision) extended [`Frame::HelloAck`] with
/// the re-attach resume coordinates (`next_batch`, `reply_chain`) and
/// added [`Frame::Busy`] (admission-level load shedding) and
/// [`Frame::Replay`] (re-delivery of the last acked `BatchDone`). A v1
/// `Hello` still *decodes* — version negotiation happens above the codec —
/// so an old client is turned away with a typed `BAD_VERSION` error, never
/// a silent drop.
pub const PROTO_VERSION: u16 = 2;

/// Bytes of a wire frame before the payload: magic, sequence, length.
pub const WIRE_HEADER: usize = 4 + 8 + 4;

/// Hard cap on a frame's declared payload length (4 MiB). Enforced before
/// any allocation on both ends; oversized declarations are rejected as
/// [`CodecError::Invalid`].
pub const MAX_FRAME: usize = 4 << 20;

/// Chain seed of the client→server frame stream.
pub fn c2s_chain_seed() -> u64 {
    fnv1a64(b"parapage-wire/1/c2s")
}

/// Chain seed of the server→client frame stream.
pub fn s2c_chain_seed() -> u64 {
    fnv1a64(b"parapage-wire/1/s2c")
}

/// Longest tenant name the server admits.
pub const MAX_TENANT_NAME: usize = 256;

/// Application error codes carried by [`Frame::Error`].
pub mod error_code {
    /// Protocol version mismatch in `Hello`.
    pub const BAD_VERSION: u16 = 1;
    /// The tenant table is full (admission control).
    pub const TENANTS_FULL: u16 = 2;
    /// The tenant's cumulative request budget is exhausted.
    pub const BUDGET_EXHAUSTED: u16 = 3;
    /// A frame arrived out of session order (e.g. `Batch` before `Hello`,
    /// or a batch sequence gap).
    pub const BAD_STATE: u16 = 4;
    /// A malformed frame or payload (decoded as a typed codec error).
    pub const BAD_FRAME: u16 = 5;
    /// The tenant's engine failed terminally (typed engine/snapshot error
    /// or crash budget exhausted).
    pub const ENGINE_FAILED: u16 = 6;
    /// A `Hello` re-attached to an existing tenant with different
    /// parameters.
    pub const CONFIG_MISMATCH: u16 = 7;
    /// The peer stalled past the server's per-session read deadline
    /// mid-frame (slow-loris); the connection is closed after this error.
    pub const TIMED_OUT: u16 = 8;
}

/// Frame payload tags (first payload byte).
mod tag {
    pub const HELLO: u8 = 1;
    pub const HELLO_ACK: u8 = 2;
    pub const BATCH: u8 = 3;
    pub const BATCH_DONE: u8 = 4;
    pub const MIGRATE: u8 = 5;
    pub const MIGRATE_ACK: u8 = 6;
    pub const KILL: u8 = 7;
    pub const KILL_ACK: u8 = 8;
    pub const STATS: u8 = 9;
    pub const STATS_REPLY: u8 = 10;
    pub const GOODBYE: u8 = 11;
    pub const GOODBYE_ACK: u8 = 12;
    pub const SHUTDOWN: u8 = 13;
    pub const SHUTDOWN_ACK: u8 = 14;
    pub const ERROR: u8 = 15;
    pub const BUSY: u8 = 16;
    pub const REPLAY: u8 = 17;
}

/// Everything a [`Frame::Hello`] declares about the tenant's engine
/// configuration. The server builds each batch's policy and caches from
/// exactly these values, which is what makes replies deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant group name (session key; ≤ [`MAX_TENANT_NAME`] bytes).
    pub tenant: String,
    /// Processors in the tenant's engine.
    pub p: usize,
    /// Cache capacity `k`.
    pub k: usize,
    /// Miss penalty `s`.
    pub s: u64,
    /// Policy name (`det-par`, `rand-par`, `static`, `prop-miss`, `ucp`,
    /// `bb-green`).
    pub policy: String,
    /// Base RNG seed; batch `b` uses `seed ^ mix(b)`.
    pub seed: u64,
    /// Shard count of the tenant's [`parapage::cache::ShardedLru`].
    pub shards: usize,
}

/// Server-wide operational counters returned by [`Frame::StatsReply`].
/// These are *not* part of the deterministic per-tenant reply chain: crash
/// and migration counts depend on which kills were requested, so they ride
/// in a separate frame that equivalence tests deliberately exclude.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Tenant sessions ever admitted.
    pub tenants: u64,
    /// Batches served to completion.
    pub batches: u64,
    /// Page requests served across all batches.
    pub requests: u64,
    /// Tenant engine crashes survived (injected kills included).
    pub restarts: u64,
    /// Live migrations performed at epoch boundaries.
    pub migrations: u64,
    /// WAL delta records appended across all tenant runs.
    pub wal_records: u64,
    /// Checkpoint bytes written across all tenant runs.
    pub checkpoint_bytes: u64,
    /// Idle tenants retired to their checkpointed session state (a later
    /// re-attach restores them; see the server's idle-TTL).
    pub expiries: u64,
    /// Connections shed at admission with a typed [`Frame::Busy`].
    pub shed: u64,
}

/// One protocol message. Every variant round-trips through
/// [`Frame::encode_payload`]/[`Frame::decode_payload`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open (or re-attach to) a tenant session.
    Hello {
        /// Protocol version (must equal [`PROTO_VERSION`]).
        proto: u16,
        /// The tenant's engine configuration.
        config: TenantConfig,
    },
    /// Server → client: session admitted.
    HelloAck {
        /// Server-assigned session id (diagnostic only).
        session: u64,
        /// The server's frame cap, so a client can fail fast locally.
        max_frame: u64,
        /// Requests this tenant may still submit before admission control
        /// rejects its batches.
        budget_left: u64,
        /// The batch sequence number the server expects next — the resume
        /// coordinate a re-attaching client compares against its own
        /// cursor to decide between re-sending and [`Frame::Replay`].
        next_batch: u64,
        /// The tenant's reply-chain digest after its last acked batch. A
        /// re-attaching client re-seeds its expected chain from this, so
        /// a replayed stream either lines up byte-identically or the
        /// mismatch surfaces as a typed divergence — never silently.
        reply_chain: u64,
    },
    /// Client → server: one batch of per-processor request sequences to
    /// run through the tenant's supervised engine.
    Batch {
        /// Monotone batch sequence number (0-based, contiguous).
        batch: u64,
        /// One request sequence per processor (`config.p` of them).
        seqs: Vec<Vec<PageId>>,
    },
    /// Server → client: the batch's deterministic outcome. Byte-identical
    /// across crashes, kills, and migrations of the serving engine.
    BatchDone {
        /// Echoed batch sequence number.
        batch: u64,
        /// Makespan of the batch run.
        makespan: u64,
        /// Aggregate cache hits.
        hits: u64,
        /// Aggregate cache misses.
        misses: u64,
        /// Grants issued by the policy.
        grants: u64,
        /// FNV-1a64 digest of the canonical [`parapage::sched::RunResult`]
        /// encoding.
        digest: u64,
        /// Running digest chained over every `BatchDone` of this tenant —
        /// the one-number summary equivalence tests compare.
        chain: u64,
    },
    /// Client → server: at the next epoch boundary at-or-after `at_tick`
    /// of batch `batch`, migrate the tenant onto a fresh engine via the
    /// supervisor's snapshot/restore path.
    Migrate {
        /// Batch the migration applies to.
        batch: u64,
        /// Engine tick threshold within that batch.
        at_tick: u64,
    },
    /// Server → client: migration request queued.
    MigrateAck {
        /// Requests now pending for this tenant.
        pending: u32,
    },
    /// Client → server: kill (panic) the tenant's engine at `at_tick` of
    /// batch `batch`. The supervisor absorbs the crash; the batch still
    /// completes with a byte-identical `BatchDone`.
    Kill {
        /// Batch the kill applies to.
        batch: u64,
        /// Engine tick at which the injected panic fires.
        at_tick: u64,
    },
    /// Server → client: kill request queued.
    KillAck {
        /// Requests now pending for this tenant.
        pending: u32,
    },
    /// Client → server: request the server-wide operational counters.
    Stats,
    /// Server → client: the counters.
    StatsReply {
        /// Aggregated server counters.
        stats: ServerStats,
    },
    /// Client → server: close this session cleanly.
    Goodbye,
    /// Server → client: session closed.
    GoodbyeAck,
    /// Client → server: stop accepting connections and shut down once
    /// active sessions drain.
    Shutdown,
    /// Server → client: shutdown initiated.
    ShutdownAck,
    /// Server → client: a typed application-level failure. The connection
    /// stays usable unless the transport itself broke.
    Error {
        /// One of [`error_code`]'s constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: admission-level load shedding. The server is at
    /// its connection cap; it answers with this frame *instead of* a
    /// silent drop, then closes. A well-behaved client backs off at least
    /// `retry_after_ms` before reconnecting.
    Busy {
        /// Suggested minimum back-off before the next attempt.
        retry_after_ms: u32,
    },
    /// Client → server: re-deliver the `BatchDone` of `batch`, which the
    /// server acked but the client never saw (the connection died while
    /// the reply was in flight). The server answers with the cached frame
    /// verbatim — same digest, same chain — or a typed `BAD_STATE` error
    /// if `batch` is not the tenant's most recently served batch.
    Replay {
        /// The batch whose reply went missing.
        batch: u64,
    },
}

impl Frame {
    /// Encodes the payload (tag byte + body) this frame ships inside a
    /// wire frame.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Frame::Hello { proto, config } => {
                w.put_u8(tag::HELLO);
                w.put_u16(*proto);
                w.put_bytes(config.tenant.as_bytes());
                w.put_usize(config.p);
                w.put_usize(config.k);
                w.put_u64(config.s);
                w.put_bytes(config.policy.as_bytes());
                w.put_u64(config.seed);
                w.put_usize(config.shards);
            }
            Frame::HelloAck {
                session,
                max_frame,
                budget_left,
                next_batch,
                reply_chain,
            } => {
                w.put_u8(tag::HELLO_ACK);
                w.put_u64(*session);
                w.put_u64(*max_frame);
                w.put_u64(*budget_left);
                w.put_u64(*next_batch);
                w.put_u64(*reply_chain);
            }
            Frame::Batch { batch, seqs } => {
                w.put_u8(tag::BATCH);
                w.put_u64(*batch);
                w.put_len(seqs.len());
                for seq in seqs {
                    w.put_len(seq.len());
                    for &pg in seq {
                        w.put_page(pg);
                    }
                }
            }
            Frame::BatchDone {
                batch,
                makespan,
                hits,
                misses,
                grants,
                digest,
                chain,
            } => {
                w.put_u8(tag::BATCH_DONE);
                w.put_u64(*batch);
                w.put_u64(*makespan);
                w.put_u64(*hits);
                w.put_u64(*misses);
                w.put_u64(*grants);
                w.put_u64(*digest);
                w.put_u64(*chain);
            }
            Frame::Migrate { batch, at_tick } => {
                w.put_u8(tag::MIGRATE);
                w.put_u64(*batch);
                w.put_u64(*at_tick);
            }
            Frame::MigrateAck { pending } => {
                w.put_u8(tag::MIGRATE_ACK);
                w.put_u32(*pending);
            }
            Frame::Kill { batch, at_tick } => {
                w.put_u8(tag::KILL);
                w.put_u64(*batch);
                w.put_u64(*at_tick);
            }
            Frame::KillAck { pending } => {
                w.put_u8(tag::KILL_ACK);
                w.put_u32(*pending);
            }
            Frame::Stats => w.put_u8(tag::STATS),
            Frame::StatsReply { stats } => {
                w.put_u8(tag::STATS_REPLY);
                w.put_u64(stats.tenants);
                w.put_u64(stats.batches);
                w.put_u64(stats.requests);
                w.put_u64(stats.restarts);
                w.put_u64(stats.migrations);
                w.put_u64(stats.wal_records);
                w.put_u64(stats.checkpoint_bytes);
                w.put_u64(stats.expiries);
                w.put_u64(stats.shed);
            }
            Frame::Goodbye => w.put_u8(tag::GOODBYE),
            Frame::GoodbyeAck => w.put_u8(tag::GOODBYE_ACK),
            Frame::Shutdown => w.put_u8(tag::SHUTDOWN),
            Frame::ShutdownAck => w.put_u8(tag::SHUTDOWN_ACK),
            Frame::Error { code, message } => {
                w.put_u8(tag::ERROR);
                w.put_u16(*code);
                w.put_bytes(message.as_bytes());
            }
            Frame::Busy { retry_after_ms } => {
                w.put_u8(tag::BUSY);
                w.put_u32(*retry_after_ms);
            }
            Frame::Replay { batch } => {
                w.put_u8(tag::REPLAY);
                w.put_u64(*batch);
            }
        }
        w.into_bytes()
    }

    /// Decodes a payload produced by [`Frame::encode_payload`]. Rejects
    /// unknown tags, over-long names, non-UTF-8 strings, trailing garbage,
    /// and page lists whose declared element count exceeds the bytes
    /// present — all as typed [`CodecError`]s, never a panic, and never an
    /// allocation larger than the payload itself warrants.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, CodecError> {
        let mut r = SnapReader::new(payload);
        let t = r.get_u8()?;
        let frame = match t {
            tag::HELLO => {
                let proto = r.get_u16()?;
                let tenant = get_name(&mut r, MAX_TENANT_NAME)?;
                let p = r.get_usize()?;
                let k = r.get_usize()?;
                let s = r.get_u64()?;
                let policy = get_name(&mut r, 64)?;
                let seed = r.get_u64()?;
                let shards = r.get_usize()?;
                Frame::Hello {
                    proto,
                    config: TenantConfig {
                        tenant,
                        p,
                        k,
                        s,
                        policy,
                        seed,
                        shards,
                    },
                }
            }
            tag::HELLO_ACK => Frame::HelloAck {
                session: r.get_u64()?,
                max_frame: r.get_u64()?,
                budget_left: r.get_u64()?,
                next_batch: r.get_u64()?,
                reply_chain: r.get_u64()?,
            },
            tag::BATCH => {
                let batch = r.get_u64()?;
                let nseqs = r.get_len()?;
                let mut seqs = Vec::with_capacity(nseqs);
                for _ in 0..nseqs {
                    let n = r.get_len()?;
                    // get_len bounds n by the remaining *bytes*, but each
                    // page occupies 8 of them: tighten before reserving so
                    // a hostile length cannot inflate the allocation 8x.
                    if n > r.remaining() / 8 {
                        return Err(CodecError::Invalid(
                            "page list length exceeds remaining payload",
                        ));
                    }
                    let mut seq = Vec::with_capacity(n);
                    for _ in 0..n {
                        seq.push(r.get_page()?);
                    }
                    seqs.push(seq);
                }
                Frame::Batch { batch, seqs }
            }
            tag::BATCH_DONE => Frame::BatchDone {
                batch: r.get_u64()?,
                makespan: r.get_u64()?,
                hits: r.get_u64()?,
                misses: r.get_u64()?,
                grants: r.get_u64()?,
                digest: r.get_u64()?,
                chain: r.get_u64()?,
            },
            tag::MIGRATE => Frame::Migrate {
                batch: r.get_u64()?,
                at_tick: r.get_u64()?,
            },
            tag::MIGRATE_ACK => Frame::MigrateAck {
                pending: r.get_u32()?,
            },
            tag::KILL => Frame::Kill {
                batch: r.get_u64()?,
                at_tick: r.get_u64()?,
            },
            tag::KILL_ACK => Frame::KillAck {
                pending: r.get_u32()?,
            },
            tag::STATS => Frame::Stats,
            tag::STATS_REPLY => Frame::StatsReply {
                stats: ServerStats {
                    tenants: r.get_u64()?,
                    batches: r.get_u64()?,
                    requests: r.get_u64()?,
                    restarts: r.get_u64()?,
                    migrations: r.get_u64()?,
                    wal_records: r.get_u64()?,
                    checkpoint_bytes: r.get_u64()?,
                    expiries: r.get_u64()?,
                    shed: r.get_u64()?,
                },
            },
            tag::GOODBYE => Frame::Goodbye,
            tag::GOODBYE_ACK => Frame::GoodbyeAck,
            tag::SHUTDOWN => Frame::Shutdown,
            tag::SHUTDOWN_ACK => Frame::ShutdownAck,
            tag::ERROR => Frame::Error {
                code: r.get_u16()?,
                message: get_name(&mut r, MAX_FRAME)?,
            },
            tag::BUSY => Frame::Busy {
                retry_after_ms: r.get_u32()?,
            },
            tag::REPLAY => Frame::Replay {
                batch: r.get_u64()?,
            },
            _ => return Err(CodecError::Invalid("unknown frame tag")),
        };
        if !r.is_exhausted() {
            return Err(CodecError::Invalid("trailing bytes after frame payload"));
        }
        Ok(frame)
    }
}

/// Reads a length-prefixed UTF-8 string, bounding its length *before* any
/// copy.
fn get_name(r: &mut SnapReader<'_>, max: usize) -> Result<String, CodecError> {
    let bytes = r.get_bytes()?;
    if bytes.len() > max {
        return Err(CodecError::Invalid("string field too long"));
    }
    String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("string field not UTF-8"))
}

/// Frames `payload` as one wire frame and returns `(bytes, digest)`, the
/// digest being the chain seed for the direction's next frame.
pub fn frame_wire(seq: u64, chain: u64, payload: &[u8]) -> (Vec<u8>, u64) {
    debug_assert!(payload.len() <= MAX_FRAME, "oversized outgoing frame");
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32");
    let mut out = Vec::with_capacity(WIRE_HEADER + payload.len() + 8);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    let digest = fnv1a64_seeded(chain, &out[4..]);
    out.extend_from_slice(&digest.to_le_bytes());
    (out, digest)
}

/// One decoded wire frame: the payload slice, the chained digest (= next
/// chain seed), and the framed bytes consumed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFrame<'a> {
    /// Sequence number carried in the header.
    pub seq: u64,
    /// The payload bytes (tag + body).
    pub payload: &'a [u8],
    /// Chained digest of this frame.
    pub digest: u64,
    /// Total framed length consumed from the buffer.
    pub consumed: usize,
}

/// Parses one wire frame off the front of `buf`, verifying magic, the
/// expected sequence number, the length cap, and the chained digest.
///
/// Never panics and never allocates: every malformed shape — truncation,
/// wrong magic, a sequence gap or replay, an oversized declared length, a
/// flipped byte — maps onto a typed [`CodecError`]. The length cap is
/// checked *before* the length is trusted for anything, so a hostile
/// 4 GiB declaration is rejected without reserving a byte.
pub fn parse_wire(buf: &[u8], chain: u64, expect_seq: u64) -> Result<WireFrame<'_>, CodecError> {
    if buf.len() < WIRE_HEADER {
        return Err(CodecError::UnexpectedEof);
    }
    if buf[..4] != WIRE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::Invalid("frame length exceeds MAX_FRAME"));
    }
    if seq != expect_seq {
        return Err(CodecError::Invalid("frame sequence break"));
    }
    let total = WIRE_HEADER + len + 8;
    if buf.len() < total {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &buf[WIRE_HEADER..WIRE_HEADER + len];
    let stored = u64::from_le_bytes(buf[total - 8..total].try_into().unwrap());
    let computed = fnv1a64_seeded(chain, &buf[4..total - 8]);
    if computed != stored {
        return Err(CodecError::DigestMismatch { computed, stored });
    }
    Ok(WireFrame {
        seq,
        payload,
        digest: computed,
        consumed: total,
    })
}

/// Why a framed read or write over a transport failed.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed mid-frame.
    Io(std::io::Error),
    /// The bytes arrived but do not form a valid next frame (truncation,
    /// bad magic, sequence break, oversized length, digest mismatch, or a
    /// malformed payload).
    Codec(CodecError),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// A configured read deadline expired. `mid_frame` distinguishes a
    /// peer that stalled with a frame partly delivered (slow-loris — the
    /// server answers with a typed `TIMED_OUT` error and closes) from one
    /// that is merely idle between frames (closed quietly; a resilient
    /// client re-attaches on its next request).
    TimedOut {
        /// Whether bytes of the next frame had already arrived.
        mid_frame: bool,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Codec(e) => write!(f, "protocol error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::TimedOut { mid_frame: true } => write!(f, "read deadline expired mid-frame"),
            WireError::TimedOut { mid_frame: false } => {
                write!(f, "read deadline expired at a frame boundary")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// One direction of a framed stream: the next expected sequence number
/// and the running digest chain.
#[derive(Clone, Copy, Debug)]
pub struct WireState {
    seq: u64,
    chain: u64,
}

impl WireState {
    /// A fresh direction state from its chain seed.
    pub fn new(chain_seed: u64) -> Self {
        WireState {
            seq: 0,
            chain: chain_seed,
        }
    }

    /// Frames and writes one message, advancing the chain.
    pub fn write_frame(
        &mut self,
        w: &mut impl std::io::Write,
        frame: &Frame,
    ) -> Result<(), WireError> {
        let payload = frame.encode_payload();
        if payload.len() > MAX_FRAME {
            return Err(WireError::Codec(CodecError::Invalid(
                "frame length exceeds MAX_FRAME",
            )));
        }
        let (bytes, digest) = frame_wire(self.seq, self.chain, &payload);
        w.write_all(&bytes)?;
        w.flush()?;
        self.seq += 1;
        self.chain = digest;
        Ok(())
    }

    /// Reads, verifies, and decodes the next frame, advancing the chain.
    ///
    /// The declared payload length is validated against [`MAX_FRAME`]
    /// *before* the payload buffer is allocated, so a hostile header
    /// cannot force an over-allocation; a clean EOF before the first
    /// header byte is [`WireError::Closed`].
    pub fn read_frame(&mut self, r: &mut impl std::io::Read) -> Result<Frame, WireError> {
        let mut buf = vec![0u8; WIRE_HEADER];
        read_exact_or_closed(r, &mut buf, false)?;
        let len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Codec(CodecError::Invalid(
                "frame length exceeds MAX_FRAME",
            )));
        }
        buf.resize(WIRE_HEADER + len + 8, 0);
        read_exact_or_closed(r, &mut buf[WIRE_HEADER..], true)?;
        let wf = parse_wire(&buf, self.chain, self.seq)?;
        let frame = Frame::decode_payload(wf.payload)?;
        self.seq += 1;
        self.chain = wf.digest;
        Ok(frame)
    }
}

/// `read_exact`, except a clean EOF before the first byte is
/// [`WireError::Closed`] instead of an I/O error, and an expired read
/// deadline (`WouldBlock`/`TimedOut` from a socket with a read timeout) is
/// the typed [`WireError::TimedOut`] — `mid_frame` once any byte of the
/// frame (`started`, or a previous chunk of it) has been seen.
fn read_exact_or_closed(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    started: bool,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && !started => return Err(WireError::Closed),
            Ok(0) => return Err(WireError::Codec(CodecError::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(WireError::TimedOut {
                    mid_frame: started || filled > 0,
                })
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}
