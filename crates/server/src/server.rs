//! The `parapage serve` daemon: a TCP accept loop handing each connection
//! to a session thread that speaks the [`crate::protocol`] frame stream.
//!
//! Sessions are keyed by tenant name: a `Hello` either admits a new tenant
//! (subject to the `max_tenants` cap) or re-attaches to an existing one
//! (the declared configuration must match — this is what a client does
//! after reconnecting, and what lets several connections feed one tenant).
//! Each tenant's engine work runs under the per-batch [`Supervisor`] in
//! [`crate::tenant`], so a tenant's crash — injected via `Kill` or genuine
//! — is absorbed inside its own session and never takes down the process
//! or perturbs any other tenant's replies.
//!
//! Backpressure is the transport itself: the protocol is strictly
//! request/reply per connection and frames are bounded by
//! [`crate::protocol::MAX_FRAME`], so a slow reader throttles only its own
//! TCP window while the server holds at most one in-flight batch per
//! connection thread.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::protocol::{
    c2s_chain_seed, error_code, s2c_chain_seed, Frame, ServerStats, TenantConfig, WireError,
    WireState, MAX_FRAME, MAX_TENANT_NAME, PROTO_VERSION,
};
use crate::tenant::{policy_known, TenantOpts, TenantSession};

/// Server-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOpts {
    /// Admission control: tenants admitted concurrently.
    pub max_tenants: usize,
    /// Admission control: cumulative page-request budget per tenant.
    pub request_budget: u64,
    /// WAL checkpoint cadence of tenant engine runs (engine events per
    /// supervisor epoch).
    pub epoch_ticks: u64,
    /// Crash budget per tenant batch.
    pub max_retries: u32,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            max_tenants: 64,
            request_budget: u64::MAX,
            epoch_ticks: 8,
            max_retries: 8,
        }
    }
}

/// Shared server state.
struct ServerState {
    opts: ServeOpts,
    addr: SocketAddr,
    tenants: Mutex<HashMap<String, Arc<Mutex<TenantSession>>>>,
    /// Clones of every live connection's stream, so shutdown can unblock
    /// handlers parked in a read.
    conns: Mutex<Vec<TcpStream>>,
    admitted: AtomicU64,
    next_session: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServerState {
    fn stats(&self) -> ServerStats {
        let tenants = self.tenants.lock().expect("tenant table poisoned");
        let mut s = ServerStats {
            tenants: self.admitted.load(Ordering::SeqCst),
            ..ServerStats::default()
        };
        for session in tenants.values() {
            let c = session.lock().expect("tenant session poisoned").counters();
            s.batches += c.batches;
            s.requests += c.requests;
            s.restarts += c.restarts;
            s.migrations += c.migrations;
            s.wal_records += c.wal_records;
            s.checkpoint_bytes += c.checkpoint_bytes;
        }
        s
    }
}

/// A running server: its bound address and the accept thread.
pub struct ServerHandle {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the OS-assigned port
    /// when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Current server-wide operational counters (what `Stats` returns on
    /// the wire).
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Blocks until the accept loop exits (a client sent `Shutdown`) and
    /// every session thread has drained; returns the final counters.
    pub fn join(mut self) -> ServerStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.state.stats()
    }
}

/// Binds `addr` and starts the accept loop on its own thread.
///
/// # Errors
/// Any bind failure, verbatim.
pub fn serve(addr: impl ToSocketAddrs, opts: ServeOpts) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        opts,
        addr,
        tenants: Mutex::new(HashMap::new()),
        conns: Mutex::new(Vec::new()),
        admitted: AtomicU64::new(0),
        next_session: AtomicU64::new(1),
        shutting_down: AtomicBool::new(false),
    });
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(listener, accept_state));
    Ok(ServerHandle {
        state,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().expect("conn table poisoned").push(clone);
        }
        let conn_state = Arc::clone(&state);
        sessions.push(std::thread::spawn(move || {
            // A connection thread owns its stream; any transport or
            // protocol failure ends only this session.
            let _ = handle_connection(stream, conn_state);
        }));
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// Wakes the blocking `accept` so the loop observes the shutdown flag, and
/// closes every live connection so handlers parked in a read drain too —
/// a shutdown must not wait on clients that never hang up.
fn begin_shutdown(state: &ServerState) {
    for conn in state.conns.lock().expect("conn table poisoned").drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    let _ = TcpStream::connect(state.addr);
}

fn handle_connection(mut stream: TcpStream, state: Arc<ServerState>) -> Result<(), WireError> {
    let mut rx = WireState::new(c2s_chain_seed());
    let mut tx = WireState::new(s2c_chain_seed());
    // The tenant this connection attached to via Hello.
    let mut attached: Option<Arc<Mutex<TenantSession>>> = None;

    loop {
        let frame = match rx.read_frame(&mut stream) {
            Ok(f) => f,
            Err(WireError::Closed) => return Ok(()),
            Err(WireError::Codec(e)) => {
                // Malformed input: report the typed reason, then close —
                // the receive chain is broken, nothing after it can
                // verify.
                let _ = tx.write_frame(
                    &mut stream,
                    &Frame::Error {
                        code: error_code::BAD_FRAME,
                        message: format!("{e}"),
                    },
                );
                return Err(WireError::Codec(e));
            }
            Err(e) => return Err(e),
        };
        let reply = match frame {
            Frame::Hello { proto, config } => match admit(&state, proto, config) {
                Ok((session, budget_left)) => Frame::HelloAck {
                    session: {
                        attached = Some(session.1);
                        session.0
                    },
                    max_frame: MAX_FRAME as u64,
                    budget_left,
                },
                Err((code, message)) => Frame::Error { code, message },
            },
            Frame::Batch { batch, seqs } => match &attached {
                None => no_session(),
                Some(tenant) => {
                    let mut t = tenant.lock().expect("tenant session poisoned");
                    match t.run_batch(batch, &seqs) {
                        Ok(done) => done,
                        Err((code, message)) => Frame::Error { code, message },
                    }
                }
            },
            Frame::Migrate { batch, at_tick } => match &attached {
                None => no_session(),
                Some(tenant) => Frame::MigrateAck {
                    pending: tenant
                        .lock()
                        .expect("tenant session poisoned")
                        .queue_migration(batch, at_tick),
                },
            },
            Frame::Kill { batch, at_tick } => match &attached {
                None => no_session(),
                Some(tenant) => Frame::KillAck {
                    pending: tenant
                        .lock()
                        .expect("tenant session poisoned")
                        .queue_kill(batch, at_tick),
                },
            },
            Frame::Stats => Frame::StatsReply {
                stats: state.stats(),
            },
            Frame::Goodbye => {
                tx.write_frame(&mut stream, &Frame::GoodbyeAck)?;
                return Ok(());
            }
            Frame::Shutdown => {
                state.shutting_down.store(true, Ordering::SeqCst);
                tx.write_frame(&mut stream, &Frame::ShutdownAck)?;
                begin_shutdown(&state);
                return Ok(());
            }
            // Server-to-client frames arriving at the server are a state
            // violation, not a codec one: the bytes were well-formed.
            _ => Frame::Error {
                code: error_code::BAD_STATE,
                message: "unexpected frame direction".into(),
            },
        };
        tx.write_frame(&mut stream, &reply)?;
    }
}

fn no_session() -> Frame {
    Frame::Error {
        code: error_code::BAD_STATE,
        message: "no session: send Hello first".into(),
    }
}

type Admitted = ((u64, Arc<Mutex<TenantSession>>), u64);

/// Validates a `Hello` and admits (or re-attaches) the tenant.
fn admit(state: &ServerState, proto: u16, config: TenantConfig) -> Result<Admitted, (u16, String)> {
    if proto != PROTO_VERSION {
        return Err((
            error_code::BAD_VERSION,
            format!("protocol {proto} not supported (server speaks {PROTO_VERSION})"),
        ));
    }
    if config.tenant.is_empty() || config.tenant.len() > MAX_TENANT_NAME {
        return Err((error_code::BAD_FRAME, "invalid tenant name".into()));
    }
    if !policy_known(&config.policy) {
        return Err((
            error_code::BAD_FRAME,
            format!("unknown or unservable policy `{}`", config.policy),
        ));
    }
    if config.p == 0 || config.k < config.p || config.s < 2 {
        return Err((
            error_code::BAD_FRAME,
            format!(
                "invalid model: p={} k={} s={} (need p>0, k>=p, s>=2)",
                config.p, config.k, config.s
            ),
        ));
    }
    if config.shards == 0 {
        return Err((error_code::BAD_FRAME, "shards must be positive".into()));
    }
    let mut tenants = state.tenants.lock().expect("tenant table poisoned");
    if let Some(existing) = tenants.get(&config.tenant) {
        let session = Arc::clone(existing);
        let guard = session.lock().expect("tenant session poisoned");
        if *guard.config() != config {
            return Err((
                error_code::CONFIG_MISMATCH,
                format!("tenant `{}` exists with a different config", config.tenant),
            ));
        }
        let budget = guard.budget_left();
        drop(guard);
        let id = state.next_session.fetch_add(1, Ordering::SeqCst);
        return Ok(((id, session), budget));
    }
    if tenants.len() >= state.opts.max_tenants {
        return Err((
            error_code::TENANTS_FULL,
            format!("tenant table full ({} tenants)", state.opts.max_tenants),
        ));
    }
    let opts = TenantOpts {
        epoch_ticks: state.opts.epoch_ticks,
        max_retries: state.opts.max_retries,
        request_budget: state.opts.request_budget,
    };
    let budget = opts.request_budget;
    let session = Arc::new(Mutex::new(TenantSession::new(config.clone(), opts)));
    tenants.insert(config.tenant, Arc::clone(&session));
    state.admitted.fetch_add(1, Ordering::SeqCst);
    let id = state.next_session.fetch_add(1, Ordering::SeqCst);
    Ok(((id, session), budget))
}
