//! The `parapage serve` daemon: a TCP accept loop handing each connection
//! to a session thread that speaks the [`crate::protocol`] frame stream.
//!
//! Sessions are keyed by tenant name: a `Hello` either admits a new tenant
//! (subject to the `max_tenants` cap) or re-attaches to an existing one
//! (the declared configuration must match — this is what a client does
//! after reconnecting, and what lets several connections feed one tenant).
//! Each tenant's engine work runs under the per-batch [`Supervisor`] in
//! [`crate::tenant`], so a tenant's crash — injected via `Kill` or genuine
//! — is absorbed inside its own session and never takes down the process
//! or perturbs any other tenant's replies.
//!
//! Three resilience mechanisms harden the daemon against a hostile
//! network (see the `chaos --net` matrix):
//!
//! * **Read deadlines.** Every session socket carries
//!   [`ServeOpts::read_timeout`]. A timeout *mid-frame* is a slow-loris
//!   or dead peer — the server answers with a typed
//!   `Error { TIMED_OUT }` and closes. A timeout at a frame *boundary*
//!   is mere idleness — the connection closes quietly and the tenant's
//!   idle clock starts ticking.
//! * **Idle-tenant expiry.** A reaper thread retires tenants with no
//!   attached connection for longer than [`ServeOpts::idle_ttl`] into a
//!   digest-protected checkpoint blob
//!   ([`TenantSession::checkpoint`]). A later `Hello` for that tenant
//!   *restores* the session — same reply chain, same batch cursor, same
//!   remaining budget — so expiry is invisible on the wire.
//! * **Load shedding.** Beyond [`ServeOpts::max_conns`] live
//!   connections, the accept loop answers with a typed
//!   [`Frame::Busy`] carrying a retry-after hint and closes, instead of
//!   queueing work it cannot serve. Clients back off and retry; nothing
//!   is silently dropped.
//!
//! Backpressure is the transport itself: the protocol is strictly
//! request/reply per connection and frames are bounded by
//! [`crate::protocol::MAX_FRAME`], so a slow reader throttles only its own
//! TCP window while the server holds at most one in-flight batch per
//! connection thread.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{
    c2s_chain_seed, error_code, s2c_chain_seed, Frame, ServerStats, TenantConfig, WireError,
    WireState, MAX_FRAME, MAX_TENANT_NAME, PROTO_VERSION,
};
use crate::tenant::{policy_known, TenantCounters, TenantOpts, TenantSession};

/// Server-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOpts {
    /// Admission control: tenants admitted concurrently.
    pub max_tenants: usize,
    /// Admission control: cumulative page-request budget per tenant.
    pub request_budget: u64,
    /// WAL checkpoint cadence of tenant engine runs (engine events per
    /// supervisor epoch).
    pub epoch_ticks: u64,
    /// Crash budget per tenant batch.
    pub max_retries: u32,
    /// Per-session socket read deadline. Mid-frame expiry is answered
    /// with a typed `TIMED_OUT` error; boundary expiry closes quietly.
    /// `None` blocks forever (the pre-chaos behavior).
    pub read_timeout: Option<Duration>,
    /// Retire tenants with no attached connection for this long into a
    /// checkpoint blob that a later `Hello` restores. `None` disables
    /// expiry.
    pub idle_ttl: Option<Duration>,
    /// Live-connection cap; beyond it new connections are shed with a
    /// typed [`Frame::Busy`].
    pub max_conns: usize,
    /// The retry-after hint carried by shed notices, in milliseconds.
    pub busy_retry_ms: u32,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            max_tenants: 64,
            request_budget: u64::MAX,
            epoch_ticks: 8,
            max_retries: 8,
            read_timeout: Some(Duration::from_secs(30)),
            idle_ttl: None,
            max_conns: 1024,
            busy_retry_ms: 25,
        }
    }
}

/// One live tenant plus its attachment bookkeeping for idle expiry.
struct TenantEntry {
    session: Arc<Mutex<TenantSession>>,
    /// Connections currently attached via `Hello`.
    attached: usize,
    /// When `attached` last dropped to zero (meaningful only then).
    idle_since: Instant,
}

/// An expired tenant: its checkpoint blob plus the counters it had earned,
/// so `Stats` stays truthful while the session is parked.
struct RetiredTenant {
    blob: Vec<u8>,
    counters: TenantCounters,
}

/// Shared server state.
struct ServerState {
    opts: ServeOpts,
    addr: SocketAddr,
    tenants: Mutex<HashMap<String, TenantEntry>>,
    /// Tenants retired by idle expiry, keyed by name; a `Hello` restores
    /// them into `tenants`.
    retired: Mutex<HashMap<String, RetiredTenant>>,
    /// Clones of every live connection's stream, keyed by connection id,
    /// so shutdown can unblock handlers parked in a read. A handler
    /// removes its own entry on exit (the clone would otherwise hold the
    /// socket open past the handler's lifetime and the table would grow
    /// for as long as the daemon lives). The `shutting_down` flag is set
    /// and checked under this same lock — that is what closes the
    /// register-after-shutdown race (a connection is either drained here
    /// or observes the flag and never registers).
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    live_conns: AtomicUsize,
    admitted: AtomicU64,
    next_session: AtomicU64,
    expiries: AtomicU64,
    shed: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServerState {
    fn stats(&self) -> ServerStats {
        let tenants = self.tenants.lock().expect("tenant table poisoned");
        let mut s = ServerStats {
            tenants: self.admitted.load(Ordering::SeqCst),
            expiries: self.expiries.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            ..ServerStats::default()
        };
        let mut fold = |c: TenantCounters| {
            s.batches += c.batches;
            s.requests += c.requests;
            s.restarts += c.restarts;
            s.migrations += c.migrations;
            s.wal_records += c.wal_records;
            s.checkpoint_bytes += c.checkpoint_bytes;
        };
        for entry in tenants.values() {
            fold(
                entry
                    .session
                    .lock()
                    .expect("tenant session poisoned")
                    .counters(),
            );
        }
        drop(tenants);
        for retired in self
            .retired
            .lock()
            .expect("retired table poisoned")
            .values()
        {
            fold(retired.counters);
        }
        s
    }
}

/// A running server: its bound address and the accept thread.
pub struct ServerHandle {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the OS-assigned port
    /// when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Current server-wide operational counters (what `Stats` returns on
    /// the wire).
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Begins shutdown directly, without a wire round-trip.
    ///
    /// The wire `Shutdown` frame is admission-gated like any other
    /// connection, so a server at its connection cap sheds it with `Busy`;
    /// an in-process owner holding the handle can always shut down, which
    /// is what the chaos matrix and the load driver rely on.
    pub fn shutdown(&self) {
        begin_shutdown(&self.state);
    }

    /// Blocks until the accept loop exits (a client sent `Shutdown` or the
    /// handle's owner called [`ServerHandle::shutdown`]) and every session
    /// thread has drained; returns the final counters.
    pub fn join(mut self) -> ServerStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        self.state.stats()
    }
}

/// Binds `addr` and starts the accept loop on its own thread.
///
/// # Errors
/// Any bind failure, verbatim.
pub fn serve(addr: impl ToSocketAddrs, opts: ServeOpts) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        opts,
        addr,
        tenants: Mutex::new(HashMap::new()),
        retired: Mutex::new(HashMap::new()),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        live_conns: AtomicUsize::new(0),
        admitted: AtomicU64::new(0),
        next_session: AtomicU64::new(1),
        expiries: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        shutting_down: AtomicBool::new(false),
    });
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(listener, accept_state));
    let reaper = opts.idle_ttl.map(|ttl| {
        let reaper_state = Arc::clone(&state);
        std::thread::spawn(move || reaper_loop(reaper_state, ttl))
    });
    Ok(ServerHandle {
        state,
        accept: Some(accept),
        reaper,
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Admission-level load shedding: beyond the connection cap the
        // peer gets a typed Busy with a retry hint, never a silent drop
        // or an unbounded queue.
        if state.live_conns.load(Ordering::SeqCst) >= state.opts.max_conns {
            state.shed.fetch_add(1, Ordering::SeqCst);
            let mut stream = stream;
            let mut tx = WireState::new(s2c_chain_seed());
            let _ = tx.write_frame(
                &mut stream,
                &Frame::Busy {
                    retry_after_ms: state.opts.busy_retry_ms,
                },
            );
            let _ = stream.shutdown(std::net::Shutdown::Both);
            continue;
        }
        // Register under the conns lock, where `shutting_down` is also
        // set: a racing shutdown either drains this clone or we observe
        // the flag here and close instead of spawning a stranded handler.
        let conn_id = state.next_conn.fetch_add(1, Ordering::SeqCst);
        {
            let mut conns = state.conns.lock().expect("conn table poisoned");
            if state.shutting_down.load(Ordering::SeqCst) {
                drop(conns);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                break;
            }
            if let Ok(clone) = stream.try_clone() {
                conns.insert(conn_id, clone);
            }
        }
        let _ = stream.set_read_timeout(state.opts.read_timeout);
        state.live_conns.fetch_add(1, Ordering::SeqCst);
        let conn_state = Arc::clone(&state);
        sessions.push(std::thread::spawn(move || {
            // A connection thread owns its stream; any transport or
            // protocol failure ends only this session.
            let _ = handle_connection(stream, &conn_state);
            // Drop the registered clone too, so the socket actually
            // closes (the peer sees EOF) and the table stays bounded.
            conn_state
                .conns
                .lock()
                .expect("conn table poisoned")
                .remove(&conn_id);
            conn_state.live_conns.fetch_sub(1, Ordering::SeqCst);
        }));
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// Retires tenants that have had no attached connection for `ttl`,
/// checkpointing their session state so a later `Hello` restores rather
/// than restarts them.
fn reaper_loop(state: Arc<ServerState>, ttl: Duration) {
    let tick = (ttl / 4).clamp(Duration::from_millis(5), Duration::from_millis(50));
    while !state.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let mut tenants = state.tenants.lock().expect("tenant table poisoned");
        let expired: Vec<String> = tenants
            .iter()
            .filter(|(_, e)| e.attached == 0 && e.idle_since.elapsed() >= ttl)
            .map(|(name, _)| name.clone())
            .collect();
        if expired.is_empty() {
            continue;
        }
        let mut retired = state.retired.lock().expect("retired table poisoned");
        for name in expired {
            let Some(entry) = tenants.remove(&name) else {
                continue;
            };
            let session = entry.session.lock().expect("tenant session poisoned");
            retired.insert(
                name,
                RetiredTenant {
                    blob: session.checkpoint(),
                    counters: session.counters(),
                },
            );
            state.expiries.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Wakes the blocking `accept` so the loop observes the shutdown flag, and
/// closes every live connection so handlers parked in a read drain too —
/// a shutdown must not wait on clients that never hang up. The flag is
/// raised under the `conns` lock so no connection can register after the
/// drain (the register-after-shutdown race).
fn begin_shutdown(state: &ServerState) {
    {
        let mut conns = state.conns.lock().expect("conn table poisoned");
        state.shutting_down.store(true, Ordering::SeqCst);
        for (_, conn) in conns.drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
    let _ = TcpStream::connect(state.addr);
}

/// Notes that a connection detached from `name` (hang-up or re-`Hello`),
/// starting the idle clock when the last attachment drops.
fn detach(state: &ServerState, name: &str) {
    let mut tenants = state.tenants.lock().expect("tenant table poisoned");
    if let Some(entry) = tenants.get_mut(name) {
        entry.attached = entry.attached.saturating_sub(1);
        if entry.attached == 0 {
            entry.idle_since = Instant::now();
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) -> Result<(), WireError> {
    let mut rx = WireState::new(c2s_chain_seed());
    let mut tx = WireState::new(s2c_chain_seed());
    // The tenant this connection attached to via Hello.
    let mut attached: Option<(String, Arc<Mutex<TenantSession>>)> = None;

    let result = connection_loop(&mut stream, state, &mut rx, &mut tx, &mut attached);
    if let Some((name, _)) = attached {
        detach(state, &name);
    }
    result
}

fn connection_loop(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    rx: &mut WireState,
    tx: &mut WireState,
    attached: &mut Option<(String, Arc<Mutex<TenantSession>>)>,
) -> Result<(), WireError> {
    loop {
        let frame = match rx.read_frame(stream) {
            Ok(f) => f,
            Err(WireError::Closed) => return Ok(()),
            Err(WireError::TimedOut { mid_frame }) => {
                if mid_frame {
                    // Slow-loris or dead peer: the deadline expired with a
                    // frame partially delivered. Answer with the typed
                    // reason, then close — the receive chain is broken.
                    let _ = tx.write_frame(
                        stream,
                        &Frame::Error {
                            code: error_code::TIMED_OUT,
                            message: "read deadline expired mid-frame".into(),
                        },
                    );
                    return Err(WireError::TimedOut { mid_frame });
                }
                // Idle at a frame boundary: close quietly; the tenant's
                // idle clock (and eventual expiry) takes it from here.
                return Ok(());
            }
            Err(WireError::Codec(e)) => {
                // Malformed input: report the typed reason, then close —
                // the receive chain is broken, nothing after it can
                // verify.
                let _ = tx.write_frame(
                    stream,
                    &Frame::Error {
                        code: error_code::BAD_FRAME,
                        message: format!("{e}"),
                    },
                );
                return Err(WireError::Codec(e));
            }
            Err(e) => return Err(e),
        };
        let reply = match frame {
            Frame::Hello { proto, config } => match admit(state, proto, config) {
                Ok(admitted) => {
                    // Re-Hello detaches from the previous tenant first so
                    // attachment counts stay exact.
                    if let Some((old, _)) = attached.take() {
                        detach(state, &old);
                    }
                    let ack = Frame::HelloAck {
                        session: admitted.id,
                        max_frame: MAX_FRAME as u64,
                        budget_left: admitted.budget_left,
                        next_batch: admitted.next_batch,
                        reply_chain: admitted.reply_chain,
                    };
                    *attached = Some((admitted.name, admitted.session));
                    ack
                }
                Err((code, message)) => Frame::Error { code, message },
            },
            Frame::Batch { batch, seqs } => match &*attached {
                None => no_session(),
                Some((_, tenant)) => {
                    let mut t = tenant.lock().expect("tenant session poisoned");
                    match t.run_batch(batch, &seqs) {
                        Ok(done) => done,
                        Err((code, message)) => Frame::Error { code, message },
                    }
                }
            },
            Frame::Replay { batch } => match &*attached {
                None => no_session(),
                Some((_, tenant)) => {
                    let t = tenant.lock().expect("tenant session poisoned");
                    match t.replay(batch) {
                        Ok(done) => done,
                        Err((code, message)) => Frame::Error { code, message },
                    }
                }
            },
            Frame::Migrate { batch, at_tick } => match &*attached {
                None => no_session(),
                Some((_, tenant)) => Frame::MigrateAck {
                    pending: tenant
                        .lock()
                        .expect("tenant session poisoned")
                        .queue_migration(batch, at_tick),
                },
            },
            Frame::Kill { batch, at_tick } => match &*attached {
                None => no_session(),
                Some((_, tenant)) => Frame::KillAck {
                    pending: tenant
                        .lock()
                        .expect("tenant session poisoned")
                        .queue_kill(batch, at_tick),
                },
            },
            Frame::Stats => Frame::StatsReply {
                stats: state.stats(),
            },
            Frame::Goodbye => {
                tx.write_frame(stream, &Frame::GoodbyeAck)?;
                return Ok(());
            }
            Frame::Shutdown => {
                tx.write_frame(stream, &Frame::ShutdownAck)?;
                begin_shutdown(state);
                return Ok(());
            }
            // Server-to-client frames arriving at the server are a state
            // violation, not a codec one: the bytes were well-formed.
            _ => Frame::Error {
                code: error_code::BAD_STATE,
                message: "unexpected frame direction".into(),
            },
        };
        tx.write_frame(stream, &reply)?;
    }
}

fn no_session() -> Frame {
    Frame::Error {
        code: error_code::BAD_STATE,
        message: "no session: send Hello first".into(),
    }
}

/// What a successful `Hello` yields: the session, its id, and the resume
/// coordinates the `HelloAck` carries.
struct Admitted {
    id: u64,
    name: String,
    session: Arc<Mutex<TenantSession>>,
    budget_left: u64,
    next_batch: u64,
    reply_chain: u64,
}

/// Validates a `Hello` and admits, re-attaches, or restores the tenant.
fn admit(state: &ServerState, proto: u16, config: TenantConfig) -> Result<Admitted, (u16, String)> {
    if proto != PROTO_VERSION {
        return Err((
            error_code::BAD_VERSION,
            format!("protocol {proto} not supported (server speaks {PROTO_VERSION})"),
        ));
    }
    if config.tenant.is_empty() || config.tenant.len() > MAX_TENANT_NAME {
        return Err((error_code::BAD_FRAME, "invalid tenant name".into()));
    }
    if !policy_known(&config.policy) {
        return Err((
            error_code::BAD_FRAME,
            format!("unknown or unservable policy `{}`", config.policy),
        ));
    }
    if config.p == 0 || config.k < config.p || config.s < 2 {
        return Err((
            error_code::BAD_FRAME,
            format!(
                "invalid model: p={} k={} s={} (need p>0, k>=p, s>=2)",
                config.p, config.k, config.s
            ),
        ));
    }
    if config.shards == 0 {
        return Err((error_code::BAD_FRAME, "shards must be positive".into()));
    }
    let mut tenants = state.tenants.lock().expect("tenant table poisoned");
    if let Some(entry) = tenants.get_mut(&config.tenant) {
        let session = Arc::clone(&entry.session);
        let guard = session.lock().expect("tenant session poisoned");
        if *guard.config() != config {
            return Err((
                error_code::CONFIG_MISMATCH,
                format!("tenant `{}` exists with a different config", config.tenant),
            ));
        }
        let admitted = Admitted {
            id: state.next_session.fetch_add(1, Ordering::SeqCst),
            name: config.tenant.clone(),
            session: Arc::clone(&session),
            budget_left: guard.budget_left(),
            next_batch: guard.next_batch(),
            reply_chain: guard.chain(),
        };
        drop(guard);
        entry.attached += 1;
        return Ok(admitted);
    }
    let opts = TenantOpts {
        epoch_ticks: state.opts.epoch_ticks,
        max_retries: state.opts.max_retries,
        request_budget: state.opts.request_budget,
    };
    // An idle-expired tenant restores from its checkpoint blob: the
    // session continues — same chain, same cursor, same budget — so
    // expiry is invisible to a re-attaching client.
    let restored = {
        let mut retired = state.retired.lock().expect("retired table poisoned");
        match retired.remove(&config.tenant) {
            Some(parked) => match TenantSession::restore(&parked.blob, opts) {
                Ok(session) => {
                    if *session.config() != config {
                        retired.insert(config.tenant.clone(), parked);
                        return Err((
                            error_code::CONFIG_MISMATCH,
                            format!(
                                "tenant `{}` checkpointed with a different config",
                                config.tenant
                            ),
                        ));
                    }
                    Some(session)
                }
                Err(e) => {
                    return Err((
                        error_code::BAD_STATE,
                        format!("tenant `{}` checkpoint unusable: {e}", config.tenant),
                    ));
                }
            },
            None => None,
        }
    };
    let is_restore = restored.is_some();
    if !is_restore && tenants.len() >= state.opts.max_tenants {
        return Err((
            error_code::TENANTS_FULL,
            format!("tenant table full ({} tenants)", state.opts.max_tenants),
        ));
    }
    let session = restored.unwrap_or_else(|| TenantSession::new(config.clone(), opts));
    let admitted = Admitted {
        id: state.next_session.fetch_add(1, Ordering::SeqCst),
        name: config.tenant.clone(),
        session: Arc::new(Mutex::new(session)),
        budget_left: 0,
        next_batch: 0,
        reply_chain: 0,
    };
    let (budget_left, next_batch, reply_chain) = {
        let guard = admitted.session.lock().expect("tenant session poisoned");
        (guard.budget_left(), guard.next_batch(), guard.chain())
    };
    let admitted = Admitted {
        budget_left,
        next_batch,
        reply_chain,
        ..admitted
    };
    tenants.insert(
        config.tenant,
        TenantEntry {
            session: Arc::clone(&admitted.session),
            attached: 1,
            idle_since: Instant::now(),
        },
    );
    if !is_restore {
        state.admitted.fetch_add(1, Ordering::SeqCst);
    }
    Ok(admitted)
}
