//! The `parapage chaos --net` matrix: every transport fault kind × cut
//! point × tenant count, each cell checked byte-for-byte against a clean
//! run.
//!
//! Each cell boots a fresh server, drives the same deterministic workload
//! the clean baseline ran (same tenant names, so the reply-chain seeds
//! match), and injects one [`NetFaultPlan`] per tenant into the *first*
//! connection. Cut points are sized from the clean run's observed
//! per-tenant byte counts ([`NetCell::cut_offset`]), so a fraction of
//! `0.6` reliably lands inside the traffic — usually mid-frame. The bar,
//! per cell:
//!
//! * every tenant's reply stream is **byte-identical** to the clean run's
//!   (`Frame` equality over the full stream — chain digests included);
//! * **zero unrecovered errors** — the resilient client absorbed every
//!   fault;
//! * for severing faults (cuts, slow-loris), the client actually
//!   reconnected at least once — proof the fault bit.
//!
//! Two special cells extend the grid: **idle-expiry** retires a tenant to
//! its checkpoint blob via the server's idle TTL and requires a re-attach
//! to *continue* the reply chain byte-identically, and **shed** drives a
//! client through a connection-capped server and requires the typed
//! [`Frame::Busy`] path to absorb the overload.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use parapage::cache::fnv1a64_seeded;
use parapage::conform::{net_cells, NetCell, NetFaultPlan};

use crate::client::Client;
use crate::drive::DriveCfg;
use crate::protocol::Frame;
use crate::resilient::{ResilientClient, RetryCounters, RetryOpts};
use crate::server::{serve, ServeOpts};

/// Matrix tuning.
#[derive(Clone, Debug)]
pub struct NetChaosOpts {
    /// Base seed; every cell derives its fault schedule from it.
    pub seed: u64,
    /// Reduced grid (one cut fraction, one tenant count) for CI smoke.
    pub quick: bool,
    /// Batches per tenant per run.
    pub batches: u64,
    /// Total page requests per run (spread across tenants and batches).
    pub requests: u64,
    /// Only run cells whose label contains one of these (lower-cased)
    /// substrings; empty runs everything.
    pub filters: Vec<String>,
}

impl Default for NetChaosOpts {
    fn default() -> Self {
        NetChaosOpts {
            seed: 42,
            quick: false,
            batches: 3,
            requests: 3_000,
            filters: Vec::new(),
        }
    }
}

/// One cell's verdict.
#[derive(Clone, Debug)]
pub struct NetCellOutcome {
    /// Cell label (`kind/tN@frac`, `idle-expiry`, or `shed`).
    pub label: String,
    /// Whether the cell met the bar.
    pub passed: bool,
    /// Failure reason, or a short pass note.
    pub detail: String,
    /// Recovery work the clients performed.
    pub retry: RetryCounters,
}

/// The whole matrix's outcome.
#[derive(Clone, Debug, Default)]
pub struct NetChaosReport {
    /// Every cell run, in order.
    pub cells: Vec<NetCellOutcome>,
    /// Cells excluded by the label filter.
    pub skipped: usize,
}

impl NetChaosReport {
    /// `true` when every cell passed.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.passed)
    }

    /// Number of failed cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| !c.passed).count()
    }
}

/// The small, fast engine configuration every cell drives.
fn drive_cfg(addr: SocketAddr, tenants: usize, opts: &NetChaosOpts) -> DriveCfg {
    DriveCfg {
        addr,
        tenants,
        batches: opts.batches,
        requests: opts.requests,
        p: 2,
        k: 16,
        s: 8,
        policy: "det-par".into(),
        seed: opts.seed,
        shards: 2,
        shutdown: false,
        fault: None,
        fault_at: 0,
    }
}

/// Server options for matrix cells: a short read deadline (the trickle
/// cell's long stall must trip it) and no idle expiry.
fn cell_serve_opts() -> ServeOpts {
    ServeOpts {
        read_timeout: Some(Duration::from_millis(80)),
        ..ServeOpts::default()
    }
}

/// One tenant's observed run: its reply stream, recovery counters, and
/// clean wire byte counts (used to size later cut points).
struct TenantRun {
    replies: Vec<Frame>,
    retry: RetryCounters,
    sent: u64,
    received: u64,
    error: Option<String>,
}

/// Drives `cfg.tenants` resilient clients concurrently, tenant `t` using
/// `plans[t]` on its first connection.
fn run_group(cfg: &DriveCfg, plans: &[Option<NetFaultPlan>], seed: u64) -> Vec<TenantRun> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.tenants)
            .map(|t| {
                let plan = plans.get(t).copied().flatten();
                scope.spawn(move || {
                    let opts = RetryOpts {
                        seed: seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        ..RetryOpts::default()
                    };
                    let mut client = ResilientClient::new(cfg.addr, cfg.tenant_config(t), opts);
                    if let Some(plan) = plan {
                        client = client.with_faults(vec![plan]);
                    }
                    let mut run = TenantRun {
                        replies: Vec::new(),
                        retry: RetryCounters::default(),
                        sent: 0,
                        received: 0,
                        error: None,
                    };
                    for batch in 0..cfg.batches {
                        let seqs = cfg.workload(t, batch);
                        match client.run_batch(&seqs) {
                            Ok(reply) => run.replies.push(reply),
                            Err(e) => {
                                run.error = Some(format!("batch {batch}: {e}"));
                                break;
                            }
                        }
                    }
                    client.goodbye();
                    run.retry = client.counters();
                    (run.sent, run.received) = client.wire_bytes();
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    })
}

/// Boots a server, runs a clean baseline, and returns its per-tenant runs.
fn clean_baseline(tenants: usize, opts: &NetChaosOpts) -> Result<Vec<TenantRun>, String> {
    let handle =
        serve("127.0.0.1:0", cell_serve_opts()).map_err(|e| format!("clean baseline bind: {e}"))?;
    let cfg = drive_cfg(handle.addr(), tenants, opts);
    let runs = run_group(&cfg, &vec![None; tenants], opts.seed);
    // Shut down through the handle, not the wire: a wire `Shutdown` is
    // admission-gated, so a still-draining connection slot could shed it
    // (`Busy`) and strand the join.
    handle.shutdown();
    handle.join();
    for (t, run) in runs.iter().enumerate() {
        if let Some(e) = &run.error {
            return Err(format!("clean baseline tenant {t} failed: {e}"));
        }
    }
    Ok(runs)
}

/// Runs one fault cell against a fresh server and judges it against the
/// clean baseline.
fn run_cell(cell: &NetCell, clean: &[TenantRun], opts: &NetChaosOpts) -> NetCellOutcome {
    let mut out = NetCellOutcome {
        label: cell.label(),
        passed: false,
        detail: String::new(),
        retry: RetryCounters::default(),
    };
    let handle = match serve("127.0.0.1:0", cell_serve_opts()) {
        Ok(h) => h,
        Err(e) => {
            out.detail = format!("bind: {e}");
            return out;
        }
    };
    let cfg = drive_cfg(handle.addr(), cell.tenants, opts);
    let plans: Vec<Option<NetFaultPlan>> = (0..cell.tenants)
        .map(|t| {
            // Write-side faults cut against the clean run's sent bytes,
            // read-side faults against its received bytes, so the cut
            // lands inside the traffic it perturbs.
            let clean_bytes = if cell.kind.on_recv() {
                clean[t].received
            } else {
                clean[t].sent
            };
            let cell_seed = fnv1a64_seeded(opts.seed, cell.label().as_bytes()) ^ t as u64;
            Some(NetFaultPlan::new(
                cell.kind,
                cell_seed,
                0,
                cell.cut_offset(clean_bytes),
            ))
        })
        .collect();
    let runs = run_group(&cfg, &plans, opts.seed ^ 0xbeef);
    handle.shutdown();
    handle.join();

    let mut reconnects = 0u64;
    for (t, run) in runs.iter().enumerate() {
        out.retry.absorb(&run.retry);
        reconnects += run.retry.reconnects;
        if let Some(e) = &run.error {
            out.detail = format!("tenant {t} unrecovered: {e}");
            return out;
        }
        if run.replies != clean[t].replies {
            out.detail = format!(
                "tenant {t} reply stream diverged from clean run ({} vs {} replies)",
                run.replies.len(),
                clean[t].replies.len()
            );
            return out;
        }
    }
    if cell.kind.severs() && reconnects == 0 {
        out.detail = "severing fault produced no reconnects (cut never landed)".into();
        return out;
    }
    out.passed = true;
    out.detail = format!("recovered {} events", out.retry.recovered());
    out
}

/// The idle-expiry cell: a tenant goes idle past the TTL, is retired to
/// its checkpoint blob, and a re-attach must *continue* the session —
/// same reply chain, byte-identical `BatchDone`s — with at least one
/// expiry counted.
fn run_expiry_cell(opts: &NetChaosOpts) -> NetCellOutcome {
    let mut out = NetCellOutcome {
        label: "idle-expiry/t1".into(),
        passed: false,
        detail: String::new(),
        retry: RetryCounters::default(),
    };
    let fail = |out: &mut NetCellOutcome, d: String| {
        out.detail = d;
    };

    // Control: both batches over one unbroken session.
    let control = match clean_baseline(1, opts) {
        Ok(runs) => runs,
        Err(e) => {
            fail(&mut out, e);
            return out;
        }
    };
    if control[0].replies.len() < 2 {
        fail(&mut out, "control run produced fewer than 2 batches".into());
        return out;
    }

    let ttl = Duration::from_millis(30);
    let handle = match serve(
        "127.0.0.1:0",
        ServeOpts {
            idle_ttl: Some(ttl),
            ..cell_serve_opts()
        },
    ) {
        Ok(h) => h,
        Err(e) => {
            fail(&mut out, format!("bind: {e}"));
            return out;
        }
    };
    let cfg = drive_cfg(handle.addr(), 1, opts);
    let verdict = (|| -> Result<(), String> {
        // Batch 0 on a first connection, then detach.
        let mut c = Client::connect(cfg.addr).map_err(|e| format!("connect: {e}"))?;
        match c.hello(cfg.tenant_config(0)) {
            Ok(Frame::HelloAck { next_batch: 0, .. }) => {}
            other => return Err(format!("first hello: {other:?}")),
        }
        let first = c
            .call(&Frame::Batch {
                batch: 0,
                seqs: cfg.workload(0, 0),
            })
            .map_err(|e| format!("batch 0: {e}"))?;
        if first != control[0].replies[0] {
            return Err("batch 0 reply diverged from control".into());
        }
        let chain_after_0 = match first {
            Frame::BatchDone { chain, .. } => chain,
            ref other => return Err(format!("batch 0 reply: {other:?}")),
        };
        let _ = c.call(&Frame::Goodbye);
        drop(c);

        // Wait for the reaper to retire the tenant.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.stats().expiries == 0 {
            if Instant::now() >= deadline {
                return Err("tenant never expired (reaper idle?)".into());
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        // Re-attach: the restored session must continue, not restart.
        let mut c = Client::connect(cfg.addr).map_err(|e| format!("reconnect: {e}"))?;
        match c.hello(cfg.tenant_config(0)) {
            Ok(Frame::HelloAck {
                next_batch,
                reply_chain,
                ..
            }) => {
                if next_batch != 1 {
                    return Err(format!(
                        "restored session expects batch {next_batch}, not 1 — restarted?"
                    ));
                }
                if reply_chain != chain_after_0 {
                    return Err("restored reply chain does not continue batch 0's".into());
                }
            }
            other => return Err(format!("re-attach hello: {other:?}")),
        }
        let second = c
            .call(&Frame::Batch {
                batch: 1,
                seqs: cfg.workload(0, 1),
            })
            .map_err(|e| format!("batch 1: {e}"))?;
        if second != control[0].replies[1] {
            return Err("batch 1 reply diverged from control after expiry restore".into());
        }
        let _ = c.call(&Frame::Goodbye);
        Ok(())
    })();
    let expiries = handle.stats().expiries;
    handle.shutdown();
    handle.join();
    match verdict {
        Ok(()) => {
            out.passed = true;
            out.detail = format!("restored after {expiries} expiry(ies), chain continued");
        }
        Err(e) => fail(&mut out, e),
    }
    out
}

/// The shed cell: a connection-capped server answers overload with a
/// typed [`Frame::Busy`]; the resilient client absorbs the shed notices
/// and still gets the clean run's reply.
fn run_shed_cell(opts: &NetChaosOpts) -> NetCellOutcome {
    let mut out = NetCellOutcome {
        label: "shed/t1".into(),
        passed: false,
        detail: String::new(),
        retry: RetryCounters::default(),
    };

    let control = match clean_baseline(1, opts) {
        Ok(runs) => runs,
        Err(e) => {
            out.detail = e;
            return out;
        }
    };

    let handle = match serve(
        "127.0.0.1:0",
        ServeOpts {
            max_conns: 1,
            busy_retry_ms: 5,
            ..cell_serve_opts()
        },
    ) {
        Ok(h) => h,
        Err(e) => {
            out.detail = format!("bind: {e}");
            return out;
        }
    };
    let cfg = drive_cfg(handle.addr(), 1, opts);

    // Occupy the single connection slot, then release it mid-retry.
    let occupier = Client::connect(cfg.addr);
    let verdict = (|| -> Result<RetryCounters, String> {
        let mut occupier = occupier.map_err(|e| format!("occupier connect: {e}"))?;
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            let _ = occupier.call(&Frame::Goodbye);
        });
        let retry_opts = RetryOpts {
            max_attempts: 16,
            seed: opts.seed,
            ..RetryOpts::default()
        };
        let mut client = ResilientClient::new(cfg.addr, cfg.tenant_config(0), retry_opts);
        let mut replies = Vec::new();
        for batch in 0..cfg.batches {
            let seqs = cfg.workload(0, batch);
            let reply = client
                .run_batch(&seqs)
                .map_err(|e| format!("batch {batch} through shedding: {e}"))?;
            replies.push(reply);
        }
        client.goodbye();
        let _ = release.join();
        if replies != control[0].replies {
            return Err("reply stream diverged from clean run".into());
        }
        let counters = client.counters();
        if counters.sheds == 0 {
            return Err("client never observed a typed Busy (cap never hit)".into());
        }
        Ok(counters)
    })();
    let shed = handle.stats().shed;
    handle.shutdown();
    handle.join();
    match verdict {
        Ok(counters) => {
            out.retry = counters;
            if shed == 0 {
                out.detail = "server counted no shed connections".into();
            } else {
                out.passed = true;
                out.detail = format!("absorbed {} Busy notices ({} shed)", counters.sheds, shed);
            }
        }
        Err(e) => out.detail = e,
    }
    out
}

/// Runs the full matrix (or the `quick` reduction) and collects a report.
///
/// # Errors
/// Only infrastructure failures (a clean baseline that cannot run); cell
/// failures land in the report.
pub fn net_chaos_matrix(opts: &NetChaosOpts) -> Result<NetChaosReport, String> {
    let tenant_counts: &[usize] = if opts.quick { &[2] } else { &[1, 3] };
    let fracs: &[f64] = if opts.quick {
        &[0.6]
    } else {
        &[0.25, 0.6, 0.9]
    };
    let keep = |label: &str| {
        opts.filters.is_empty()
            || opts
                .filters
                .iter()
                .any(|f| label.to_ascii_lowercase().contains(f))
    };

    let mut report = NetChaosReport::default();
    for &tenants in tenant_counts {
        let cells: Vec<NetCell> = net_cells(&[tenants], fracs);
        if cells.iter().all(|c| !keep(&c.label())) {
            report.skipped += cells.len();
            continue;
        }
        let clean = clean_baseline(tenants, opts)?;
        for cell in &cells {
            if !keep(&cell.label()) {
                report.skipped += 1;
                continue;
            }
            report.cells.push(run_cell(cell, &clean, opts));
        }
    }
    if keep("idle-expiry") {
        report.cells.push(run_expiry_cell(opts));
    } else {
        report.skipped += 1;
    }
    if keep("shed") {
        report.cells.push(run_shed_cell(opts));
    } else {
        report.skipped += 1;
    }
    Ok(report)
}
