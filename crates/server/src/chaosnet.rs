//! [`FaultyTransport`]: a deterministic fault-injecting wrapper around a
//! session's TCP stream.
//!
//! The *decisions* — chunk sizes, pauses, the byte offset at which the
//! connection dies — come from a
//! [`NetFaultPlan`](parapage::conform::NetFaultPlan), which is a pure
//! function of `(seed, connection, byte offset)`; this wrapper merely acts
//! them out against a real socket. With no plan it is a passthrough, which
//! is why the regular [`Client`](crate::client::Client) can always carry
//! one: clean runs and chaos runs travel the same code path and the byte
//! counters are available either way (the `chaos --net` matrix sizes its
//! cut points from a clean run's observed traffic).
//!
//! Severing is modelled as a real half-open failure: the wrapper shuts the
//! socket down both ways and every subsequent operation fails with a
//! `ConnectionReset`-kind I/O error, exactly what a peer observes when a
//! connection dies mid-frame.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use parapage::conform::{NetFaultKind, NetFaultPlan};

/// A TCP stream with a deterministic fault schedule in front of it.
#[derive(Debug)]
pub struct FaultyTransport {
    inner: TcpStream,
    plan: Option<NetFaultPlan>,
    sent: u64,
    received: u64,
    severed: bool,
}

impl FaultyTransport {
    /// Wraps `stream`; `plan` is the fault schedule to act out (`None`
    /// for a clean passthrough that still counts bytes).
    pub fn new(stream: TcpStream, plan: Option<NetFaultPlan>) -> Self {
        FaultyTransport {
            inner: stream,
            plan,
            sent: 0,
            received: 0,
            severed: false,
        }
    }

    /// Bytes successfully handed to the socket so far.
    pub fn bytes_sent(&self) -> u64 {
        self.sent
    }

    /// Bytes successfully read off the socket so far.
    pub fn bytes_received(&self) -> u64 {
        self.received
    }

    /// Whether the plan has severed this connection.
    pub fn severed(&self) -> bool {
        self.severed
    }

    /// Sets (or clears) the inner socket's read timeout — the client's
    /// per-request deadline.
    ///
    /// # Errors
    /// Socket option failures, verbatim.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// Severs the connection: both directions shut down, all subsequent
    /// operations fail.
    fn sever(&mut self) -> std::io::Error {
        self.severed = true;
        let _ = self.inner.shutdown(std::net::Shutdown::Both);
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "connection severed by fault plan",
        )
    }
}

impl Write for FaultyTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.severed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "connection previously severed by fault plan",
            ));
        }
        let Some(plan) = self.plan else {
            let n = self.inner.write(buf)?;
            self.sent += n as u64;
            return Ok(n);
        };
        if plan.cuts_send(self.sent) {
            return Err(self.sever());
        }
        if let Some(pause) = plan.write_pause(self.sent) {
            std::thread::sleep(pause);
        }
        let mut limit = plan.write_chunk(self.sent).min(buf.len());
        // Land the fault exactly at its offset: stop this write short so
        // the next one starts at `cut_at` — severing (cut-send) or
        // stalling (trickle) mid-frame whenever the cut point is inside a
        // frame.
        if matches!(plan.kind, NetFaultKind::CutSend | NetFaultKind::Trickle)
            && self.sent < plan.cut_at
        {
            limit = limit.min((plan.cut_at - self.sent) as usize);
        }
        let n = self.inner.write(&buf[..limit.max(1).min(buf.len())])?;
        self.sent += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Read for FaultyTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.severed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "connection previously severed by fault plan",
            ));
        }
        let Some(plan) = self.plan else {
            let n = self.inner.read(buf)?;
            self.received += n as u64;
            return Ok(n);
        };
        if plan.cuts_recv(self.received) {
            return Err(self.sever());
        }
        if let Some(pause) = plan.read_pause(self.received) {
            std::thread::sleep(pause);
        }
        let mut limit = buf.len();
        if plan.kind == NetFaultKind::CutRecv {
            limit = limit.min((plan.cut_at - self.received) as usize);
        }
        let take = limit.max(1).min(buf.len());
        let n = self.inner.read(&mut buf[..take])?;
        self.received += n as u64;
        Ok(n)
    }
}
