//! Per-tenant session state: a supervised, WAL-checkpointed engine run per
//! batch, with deterministic replies across crashes, kills, and
//! migrations.
//!
//! Each [`Frame::Batch`](crate::protocol::Frame::Batch) is executed as one
//! run of the existing [`Supervisor`]: the policy is rebuilt from the
//! tenant's declared configuration and a batch-mixed seed, the caches are
//! the PR-8 [`ShardedLru`](parapage::cache::ShardedLru), and checkpoints go
//! to the tenant's in-memory [`MemStore`] as per-epoch WAL deltas. A
//! [`Frame::Kill`](crate::protocol::Frame::Kill) becomes a deterministic
//! [`CrashPlan`] tick — the supervisor absorbs the panic and resumes from
//! the WAL — and a [`Frame::Migrate`](crate::protocol::Frame::Migrate)
//! becomes an [`EpochControl::Migrate`] order at the first epoch boundary
//! at-or-after the requested tick, tearing the engine down and rebuilding
//! it through the `snapshot()/restore()` path mid-batch.
//!
//! Because supervised recovery is byte-exact (the chaos matrix pins this),
//! the tenant's [`Frame::BatchDone`](crate::protocol::Frame::BatchDone)
//! stream — including its running reply chain — is byte-identical whether
//! or not the engine crashed or migrated along the way. Operational
//! counters (restarts, migrations, checkpoint bytes) are deliberately kept
//! out of the reply chain and surface only through `Stats`.

use parapage::cache::{
    decode_framed, fnv1a64, fnv1a64_seeded, PageId, ShardedLru, SnapReader, SnapWriter,
};
use parapage::core::{
    BlackboxGreenPacker, BoxAllocator, DetPar, ModelParams, PropMissPartition, RandGreen, RandPar,
    StaticPartition, UcpPartition,
};
use parapage::sched::{
    CrashPlan, EngineOpts, EpochControl, FaultPlan, MemStore, NullSink, RunResult, Supervisor,
    SupervisorOpts,
};

use crate::protocol::{error_code, Frame, TenantConfig};

/// Chain seed of a tenant's `BatchDone` reply chain.
pub(crate) fn reply_chain_seed(tenant: &str) -> u64 {
    fnv1a64_seeded(fnv1a64(b"parapage-reply/1"), tenant.as_bytes())
}

/// Golden-ratio mix so consecutive batch seeds are far apart.
fn batch_seed(seed: u64, batch: u64) -> u64 {
    seed ^ (batch.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// `true` when `name` is a policy the server can host (the box policies
/// with checkpoint support; `shared-lru` runs outside the box engine and
/// is not servable).
pub fn policy_known(name: &str) -> bool {
    matches!(
        name,
        "det-par" | "rand-par" | "static" | "prop-miss" | "ucp" | "bb-green"
    )
}

/// Builds a fresh policy by name — deterministically identical per call,
/// as the supervisor's factory contract requires.
fn make_policy(name: &str, params: &ModelParams, seed: u64) -> Box<dyn BoxAllocator> {
    match name {
        "det-par" => Box::new(DetPar::new(params)),
        "rand-par" => Box::new(RandPar::new(params, seed)),
        "static" => Box::new(StaticPartition::new(params)),
        "prop-miss" => Box::new(PropMissPartition::new(params)),
        "ucp" => Box::new(UcpPartition::new(params)),
        "bb-green" => {
            let pagers: Vec<RandGreen> = (0..params.p as u64)
                .map(|i| RandGreen::new(params, seed ^ i))
                .collect();
            Box::new(BlackboxGreenPacker::new(params, pagers))
        }
        other => unreachable!("policy `{other}` must be validated at Hello"),
    }
}

/// Server-side tuning for tenant engine runs.
#[derive(Clone, Copy, Debug)]
pub struct TenantOpts {
    /// Engine events per supervisor epoch (= WAL checkpoint cadence).
    /// Engine runs are event-granular — one grant window serves many
    /// requests — so this is much smaller than a request count.
    pub epoch_ticks: u64,
    /// Crashes tolerated per batch before the batch fails terminally.
    pub max_retries: u32,
    /// Cumulative page-request budget across all of the tenant's batches.
    pub request_budget: u64,
}

impl Default for TenantOpts {
    fn default() -> Self {
        TenantOpts {
            epoch_ticks: 8,
            max_retries: 8,
            request_budget: u64::MAX,
        }
    }
}

/// A pending kill or migrate order: applies to one batch at one tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PendingAt {
    batch: u64,
    at_tick: u64,
}

/// One tenant's server-side session.
#[derive(Debug)]
pub struct TenantSession {
    config: TenantConfig,
    opts: TenantOpts,
    /// Requests this tenant may still submit.
    budget_left: u64,
    /// Next expected batch sequence number.
    next_batch: u64,
    /// Running reply-chain digest over every `BatchDone`.
    chain: u64,
    kills: Vec<PendingAt>,
    migrations_pending: Vec<PendingAt>,
    /// The last `BatchDone` served, cached verbatim for
    /// [`Frame::Replay`](crate::protocol::Frame::Replay). Because the
    /// protocol is strictly request/reply, at most one reply can ever be
    /// in doubt, so a one-frame cache suffices for byte-identical
    /// resumption.
    last_reply: Option<Frame>,
    // Operational counters (outside the reply chain).
    batches: u64,
    requests: u64,
    restarts: u64,
    migrations: u64,
    wal_records: u64,
    checkpoint_bytes: u64,
}

/// Aggregate operational counters of one session, for `Stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantCounters {
    /// Batches served.
    pub batches: u64,
    /// Requests served.
    pub requests: u64,
    /// Engine crashes absorbed.
    pub restarts: u64,
    /// Live migrations performed.
    pub migrations: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// Checkpoint bytes written.
    pub checkpoint_bytes: u64,
}

impl TenantSession {
    /// A fresh session for an admitted tenant.
    pub fn new(config: TenantConfig, opts: TenantOpts) -> Self {
        let chain = reply_chain_seed(&config.tenant);
        TenantSession {
            config,
            opts,
            budget_left: opts.request_budget,
            next_batch: 0,
            chain,
            kills: Vec::new(),
            migrations_pending: Vec::new(),
            last_reply: None,
            batches: 0,
            requests: 0,
            restarts: 0,
            migrations: 0,
            wal_records: 0,
            checkpoint_bytes: 0,
        }
    }

    /// The configuration this session was admitted with.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Remaining request budget.
    pub fn budget_left(&self) -> u64 {
        self.budget_left
    }

    /// The batch sequence number this session expects next — the resume
    /// coordinate a re-attaching client sees in `HelloAck`.
    pub fn next_batch(&self) -> u64 {
        self.next_batch
    }

    /// The reply-chain digest after the last acked batch.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Re-delivers the cached reply for `batch` verbatim — the recovery
    /// path for a client whose `BatchDone` was lost to a transport fault.
    ///
    /// # Errors
    /// `BAD_STATE` when `batch` is not the last served batch (only the
    /// most recent reply is cached; asking for anything else means the
    /// client's cursor has diverged beyond recovery).
    pub fn replay(&self, batch: u64) -> Result<Frame, (u16, String)> {
        match &self.last_reply {
            Some(frame @ Frame::BatchDone { batch: b, .. }) if *b == batch => Ok(frame.clone()),
            _ => Err((
                error_code::BAD_STATE,
                format!(
                    "no cached reply for batch {batch} (next expected batch is {})",
                    self.next_batch
                ),
            )),
        }
    }

    /// Operational counters for `Stats` aggregation.
    pub fn counters(&self) -> TenantCounters {
        TenantCounters {
            batches: self.batches,
            requests: self.requests,
            restarts: self.restarts,
            migrations: self.migrations,
            wal_records: self.wal_records,
            checkpoint_bytes: self.checkpoint_bytes,
        }
    }

    /// Queues a kill order; returns the pending count.
    pub fn queue_kill(&mut self, batch: u64, at_tick: u64) -> u32 {
        self.kills.push(PendingAt { batch, at_tick });
        self.kills.len() as u32
    }

    /// Queues a migration order; returns the pending count.
    pub fn queue_migration(&mut self, batch: u64, at_tick: u64) -> u32 {
        self.migrations_pending.push(PendingAt { batch, at_tick });
        self.migrations_pending.len() as u32
    }

    /// Runs one batch through the supervised engine and builds the
    /// deterministic `BatchDone` reply.
    ///
    /// # Errors
    /// `(code, message)` pairs matching [`error_code`]: a batch-sequence
    /// break or processor-count mismatch is `BAD_STATE`, an exhausted
    /// budget is `BUDGET_EXHAUSTED`, and a terminal engine failure is
    /// `ENGINE_FAILED`. The session survives all of them; only a served
    /// batch advances the sequence and the reply chain.
    pub fn run_batch(&mut self, batch: u64, seqs: &[Vec<PageId>]) -> Result<Frame, (u16, String)> {
        if batch != self.next_batch {
            return Err((
                error_code::BAD_STATE,
                format!("batch {batch} out of order (expected {})", self.next_batch),
            ));
        }
        if seqs.len() != self.config.p {
            return Err((
                error_code::BAD_STATE,
                format!(
                    "batch carries {} sequences for a p={} tenant",
                    seqs.len(),
                    self.config.p
                ),
            ));
        }
        let batch_requests: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        if batch_requests > self.budget_left {
            return Err((
                error_code::BUDGET_EXHAUSTED,
                format!(
                    "batch of {batch_requests} requests exceeds remaining budget {}",
                    self.budget_left
                ),
            ));
        }

        let params = ModelParams::new(self.config.p, self.config.k, self.config.s);
        let engine_opts = EngineOpts::default();
        let seed = batch_seed(self.config.seed, batch);
        let policy_name = self.config.policy.clone();
        let shards = self.config.shards;

        // This batch's injected crashes and pending migration ticks.
        let kill_ticks: Vec<u64> = self
            .kills
            .iter()
            .filter(|k| k.batch == batch)
            .map(|k| k.at_tick)
            .collect();
        self.kills.retain(|k| k.batch != batch);
        let mut mig_ticks: Vec<u64> = self
            .migrations_pending
            .iter()
            .filter(|m| m.batch == batch)
            .map(|m| m.at_tick)
            .collect();
        mig_ticks.sort_unstable();
        self.migrations_pending.retain(|m| m.batch != batch);

        let sup = Supervisor::new(SupervisorOpts {
            epoch_ticks: self.opts.epoch_ticks,
            max_retries: self.opts.max_retries,
            backoff_base: std::time::Duration::ZERO,
            silence_panics: true,
            ..SupervisorOpts::default()
        });
        // A fresh store per batch: batches are independent runs, and the
        // WAL only needs to survive crashes *within* one.
        let mut store = MemStore::new();
        let mut next_mig = 0usize;
        let report = sup
            .run_controlled(
                seqs,
                &params,
                &engine_opts,
                &FaultPlan::none(),
                &CrashPlan::at_ticks(kill_ticks),
                || make_policy(&policy_name, &params, seed),
                |_| ShardedLru::with_shards(0, shards),
                &mut NullSink,
                &mut store,
                |status| {
                    // Consume at most one pending migration per boundary,
                    // once the run has reached its tick threshold.
                    if next_mig < mig_ticks.len() && status.ticks >= mig_ticks[next_mig] {
                        next_mig += 1;
                        EpochControl::Migrate
                    } else {
                        EpochControl::Continue
                    }
                },
            )
            .map_err(|e| (error_code::ENGINE_FAILED, format!("batch {batch}: {e}")))?;

        self.next_batch += 1;
        self.budget_left -= batch_requests;
        self.batches += 1;
        self.requests += batch_requests;
        self.restarts += u64::from(report.crashes);
        self.migrations += report.migrations;
        self.wal_records += report.wal_records;
        self.checkpoint_bytes += report.checkpoint_bytes;

        let reply = self.reply_for(batch, &report.result);
        self.last_reply = Some(reply.clone());
        Ok(reply)
    }

    /// Serializes the session into a digest-protected checkpoint blob —
    /// everything a future [`TenantSession::restore`] needs to continue
    /// the reply chain byte-identically: config, budget, batch cursor,
    /// chain digest, the cached last reply, and the operational counters.
    /// This is what survives idle-tenant expiry.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_bytes(self.config.tenant.as_bytes());
        w.put_usize(self.config.p);
        w.put_usize(self.config.k);
        w.put_u64(self.config.s);
        w.put_bytes(self.config.policy.as_bytes());
        w.put_u64(self.config.seed);
        w.put_usize(self.config.shards);
        w.put_u64(self.budget_left);
        w.put_u64(self.next_batch);
        w.put_u64(self.chain);
        match &self.last_reply {
            Some(frame) => w.put_bytes(&frame.encode_payload()),
            None => w.put_bytes(&[]),
        }
        w.put_u64(self.batches);
        w.put_u64(self.requests);
        w.put_u64(self.restarts);
        w.put_u64(self.migrations);
        w.put_u64(self.wal_records);
        w.put_u64(self.checkpoint_bytes);
        w.into_framed()
    }

    /// Rebuilds a session from a [`TenantSession::checkpoint`] blob. The
    /// restored session *continues* — same chain, same batch cursor, same
    /// remaining budget — rather than restarting, which is what makes
    /// re-attach after idle expiry indistinguishable from an unbroken
    /// session on the wire.
    ///
    /// # Errors
    /// A rendered decode error on any corruption (the blob is framed and
    /// digest-checked end to end).
    pub fn restore(blob: &[u8], opts: TenantOpts) -> Result<TenantSession, String> {
        let payload = decode_framed(blob).map_err(|e| format!("session blob: {e}"))?;
        let mut r = SnapReader::new(payload);
        let get_string = |r: &mut SnapReader<'_>, what: &str| -> Result<String, String> {
            let bytes = r.get_bytes().map_err(|e| format!("{what}: {e}"))?;
            String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what}: invalid utf-8"))
        };
        let tenant = get_string(&mut r, "tenant name")?;
        let p = r.get_usize().map_err(|e| format!("p: {e}"))?;
        let k = r.get_usize().map_err(|e| format!("k: {e}"))?;
        let s = r.get_u64().map_err(|e| format!("s: {e}"))?;
        let policy = get_string(&mut r, "policy name")?;
        let seed = r.get_u64().map_err(|e| format!("seed: {e}"))?;
        let shards = r.get_usize().map_err(|e| format!("shards: {e}"))?;
        let budget_left = r.get_u64().map_err(|e| format!("budget: {e}"))?;
        let next_batch = r.get_u64().map_err(|e| format!("next_batch: {e}"))?;
        let chain = r.get_u64().map_err(|e| format!("chain: {e}"))?;
        let reply_bytes = r.get_bytes().map_err(|e| format!("last reply: {e}"))?;
        let last_reply = if reply_bytes.is_empty() {
            None
        } else {
            Some(Frame::decode_payload(reply_bytes).map_err(|e| format!("last reply: {e}"))?)
        };
        let batches = r.get_u64().map_err(|e| format!("batches: {e}"))?;
        let requests = r.get_u64().map_err(|e| format!("requests: {e}"))?;
        let restarts = r.get_u64().map_err(|e| format!("restarts: {e}"))?;
        let migrations = r.get_u64().map_err(|e| format!("migrations: {e}"))?;
        let wal_records = r.get_u64().map_err(|e| format!("wal_records: {e}"))?;
        let checkpoint_bytes = r.get_u64().map_err(|e| format!("checkpoint_bytes: {e}"))?;
        if !r.is_exhausted() {
            return Err(format!("session blob: {} trailing bytes", r.remaining()));
        }
        Ok(TenantSession {
            config: TenantConfig {
                tenant,
                p,
                k,
                s,
                policy,
                seed,
                shards,
            },
            opts,
            budget_left,
            next_batch,
            chain,
            kills: Vec::new(),
            migrations_pending: Vec::new(),
            last_reply,
            batches,
            requests,
            restarts,
            migrations,
            wal_records,
            checkpoint_bytes,
        })
    }

    /// Builds the deterministic `BatchDone` for a result, folding it into
    /// the reply chain.
    fn reply_for(&mut self, batch: u64, result: &RunResult) -> Frame {
        let bytes = canonical_result_bytes(batch, result);
        let digest = fnv1a64(&bytes);
        self.chain = fnv1a64_seeded(self.chain, &bytes);
        Frame::BatchDone {
            batch,
            makespan: result.makespan,
            hits: result.stats.hits,
            misses: result.stats.misses,
            grants: result.grants_issued,
            digest,
            chain: self.chain,
        }
    }
}

/// Canonical byte encoding of a batch outcome — every deterministic scalar
/// of the [`RunResult`], so any divergence (completions included) flips
/// the reply digest and chain.
fn canonical_result_bytes(batch: u64, r: &RunResult) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u64(batch);
    w.put_u64(r.makespan);
    w.put_len(r.completions.len());
    for &c in &r.completions {
        w.put_u64(c);
    }
    w.put_u64(r.stats.hits);
    w.put_u64(r.stats.misses);
    w.put_u128(r.memory_integral);
    w.put_usize(r.peak_memory);
    w.put_u64(r.grants_issued);
    w.put_u64(r.faults_injected);
    w.put_u64(r.degraded_grants);
    w.into_bytes()
}
