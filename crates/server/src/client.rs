//! A blocking protocol client: one TCP connection speaking the framed
//! request/reply stream, used by the load driver and the protocol tests.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    c2s_chain_seed, s2c_chain_seed, Frame, TenantConfig, WireError, WireState, PROTO_VERSION,
};

/// One connection to a `parapage serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    send: WireState,
    recv: WireState,
}

impl Client {
    /// Connects without opening a session (send `Hello` via [`Client::hello`]).
    ///
    /// # Errors
    /// Connection failures, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            send: WireState::new(c2s_chain_seed()),
            recv: WireState::new(s2c_chain_seed()),
        })
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// Transport or encode failures as [`WireError`].
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        self.send.write_frame(&mut self.stream, frame)
    }

    /// Receives one frame.
    ///
    /// # Errors
    /// Transport, framing, or decode failures as [`WireError`].
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        self.recv.read_frame(&mut self.stream)
    }

    /// Sends a frame and returns the server's reply (the protocol is
    /// strictly request/reply per connection).
    ///
    /// # Errors
    /// Transport, framing, or decode failures as [`WireError`].
    pub fn call(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        self.send(frame)?;
        self.recv()
    }

    /// Opens (or re-attaches to) a tenant session; returns the server's
    /// reply — `HelloAck` on admission, `Error` on rejection.
    ///
    /// # Errors
    /// Transport, framing, or decode failures as [`WireError`].
    pub fn hello(&mut self, config: TenantConfig) -> Result<Frame, WireError> {
        self.call(&Frame::Hello {
            proto: PROTO_VERSION,
            config,
        })
    }
}
