//! A blocking protocol client: one TCP connection speaking the framed
//! request/reply stream, used by the load driver and the protocol tests.
//!
//! Every client reads and writes through a
//! [`FaultyTransport`](crate::chaosnet::FaultyTransport) — a passthrough
//! unless a deterministic fault plan is attached — so clean traffic and
//! chaos traffic share one code path and the wire byte counters are always
//! available. A per-request read deadline can be set with
//! [`Client::set_deadline`]; expiry surfaces as the typed
//! [`WireError::TimedOut`]. For automatic reconnect, re-attach, and retry
//! on top of this single-connection client, see
//! [`ResilientClient`](crate::resilient::ResilientClient).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use parapage::conform::NetFaultPlan;

use crate::chaosnet::FaultyTransport;
use crate::protocol::{
    c2s_chain_seed, s2c_chain_seed, Frame, TenantConfig, WireError, WireState, PROTO_VERSION,
};

/// One connection to a `parapage serve` daemon.
#[derive(Debug)]
pub struct Client {
    stream: FaultyTransport,
    send: WireState,
    recv: WireState,
}

impl Client {
    /// Connects without opening a session (send `Hello` via [`Client::hello`]).
    ///
    /// # Errors
    /// Connection failures, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, None, None)
    }

    /// Connects with an optional deterministic fault plan on the transport
    /// and an optional per-request read deadline.
    ///
    /// # Errors
    /// Connection failures, verbatim.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        plan: Option<NetFaultPlan>,
        deadline: Option<Duration>,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        Ok(Client {
            stream: FaultyTransport::new(stream, plan),
            send: WireState::new(c2s_chain_seed()),
            recv: WireState::new(s2c_chain_seed()),
        })
    }

    /// Sets (or clears) the per-request read deadline; an expired deadline
    /// surfaces as [`WireError::TimedOut`] from [`Client::recv`].
    ///
    /// # Errors
    /// Socket option failures, verbatim.
    pub fn set_deadline(&self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(deadline)
    }

    /// The transport underneath, with its wire byte counters.
    pub fn transport(&self) -> &FaultyTransport {
        &self.stream
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// Transport or encode failures as [`WireError`].
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        self.send.write_frame(&mut self.stream, frame)
    }

    /// Receives one frame.
    ///
    /// # Errors
    /// Transport, framing, or decode failures as [`WireError`].
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        self.recv.read_frame(&mut self.stream)
    }

    /// Sends a frame and returns the server's reply (the protocol is
    /// strictly request/reply per connection).
    ///
    /// # Errors
    /// Transport, framing, or decode failures as [`WireError`].
    pub fn call(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        self.send(frame)?;
        self.recv()
    }

    /// Opens (or re-attaches to) a tenant session; returns the server's
    /// reply — `HelloAck` on admission, `Busy` under load shedding,
    /// `Error` on rejection.
    ///
    /// # Errors
    /// Transport, framing, or decode failures as [`WireError`].
    pub fn hello(&mut self, config: TenantConfig) -> Result<Frame, WireError> {
        self.call(&Frame::Hello {
            proto: PROTO_VERSION,
            config,
        })
    }
}
