//! The `parapage drive` load driver: replays deterministic page-request
//! batches against a running server from many concurrent tenant threads and
//! reports throughput, per-batch latency percentiles, and every reply it
//! received.
//!
//! Workloads are a pure function of `(base seed, tenant index, batch)`, so
//! two drives with the same configuration submit byte-identical requests —
//! which is what lets the crash-isolation and migration tests compare full
//! reply streams across runs.
//!
//! Every tenant drives through a
//! [`ResilientClient`](crate::resilient::ResilientClient): transport
//! faults (optionally injected with [`DriveCfg::fault`]) are absorbed by
//! reconnect/re-attach/replay, the recovery work is tallied in
//! [`DriveReport::retry`], and only *unrecovered* failures count as
//! [`DriveReport::protocol_errors`] — the number `--expect-clean` gates
//! on.

use std::net::SocketAddr;
use std::time::Instant;

use parapage::cache::PageId;
use parapage::conform::{NetFaultKind, NetFaultPlan};
use parapage::workloads::{build_workload, SeqSpec};

use crate::client::Client;
use crate::protocol::{Frame, ServerStats, TenantConfig};
use crate::resilient::{ResilientClient, RetryCounters, RetryOpts};

/// What to replay and against whom.
#[derive(Clone, Debug)]
pub struct DriveCfg {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent tenants (each gets its own connection and thread).
    pub tenants: usize,
    /// Batches per tenant.
    pub batches: u64,
    /// Total page requests to spread across all tenants and batches
    /// (rounded up so every sequence has at least one request).
    pub requests: u64,
    /// Processors per tenant engine.
    pub p: usize,
    /// Cache capacity `k`.
    pub k: usize,
    /// Miss penalty `s`.
    pub s: u64,
    /// Policy name (must be servable; see
    /// [`crate::tenant::policy_known`]).
    pub policy: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Shard count of each tenant's cache.
    pub shards: usize,
    /// Send `Shutdown` after the drive completes.
    pub shutdown: bool,
    /// Inject this transport fault into every tenant's *first* connection
    /// (`None` drives clean). The resilient client is expected to absorb
    /// it; anything unrecovered shows up in `protocol_errors`.
    pub fault: Option<NetFaultKind>,
    /// Byte offset at which an injected fault takes effect.
    pub fault_at: u64,
}

impl Default for DriveCfg {
    fn default() -> Self {
        DriveCfg {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            tenants: 4,
            batches: 4,
            requests: 100_000,
            p: 4,
            k: 64,
            s: 16,
            policy: "det-par".into(),
            seed: 42,
            shards: 4,
            shutdown: false,
            fault: None,
            fault_at: 4096,
        }
    }
}

impl DriveCfg {
    /// The tenant name of driver tenant `t`.
    pub fn tenant_name(&self, t: usize) -> String {
        format!("drive-{t}")
    }

    /// The [`TenantConfig`] driver tenant `t` declares in its `Hello`.
    pub fn tenant_config(&self, t: usize) -> TenantConfig {
        TenantConfig {
            tenant: self.tenant_name(t),
            p: self.p,
            k: self.k,
            s: self.s,
            policy: self.policy.clone(),
            seed: self.seed ^ (t as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
            shards: self.shards,
        }
    }

    /// Requests per processor sequence per batch (≥ 1).
    pub fn seq_len(&self) -> usize {
        let cells = (self.tenants as u64)
            .saturating_mul(self.batches)
            .saturating_mul(self.p as u64)
            .max(1);
        usize::try_from(self.requests.div_ceil(cells))
            .unwrap_or(usize::MAX)
            .max(1)
    }

    /// The deterministic request sequences driver tenant `t` submits as
    /// batch `batch` — a mixed locality family, like the CLI's default
    /// workload, seeded per `(tenant, batch)`.
    pub fn workload(&self, t: usize, batch: u64) -> Vec<Vec<PageId>> {
        let len = self.seq_len();
        let k = self.k;
        let specs: Vec<SeqSpec> = (0..self.p)
            .map(|x| match x % 3 {
                0 => SeqSpec::Cyclic {
                    width: (k / 8).max(2),
                    len,
                },
                1 => SeqSpec::Zipf {
                    universe: (k / 2).max(4),
                    theta: 0.9,
                    len,
                },
                _ => SeqSpec::Uniform {
                    universe: (2 * k / self.p.max(1)).max(2),
                    len,
                },
            })
            .collect();
        let seed = self
            .tenant_config(t)
            .seed
            .wrapping_add(batch.wrapping_mul(0x2545_f491_4f6c_dd1d));
        build_workload(&specs, seed).seqs().to_vec()
    }
}

/// Latency percentiles over per-batch round trips, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyUs {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst batch.
    pub max: u64,
}

/// What one drive run observed.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Page requests actually submitted.
    pub requests: u64,
    /// Batches acknowledged with `BatchDone`.
    pub batches: u64,
    /// Wall-clock seconds of the replay phase.
    pub elapsed_s: f64,
    /// Requests per second over the replay phase.
    pub throughput: f64,
    /// Per-batch round-trip latency percentiles.
    pub latency: LatencyUs,
    /// *Unrecovered* failures: typed client errors after the retry budget,
    /// plus `Stats`/`Shutdown` call failures. Zero on a healthy run —
    /// including runs whose transport faults were absorbed by retries.
    pub protocol_errors: u64,
    /// Recovery work the resilient clients performed: reconnects,
    /// retries, replays, shed notices absorbed, deadline expiries.
    pub retry: RetryCounters,
    /// Every reply frame each tenant received, in order — the stream the
    /// equivalence tests compare byte-for-byte (via `Frame`'s `Eq`).
    pub replies: Vec<Vec<Frame>>,
    /// Server-wide counters fetched after the replay (`None` if the
    /// `Stats` call itself failed).
    pub stats: Option<ServerStats>,
}

impl DriveReport {
    /// One-line human summary (the top-line number `parapage drive`
    /// prints).
    pub fn summary_line(&self) -> String {
        format!(
            "{} requests in {} batches over {:.2}s = {:.0} req/s | \
             latency p50 {}us p90 {}us p99 {}us max {}us | {} protocol errors",
            self.requests,
            self.batches,
            self.elapsed_s,
            self.throughput,
            self.latency.p50,
            self.latency.p90,
            self.latency.p99,
            self.latency.max,
            self.protocol_errors
        )
    }

    /// One-line recovery summary (reconnects, retries, replays, sheds,
    /// timeouts — the work the resilient clients did to keep
    /// `protocol_errors` at zero).
    pub fn retry_line(&self) -> String {
        format!(
            "recovered: {} reconnects, {} retries, {} replays, {} sheds, {} timeouts",
            self.retry.reconnects,
            self.retry.retries,
            self.retry.replays,
            self.retry.sheds,
            self.retry.timeouts
        )
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One tenant thread's tally.
struct TenantOutcome {
    requests: u64,
    batches: u64,
    latencies_us: Vec<u64>,
    errors: u64,
    replies: Vec<Frame>,
    retry: RetryCounters,
}

fn drive_tenant(cfg: &DriveCfg, t: usize) -> TenantOutcome {
    let mut out = TenantOutcome {
        requests: 0,
        batches: 0,
        latencies_us: Vec::new(),
        errors: 0,
        replies: Vec::new(),
        retry: RetryCounters::default(),
    };
    let opts = RetryOpts {
        seed: cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ..RetryOpts::default()
    };
    let mut client = ResilientClient::new(cfg.addr, cfg.tenant_config(t), opts);
    if let Some(kind) = cfg.fault {
        client = client.with_faults(vec![NetFaultPlan::new(
            kind,
            cfg.seed ^ t as u64,
            0,
            cfg.fault_at,
        )]);
    }
    for batch in 0..cfg.batches {
        let seqs = cfg.workload(t, batch);
        let submitted: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let start = Instant::now();
        match client.run_batch(&seqs) {
            Ok(reply) => {
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                out.latencies_us.push(us);
                out.requests += submitted;
                out.batches += 1;
                out.replies.push(reply);
            }
            Err(_) => {
                // Typed and final (budget exhausted, rejected, or
                // divergence): an unrecovered error ends this tenant.
                out.errors += 1;
                break;
            }
        }
    }
    client.goodbye();
    out.retry = client.counters();
    out
}

/// Replays the configured load and gathers the report.
///
/// Tenant threads run concurrently, one connection each; the final `Stats`
/// fetch (and optional `Shutdown`) uses its own connection once the replay
/// has drained.
pub fn drive(cfg: &DriveCfg) -> DriveReport {
    let started = Instant::now();
    let outcomes: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.tenants)
            .map(|t| scope.spawn(move || drive_tenant(cfg, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant driver thread panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut requests = 0u64;
    let mut batches = 0u64;
    let mut protocol_errors = 0u64;
    let mut retry = RetryCounters::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut replies = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        requests += o.requests;
        batches += o.batches;
        protocol_errors += o.errors;
        retry.absorb(&o.retry);
        latencies.extend_from_slice(&o.latencies_us);
        replies.push(o.replies);
    }
    latencies.sort_unstable();

    let mut stats = None;
    if let Ok(mut c) = Client::connect(cfg.addr) {
        match c.call(&Frame::Stats) {
            Ok(Frame::StatsReply { stats: s }) => stats = Some(s),
            Ok(_) | Err(_) => protocol_errors += 1,
        }
        if cfg.shutdown {
            match c.call(&Frame::Shutdown) {
                Ok(Frame::ShutdownAck) => {}
                Ok(_) | Err(_) => protocol_errors += 1,
            }
        }
    } else {
        protocol_errors += 1;
    }

    DriveReport {
        requests,
        batches,
        elapsed_s,
        throughput: if elapsed_s > 0.0 {
            requests as f64 / elapsed_s
        } else {
            0.0
        },
        latency: LatencyUs {
            p50: percentile(&latencies, 0.50),
            p90: percentile(&latencies, 0.90),
            p99: percentile(&latencies, 0.99),
            max: latencies.last().copied().unwrap_or(0),
        },
        protocol_errors,
        retry,
        replies,
        stats,
    }
}
