//! Long-lived multi-tenant paging server for the parallel-paging engine.
//!
//! This crate turns the single-shot simulation engine into a service:
//!
//! - [`protocol`] — the length-prefixed, digest-chained wire format
//!   (`b"ppwf"` frames in the mould of the WAL checkpoint log), with
//!   allocation-disciplined decoding that maps every malformed input onto
//!   a typed error.
//! - [`tenant`] — per-tenant sessions: each batch runs under the existing
//!   [`Supervisor`](parapage::sched::Supervisor) with per-epoch WAL
//!   checkpoints, so injected kills are absorbed and live migration rides
//!   the `snapshot()/restore()` path — with byte-identical replies either
//!   way.
//! - [`server`] — the `parapage serve` daemon: TCP accept loop, admission
//!   control (tenant cap, request budgets), per-connection session
//!   threads.
//! - [`client`] — a blocking protocol client.
//! - [`drive`] — the `parapage drive` load driver: concurrent tenants,
//!   deterministic workloads, throughput and latency percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod drive;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use client::Client;
pub use drive::{drive, DriveCfg, DriveReport, LatencyUs};
pub use protocol::{
    error_code, Frame, ServerStats, TenantConfig, WireError, WireState, MAX_FRAME, PROTO_VERSION,
};
pub use server::{serve, ServeOpts, ServerHandle};
pub use tenant::{policy_known, TenantOpts, TenantSession};
