//! Long-lived multi-tenant paging server for the parallel-paging engine.
//!
//! This crate turns the single-shot simulation engine into a service:
//!
//! - [`protocol`] — the length-prefixed, digest-chained wire format
//!   (`b"ppwf"` frames in the mould of the WAL checkpoint log), with
//!   allocation-disciplined decoding that maps every malformed input onto
//!   a typed error.
//! - [`tenant`] — per-tenant sessions: each batch runs under the existing
//!   [`Supervisor`](parapage::sched::Supervisor) with per-epoch WAL
//!   checkpoints, so injected kills are absorbed and live migration rides
//!   the `snapshot()/restore()` path — with byte-identical replies either
//!   way.
//! - [`server`] — the `parapage serve` daemon: TCP accept loop, admission
//!   control (tenant cap, request budgets, connection-cap load shedding),
//!   per-connection session threads with read deadlines, and idle-tenant
//!   expiry to checkpointed state.
//! - [`client`] — a blocking protocol client over a [`chaosnet`]
//!   transport.
//! - [`chaosnet`] — [`FaultyTransport`]: deterministic transport fault
//!   injection (partial writes, stalls, mid-frame cuts, slow-loris),
//!   decided by the pure [`parapage::conform::NetFaultPlan`] model.
//! - [`resilient`] — [`ResilientClient`]: reconnect with jittered capped
//!   backoff, session re-attach, and reply replay — byte-identical reply
//!   streams through transport chaos, or a typed error.
//! - [`netchaos`] — the `parapage chaos --net` matrix: every fault kind ×
//!   cut point × tenant count, checked byte-for-byte against a clean run.
//! - [`drive`] — the `parapage drive` load driver: concurrent tenants,
//!   deterministic workloads, throughput and latency percentiles, and
//!   retry/reconnect/shed accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaosnet;
pub mod client;
pub mod drive;
pub mod netchaos;
pub mod protocol;
pub mod resilient;
pub mod server;
pub mod tenant;

pub use chaosnet::FaultyTransport;
pub use client::Client;
pub use drive::{drive, DriveCfg, DriveReport, LatencyUs};
pub use netchaos::{net_chaos_matrix, NetChaosOpts, NetChaosReport};
pub use protocol::{
    error_code, Frame, ServerStats, TenantConfig, WireError, WireState, MAX_FRAME, PROTO_VERSION,
};
pub use resilient::{ClientError, ResilientClient, RetryCounters, RetryOpts};
pub use server::{serve, ServeOpts, ServerHandle};
pub use tenant::{policy_known, TenantOpts, TenantSession};
