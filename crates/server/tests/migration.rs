//! Live migration equivalence: a tenant is migrated onto a fresh engine —
//! via the supervisor's snapshot/restore path at an epoch boundary —
//! mid-batch, mid-stream. Its full reply stream must be byte-identical to
//! an unmigrated run, with zero crashes or restarts involved.

use parapage::cache::PageId;
use parapage::workloads::{build_workload, SeqSpec};
use parapage_server::protocol::{Frame, ServerStats};
use parapage_server::server::{serve, ServeOpts};
use parapage_server::Client;

const BATCHES: u64 = 3;
const P: usize = 4;
const K: usize = 64;

fn config() -> parapage_server::TenantConfig {
    parapage_server::TenantConfig {
        tenant: "mover".into(),
        p: P,
        k: K,
        s: 16,
        policy: "rand-par".into(),
        seed: 99,
        shards: 4,
    }
}

fn workload_for(batch: u64) -> Vec<Vec<PageId>> {
    let specs: Vec<SeqSpec> = (0..P)
        .map(|x| match x % 2 {
            0 => SeqSpec::Cyclic {
                width: (K / 8).max(2),
                len: 400,
            },
            _ => SeqSpec::Phased {
                phases: vec![((K / 16).max(2), 200), (K / 2, 200)],
            },
        })
        .collect();
    build_workload(&specs, 5000 + batch).seqs().to_vec()
}

/// Serves all batches, migrating at the given `(batch, tick)` points.
fn run_tenant(migrations: &[(u64, u64)]) -> (Vec<Frame>, ServerStats) {
    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            epoch_ticks: 4,
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let hello = client.hello(config()).expect("hello");
    assert!(matches!(hello, Frame::HelloAck { .. }), "{hello:?}");

    let mut stream = Vec::new();
    for batch in 0..BATCHES {
        for &(mb, tick) in migrations.iter().filter(|&&(mb, _)| mb == batch) {
            let ack = client
                .call(&Frame::Migrate {
                    batch: mb,
                    at_tick: tick,
                })
                .expect("migrate");
            assert!(matches!(ack, Frame::MigrateAck { .. }), "{ack:?}");
        }
        let reply = client
            .call(&Frame::Batch {
                batch,
                seqs: workload_for(batch),
            })
            .expect("batch");
        assert!(
            matches!(reply, Frame::BatchDone { .. }),
            "batch {batch}: {reply:?}"
        );
        stream.push(reply);
    }

    let stats = match client.call(&Frame::Stats).expect("stats") {
        Frame::StatsReply { stats } => stats,
        other => panic!("stats reply: {other:?}"),
    };
    assert_eq!(
        client.call(&Frame::Shutdown).expect("shutdown"),
        Frame::ShutdownAck
    );
    handle.join();
    (stream, stats)
}

#[test]
fn migrating_mid_stream_is_byte_identical_and_crash_free() {
    let (stay, stay_stats) = run_tenant(&[]);
    // Migrate twice in batch 1 (ticks 8 and 16) and once in batch 2.
    let (moved, moved_stats) = run_tenant(&[(1, 8), (1, 16), (2, 8)]);

    assert_eq!(stay_stats.migrations, 0);
    assert!(
        moved_stats.migrations >= 3,
        "migrations did not land: {moved_stats:?}"
    );
    // Migration is not a crash: the snapshot/restore handoff must not
    // touch the restart counter in either run.
    assert_eq!(stay_stats.restarts, 0);
    assert_eq!(moved_stats.restarts, 0, "{moved_stats:?}");

    // The reply stream — every makespan, digest, and chain value — is
    // identical whether or not the engine was torn down and rebuilt
    // mid-batch.
    assert_eq!(stay, moved, "migration changed the reply stream");
}

#[test]
fn migration_composes_with_a_kill_in_the_same_batch() {
    // A kill and a migration in the same batch still converge on the same
    // replies as an undisturbed run.
    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            epoch_ticks: 4,
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert!(matches!(
        client.hello(config()).expect("hello"),
        Frame::HelloAck { .. }
    ));
    client
        .call(&Frame::Migrate {
            batch: 0,
            at_tick: 8,
        })
        .expect("migrate");
    client
        .call(&Frame::Kill {
            batch: 0,
            at_tick: 14,
        })
        .expect("kill");
    let disturbed = client
        .call(&Frame::Batch {
            batch: 0,
            seqs: workload_for(0),
        })
        .expect("batch");
    assert_eq!(
        client.call(&Frame::Shutdown).expect("shutdown"),
        Frame::ShutdownAck
    );
    handle.join();

    let (clean, _) = run_tenant(&[]);
    assert_eq!(disturbed, clean[0], "kill+migrate diverged from clean run");
}
