//! Crash isolation: three tenants stream batches at one in-process server;
//! one tenant's engine is killed mid-stream. Every tenant's full reply
//! stream — the hurt one included, because supervised recovery is
//! byte-exact — must be identical to a sabotage-free run, and only the
//! sabotaged run may report restarts.

use parapage::cache::PageId;
use parapage::workloads::{build_workload, SeqSpec};
use parapage_server::protocol::{Frame, ServerStats};
use parapage_server::server::{serve, ServeOpts};
use parapage_server::Client;

const TENANTS: &[&str] = &["alpha", "beta", "gamma"];
const BATCHES: u64 = 3;
const P: usize = 4;
const K: usize = 64;

fn test_opts() -> ServeOpts {
    ServeOpts {
        epoch_ticks: 4, // frequent checkpoints: runs are a few dozen ticks
        ..ServeOpts::default()
    }
}

fn config_for(tenant: &str) -> parapage_server::TenantConfig {
    parapage_server::TenantConfig {
        tenant: tenant.into(),
        p: P,
        k: K,
        s: 16,
        policy: "det-par".into(),
        seed: 7,
        shards: 4,
    }
}

/// The deterministic request sequences `tenant` submits as `batch` — long
/// enough that each run spans several 4-tick epochs.
fn workload_for(tenant: &str, batch: u64) -> Vec<Vec<PageId>> {
    let specs: Vec<SeqSpec> = (0..P)
        .map(|x| {
            if x % 2 == 0 {
                SeqSpec::Cyclic {
                    width: (K / 8).max(2),
                    len: 400,
                }
            } else {
                SeqSpec::Zipf {
                    universe: K / 2,
                    theta: 0.9,
                    len: 400,
                }
            }
        })
        .collect();
    let tseed: u64 = tenant.bytes().map(u64::from).sum();
    build_workload(&specs, 1000 * tseed + batch).seqs().to_vec()
}

/// Runs the full three-tenant session, optionally killing `beta`'s engine
/// at tick 10 of batch 1. Returns each tenant's complete reply stream plus
/// the server's final counters.
fn run_cluster(sabotage: bool) -> (Vec<Vec<Frame>>, ServerStats) {
    let handle = serve("127.0.0.1:0", test_opts()).expect("bind");
    let addr = handle.addr();

    let replies: Vec<Vec<Frame>> = std::thread::scope(|scope| {
        let handles: Vec<_> = TENANTS
            .iter()
            .map(|&tenant| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let hello = client.hello(config_for(tenant)).expect("hello");
                    assert!(
                        matches!(hello, Frame::HelloAck { .. }),
                        "admission failed: {hello:?}"
                    );
                    let mut stream = Vec::new();
                    for batch in 0..BATCHES {
                        if sabotage && tenant == "beta" && batch == 1 {
                            let ack = client
                                .call(&Frame::Kill { batch, at_tick: 10 })
                                .expect("kill");
                            assert_eq!(ack, Frame::KillAck { pending: 1 });
                        }
                        let reply = client
                            .call(&Frame::Batch {
                                batch,
                                seqs: workload_for(tenant, batch),
                            })
                            .expect("batch");
                        assert!(
                            matches!(reply, Frame::BatchDone { .. }),
                            "{tenant} batch {batch}: {reply:?}"
                        );
                        stream.push(reply);
                    }
                    let bye = client.call(&Frame::Goodbye).expect("goodbye");
                    assert_eq!(bye, Frame::GoodbyeAck);
                    stream
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    let mut admin = Client::connect(addr).expect("connect admin");
    let stats = match admin.call(&Frame::Stats).expect("stats") {
        Frame::StatsReply { stats } => stats,
        other => panic!("stats reply: {other:?}"),
    };
    assert_eq!(
        admin.call(&Frame::Shutdown).expect("shutdown"),
        Frame::ShutdownAck
    );
    handle.join();
    (replies, stats)
}

#[test]
fn killing_one_tenant_leaves_every_reply_stream_byte_identical() {
    let (clean, clean_stats) = run_cluster(false);
    let (hurt, hurt_stats) = run_cluster(true);

    // The undisturbed run absorbed no crashes; the sabotaged run absorbed
    // at least the injected one — and it stayed inside tenant `beta`.
    assert_eq!(
        clean_stats.restarts, 0,
        "clean run restarted: {clean_stats:?}"
    );
    assert!(
        hurt_stats.restarts >= 1,
        "kill was not absorbed: {hurt_stats:?}"
    );

    // Every tenant's reply stream — frame for frame, digest for digest —
    // is identical across the two runs. The hurt tenant recovered from its
    // WAL checkpoint to the exact same answers.
    for (i, tenant) in TENANTS.iter().enumerate() {
        assert_eq!(
            clean[i], hurt[i],
            "tenant {tenant}: reply stream diverged after sabotage"
        );
    }

    // Sanity: the workloads above actually exercise checkpointing.
    assert!(clean_stats.wal_records > 0 || clean_stats.checkpoint_bytes > 0);
    assert_eq!(clean_stats.batches, TENANTS.len() as u64 * BATCHES);
    assert_eq!(hurt_stats.batches, clean_stats.batches);
    assert_eq!(hurt_stats.requests, clean_stats.requests);
}
