//! Network-resilience integration tests: the shutdown/registration race,
//! typed overload shedding, slow-loris read deadlines, idle-tenant expiry
//! with checkpoint restore, and the resilient client recovering a severed
//! connection with a byte-identical reply stream.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use parapage::cache::PageId;
use parapage::conform::{NetFaultKind, NetFaultPlan};
use parapage_server::protocol::{
    error_code, s2c_chain_seed, Frame, TenantConfig, WireError, WireState, WIRE_MAGIC,
};
use parapage_server::server::{serve, ServeOpts, ServerHandle};
use parapage_server::{Client, ClientError, ResilientClient, RetryOpts};

fn config(tenant: &str) -> TenantConfig {
    TenantConfig {
        tenant: tenant.into(),
        p: 2,
        k: 16,
        s: 4,
        policy: "det-par".into(),
        seed: 1,
        shards: 2,
    }
}

fn workload(batch: u64) -> Vec<Vec<PageId>> {
    (0..2u64)
        .map(|x| {
            (0..24u64)
                .map(|i| PageId((batch * 7 + x * 3 + i) % 12))
                .collect()
        })
        .collect()
}

/// Joins a server with a watchdog: a hung shutdown fails the test instead
/// of hanging the suite.
fn join_within(handle: ServerHandle, limit: Duration, what: &str) {
    let (tx, rx) = mpsc::channel();
    let waiter = std::thread::spawn(move || {
        let stats = handle.join();
        let _ = tx.send(stats);
    });
    rx.recv_timeout(limit)
        .unwrap_or_else(|_| panic!("{what}: server join did not complete within {limit:?}"));
    let _ = waiter.join();
}

/// The register-after-shutdown race: connections storm the accept loop
/// while a `Shutdown` lands, with *no* server read timeout, so any
/// connection that registers after the drain would park its handler in a
/// blocking read forever and strand `join`. The flag is raised and checked
/// under the conns lock, so every connection is either drained or refused.
#[test]
fn shutdown_race_never_strands_connections() {
    for round in 0..8u64 {
        let handle = serve(
            "127.0.0.1:0",
            ServeOpts {
                read_timeout: None,
                ..ServeOpts::default()
            },
        )
        .expect("bind");
        let addr = handle.addr();

        // Parked sessions: attached, then silent — their handlers block in
        // a read with no deadline until the shutdown drain severs them.
        let mut parked = Vec::new();
        for t in 0..3 {
            let mut c = Client::connect(addr).expect("connect");
            c.hello(config(&format!("parked-{round}-{t}")))
                .expect("hello");
            parked.push(c);
        }

        // The storm: threads connect-hello-drop in a loop until the
        // listener goes away under them.
        let stormers: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let Ok(mut c) =
                            Client::connect_with(addr, None, Some(Duration::from_secs(2)))
                        else {
                            break;
                        };
                        if c.hello(config(&format!("storm-{round}-{t}-{i}"))).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(2));
        if let Ok(mut c) = Client::connect_with(addr, None, Some(Duration::from_secs(2))) {
            let _ = c.call(&Frame::Shutdown);
        }

        join_within(handle, Duration::from_secs(10), "shutdown race");
        for s in stormers {
            let _ = s.join();
        }
        drop(parked);
    }
}

/// Beyond the connection cap the server answers with a typed
/// [`Frame::Busy`] carrying its retry hint — never a silent drop.
#[test]
fn overload_shed_is_a_typed_busy() {
    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            max_conns: 1,
            busy_retry_ms: 7,
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let mut occupier = Client::connect(addr).expect("occupier connect");
    occupier.hello(config("occupier")).expect("occupier hello");

    let mut second = Client::connect(addr).expect("second connect");
    match second.hello(config("shed-me")) {
        Ok(Frame::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 7),
        other => panic!("expected typed Busy from a full server, got {other:?}"),
    }
    assert!(handle.stats().shed >= 1, "server did not count the shed");

    drop(occupier);
    handle.shutdown();
    join_within(handle, Duration::from_secs(10), "shed");
}

/// A peer that trickles half a frame and stalls past the read deadline
/// gets a typed `Error { TIMED_OUT }` before the close; a peer that is
/// merely idle *between* frames is closed quietly (that is idleness, not
/// an attack).
#[test]
fn slow_loris_gets_typed_timeout_idle_boundary_closes_quietly() {
    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            read_timeout: Some(Duration::from_millis(30)),
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    // Mid-frame stall: magic plus a couple of header bytes, then silence.
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    loris.write_all(&WIRE_MAGIC).expect("write magic");
    loris.write_all(&[0, 0]).expect("write stub");
    let mut rx = WireState::new(s2c_chain_seed());
    match rx.read_frame(&mut loris) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, error_code::TIMED_OUT),
        other => panic!("expected typed TIMED_OUT for a mid-frame stall, got {other:?}"),
    }

    // Frame-boundary idleness: no bytes at all; the connection just ends.
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut rx = WireState::new(s2c_chain_seed());
    match rx.read_frame(&mut idle) {
        Err(WireError::Closed) => {}
        other => panic!("expected a quiet close for boundary idleness, got {other:?}"),
    }

    handle.shutdown();
    join_within(handle, Duration::from_secs(10), "slow loris");
}

/// An idle tenant past the TTL is retired to a checkpoint blob; a later
/// `Hello` restores the session — same next batch, same reply chain, and
/// replies byte-identical to an unbroken control session.
#[test]
fn idle_expiry_restores_checkpointed_session() {
    // Control: both batches over one unbroken session.
    let control_server = serve("127.0.0.1:0", ServeOpts::default()).expect("bind");
    let mut c = Client::connect(control_server.addr()).expect("connect");
    c.hello(config("t")).expect("hello");
    let control: Vec<Frame> = (0..2u64)
        .map(|b| {
            c.call(&Frame::Batch {
                batch: b,
                seqs: workload(b),
            })
            .expect("control batch")
        })
        .collect();
    let _ = c.call(&Frame::Goodbye);
    control_server.shutdown();
    join_within(control_server, Duration::from_secs(10), "control");

    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            idle_ttl: Some(Duration::from_millis(20)),
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let mut c = Client::connect(addr).expect("connect");
    c.hello(config("t")).expect("hello");
    let first = c
        .call(&Frame::Batch {
            batch: 0,
            seqs: workload(0),
        })
        .expect("batch 0");
    assert_eq!(first, control[0], "batch 0 diverged before any expiry");
    let chain_after_0 = match first {
        Frame::BatchDone { chain, .. } => chain,
        other => panic!("batch 0 reply: {other:?}"),
    };
    let _ = c.call(&Frame::Goodbye);
    drop(c);

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().expiries == 0 {
        assert!(Instant::now() < deadline, "tenant never expired");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut c = Client::connect(addr).expect("reconnect");
    match c.hello(config("t")).expect("re-attach hello") {
        Frame::HelloAck {
            next_batch,
            reply_chain,
            ..
        } => {
            assert_eq!(next_batch, 1, "restored session restarted, not resumed");
            assert_eq!(
                reply_chain, chain_after_0,
                "restored reply chain does not continue batch 0's"
            );
        }
        other => panic!("re-attach hello: {other:?}"),
    }
    let second = c
        .call(&Frame::Batch {
            batch: 1,
            seqs: workload(1),
        })
        .expect("batch 1");
    assert_eq!(second, control[1], "restored session diverged on batch 1");

    let _ = c.call(&Frame::Goodbye);
    handle.shutdown();
    join_within(handle, Duration::from_secs(10), "expiry");
}

/// A connection severed mid-stream by a deterministic fault plan is
/// absorbed: the resilient client reconnects, re-attaches, and its reply
/// stream is byte-identical to an unfaulted run.
#[test]
fn resilient_client_recovers_a_cut_byte_identically() {
    let run = |plan: Option<NetFaultPlan>| -> (Vec<Frame>, u64, u64) {
        let handle = serve("127.0.0.1:0", ServeOpts::default()).expect("bind");
        let mut client = ResilientClient::new(
            handle.addr(),
            config("t"),
            RetryOpts {
                seed: 7,
                ..RetryOpts::default()
            },
        );
        if let Some(plan) = plan {
            client = client.with_faults(vec![plan]);
        }
        let replies: Vec<Frame> = (0..3u64)
            .map(|b| client.run_batch(&workload(b)).expect("batch through fault"))
            .collect();
        client.goodbye();
        let counters = client.counters();
        handle.shutdown();
        join_within(handle, Duration::from_secs(10), "cut recovery");
        (replies, counters.reconnects, counters.replays)
    };

    let (clean, _, _) = run(None);

    // Sever the send side mid-traffic: the request dies in flight.
    let cut_send = NetFaultPlan::new(NetFaultKind::CutSend, 11, 0, 150);
    let (replies, reconnects, _) = run(Some(cut_send));
    assert_eq!(replies, clean, "cut-send recovery diverged");
    assert!(reconnects >= 1, "cut-send never landed");

    // Sever the receive side mid-reply: the reply is lost after the server
    // applied the batch, so recovery must go through Replay.
    let cut_recv = NetFaultPlan::new(NetFaultKind::CutRecv, 13, 0, 90);
    let (replies, reconnects, replays) = run(Some(cut_recv));
    assert_eq!(replies, clean, "cut-recv recovery diverged");
    assert!(reconnects >= 1, "cut-recv never landed");
    assert!(replays >= 1, "lost reply was not recovered via Replay");
}

/// Irreconcilable cursors are a typed [`ClientError::Divergence`], never a
/// silent acceptance. Forced here by seeding the tenant *two* batches
/// ahead on the server, beyond what the one-frame replay window can
/// bridge for a client that believes the session starts at 0.
#[test]
fn cursor_mismatch_is_a_typed_error() {
    let handle = serve("127.0.0.1:0", ServeOpts::default()).expect("bind");
    let addr = handle.addr();

    let mut c = Client::connect(addr).expect("connect");
    c.hello(config("t")).expect("hello");
    for b in 0..2u64 {
        c.call(&Frame::Batch {
            batch: b,
            seqs: workload(b),
        })
        .expect("seed batch");
    }
    let _ = c.call(&Frame::Goodbye);
    drop(c);

    let mut client = ResilientClient::new(addr, config("t"), RetryOpts::default());
    match client.run_batch(&workload(0)) {
        Err(ClientError::Divergence { .. }) => {}
        other => panic!("expected a typed divergence, got {other:?}"),
    }

    handle.shutdown();
    join_within(handle, Duration::from_secs(10), "cursor mismatch");
}
