//! Property-based re-attach equivalence: sever a session at an
//! *arbitrary* byte offset, in either direction, and the resilient
//! client's recovered reply stream must be byte-identical to an unbroken
//! run — or the failure must surface as a typed [`ClientError`]. Silent
//! divergence (an `Ok` stream that differs from the clean one) is the one
//! outcome that must never happen, at any cut point.

use proptest::prelude::*;

use parapage::cache::PageId;
use parapage::conform::{NetFaultKind, NetFaultPlan};
use parapage_server::protocol::{Frame, TenantConfig};
use parapage_server::server::{serve, ServeOpts};
use parapage_server::{ResilientClient, RetryOpts};

const BATCHES: u64 = 2;

fn config() -> TenantConfig {
    TenantConfig {
        tenant: "prop".into(),
        p: 2,
        k: 8,
        s: 4,
        policy: "det-par".into(),
        seed: 3,
        shards: 2,
    }
}

fn workload(batch: u64) -> Vec<Vec<PageId>> {
    (0..2u64)
        .map(|x| {
            (0..20u64)
                .map(|i| PageId((batch * 5 + x * 3 + i) % 10))
                .collect()
        })
        .collect()
}

/// Runs the whole session through a resilient client against a fresh
/// server, with `plans` as the transport fault schedule.
fn run_session(plans: Vec<NetFaultPlan>, seed: u64) -> Result<Vec<Frame>, String> {
    let handle = serve("127.0.0.1:0", ServeOpts::default()).map_err(|e| format!("bind: {e}"))?;
    let mut client = ResilientClient::new(
        handle.addr(),
        config(),
        RetryOpts {
            seed,
            ..RetryOpts::default()
        },
    )
    .with_faults(plans);
    let mut replies = Vec::new();
    let mut error = None;
    for batch in 0..BATCHES {
        match client.run_batch(&workload(batch)) {
            Ok(reply) => replies.push(reply),
            Err(e) => {
                // Typed failure: allowed. Record and stop — the property
                // only forbids an Ok stream that diverges.
                error = Some(format!("{e}"));
                break;
            }
        }
    }
    client.goodbye();
    handle.shutdown();
    handle.join();
    match error {
        Some(e) => Err(e),
        None => Ok(replies),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One severing fault on the first connection, at an arbitrary byte
    /// offset in either direction. The digest chain is re-seeded from the
    /// server's acked state on re-attach, so the recovered stream must be
    /// byte-identical to the clean run's — and since the fault dies with
    /// connection 0, recovery must in fact always succeed.
    #[test]
    fn any_cut_point_resumes_byte_identically(
        kind_is_recv in any::<bool>(),
        cut in 1u64..700,
        seed in 0u64..1u64 << 48,
    ) {
        let clean = run_session(Vec::new(), seed).expect("clean run failed");
        prop_assert_eq!(clean.len() as u64, BATCHES);

        let kind = if kind_is_recv { NetFaultKind::CutRecv } else { NetFaultKind::CutSend };
        let replies = run_session(vec![NetFaultPlan::new(kind, seed, 0, cut)], seed)
            .expect("single-connection cut must be recoverable");
        prop_assert_eq!(replies, clean, "recovered stream diverged from clean run");
    }

    /// Cuts on *both* of the first two connections — recovery may
    /// legitimately exhaust its budget, but an `Ok` stream must still be
    /// byte-identical: typed error or identical, never silent divergence.
    #[test]
    fn double_cut_is_identical_or_typed(
        first_is_recv in any::<bool>(),
        cut0 in 1u64..700,
        cut1 in 1u64..700,
        seed in 0u64..1u64 << 48,
    ) {
        let clean = run_session(Vec::new(), seed).expect("clean run failed");

        let kind0 = if first_is_recv { NetFaultKind::CutRecv } else { NetFaultKind::CutSend };
        let kind1 = if first_is_recv { NetFaultKind::CutSend } else { NetFaultKind::CutRecv };
        let plans = vec![
            NetFaultPlan::new(kind0, seed, 0, cut0),
            NetFaultPlan::new(kind1, seed ^ 0xd1ce, 1, cut1),
        ];
        if let Ok(replies) = run_session(plans, seed) {
            prop_assert_eq!(replies, clean, "recovered stream diverged from clean run");
        }
    }
}
