//! Protocol conformance: every frame type round-trips through the payload
//! codec and the framed wire stream, and every malformed input — truncated,
//! oversized, bit-flipped, reordered, or plain garbage — decodes to a typed
//! error without panicking or over-allocating.

use std::io::Cursor;

use proptest::prelude::*;

use parapage::cache::{CodecError, PageId};
use parapage_server::protocol::{
    c2s_chain_seed, frame_wire, parse_wire, s2c_chain_seed, Frame, ServerStats, TenantConfig,
    WireError, WireState, MAX_FRAME, WIRE_MAGIC,
};

fn sample_config() -> TenantConfig {
    TenantConfig {
        tenant: "tenant-a".into(),
        p: 4,
        k: 64,
        s: 16,
        policy: "det-par".into(),
        seed: 42,
        shards: 4,
    }
}

/// One instance of every frame variant the protocol defines.
fn all_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            proto: 1,
            config: sample_config(),
        },
        Frame::HelloAck {
            session: 7,
            max_frame: MAX_FRAME as u64,
            budget_left: 1_000_000,
            next_batch: 5,
            reply_chain: 0xc0ff_ee00_dead_beef,
        },
        Frame::Batch {
            batch: 3,
            seqs: vec![
                vec![PageId(1), PageId(2), PageId(3)],
                vec![],
                vec![PageId(9)],
            ],
        },
        Frame::BatchDone {
            batch: 3,
            makespan: 512,
            hits: 100,
            misses: 28,
            grants: 12,
            digest: 0xdead_beef,
            chain: 0xfeed_face,
        },
        Frame::Migrate {
            batch: 1,
            at_tick: 9,
        },
        Frame::MigrateAck { pending: 1 },
        Frame::Kill {
            batch: 2,
            at_tick: 10,
        },
        Frame::KillAck { pending: 2 },
        Frame::Stats,
        Frame::StatsReply {
            stats: ServerStats {
                tenants: 3,
                batches: 12,
                requests: 4800,
                restarts: 1,
                migrations: 2,
                wal_records: 40,
                checkpoint_bytes: 65536,
                expiries: 2,
                shed: 5,
            },
        },
        Frame::Goodbye,
        Frame::GoodbyeAck,
        Frame::Shutdown,
        Frame::ShutdownAck,
        Frame::Error {
            code: 5,
            message: "malformed frame".into(),
        },
        Frame::Busy { retry_after_ms: 25 },
        Frame::Replay { batch: 4 },
    ]
}

#[test]
fn every_frame_round_trips_through_the_payload_codec() {
    for frame in all_frames() {
        let payload = frame.encode_payload();
        let back = Frame::decode_payload(&payload)
            .unwrap_or_else(|e| panic!("decode of {frame:?} failed: {e}"));
        assert_eq!(back, frame);
    }
}

#[test]
fn every_frame_round_trips_through_the_framed_stream() {
    // Write all frames in one direction, read them back: sequence numbers
    // and digest chains must line up end to end.
    let mut tx = WireState::new(c2s_chain_seed());
    let mut buf = Vec::new();
    let frames = all_frames();
    for frame in &frames {
        tx.write_frame(&mut buf, frame).expect("write");
    }
    let mut rx = WireState::new(c2s_chain_seed());
    let mut cursor = Cursor::new(buf);
    for frame in &frames {
        let got = rx.read_frame(&mut cursor).expect("read");
        assert_eq!(&got, frame);
    }
    // The stream then ends cleanly at a frame boundary.
    assert!(matches!(rx.read_frame(&mut cursor), Err(WireError::Closed)));
}

#[test]
fn directions_are_chain_separated() {
    // A server reply stream cannot be read with the client-direction
    // chain seed: the very first digest check fails.
    let mut tx = WireState::new(s2c_chain_seed());
    let mut buf = Vec::new();
    tx.write_frame(&mut buf, &Frame::GoodbyeAck).expect("write");
    let mut rx = WireState::new(c2s_chain_seed());
    assert!(matches!(
        rx.read_frame(&mut Cursor::new(buf)),
        Err(WireError::Codec(CodecError::DigestMismatch { .. }))
    ));
}

#[test]
fn replayed_and_reordered_frames_break_the_chain() {
    let mut tx = WireState::new(c2s_chain_seed());
    let mut first = Vec::new();
    tx.write_frame(&mut first, &Frame::Stats).expect("write");
    let mut second = Vec::new();
    tx.write_frame(&mut second, &Frame::Goodbye).expect("write");

    // Replay: the same frame twice fails the second read (seq + chain).
    let mut replay = first.clone();
    replay.extend_from_slice(&first);
    let mut rx = WireState::new(c2s_chain_seed());
    let mut cursor = Cursor::new(replay);
    rx.read_frame(&mut cursor).expect("first copy is valid");
    assert!(matches!(
        rx.read_frame(&mut cursor),
        Err(WireError::Codec(_))
    ));

    // Reorder: the second frame first fails immediately.
    let mut reordered = second;
    reordered.extend_from_slice(&first);
    let mut rx = WireState::new(c2s_chain_seed());
    assert!(matches!(
        rx.read_frame(&mut Cursor::new(reordered)),
        Err(WireError::Codec(_))
    ));
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let payload = Frame::Hello {
        proto: 1,
        config: sample_config(),
    }
    .encode_payload();
    let (bytes, _) = frame_wire(0, c2s_chain_seed(), &payload);
    for cut in 0..bytes.len() {
        let err = parse_wire(&bytes[..cut], c2s_chain_seed(), 0)
            .expect_err("truncated frame must not parse");
        assert!(
            matches!(err, CodecError::UnexpectedEof),
            "cut at {cut}: {err}"
        );
    }
    // The untruncated frame parses.
    assert!(parse_wire(&bytes, c2s_chain_seed(), 0).is_ok());
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    // A header declaring a payload beyond MAX_FRAME must be rejected from
    // the 16 header bytes alone — parse_wire never sees (or reserves) the
    // phantom gigabytes.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&WIRE_MAGIC);
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = parse_wire(&bytes, c2s_chain_seed(), 0).expect_err("oversized");
    assert!(matches!(err, CodecError::Invalid(_)), "{err}");

    // Same on the streaming read path.
    let mut rx = WireState::new(c2s_chain_seed());
    let err = rx
        .read_frame(&mut Cursor::new(bytes))
        .expect_err("oversized");
    assert!(
        matches!(err, WireError::Codec(CodecError::Invalid(_))),
        "{err}"
    );
}

#[test]
fn hostile_page_count_is_rejected_before_allocation() {
    // A Batch payload declaring 2^40 pages in 10 actual bytes: the decoder
    // must bound the count by the bytes present before reserving.
    use parapage::cache::SnapWriter;
    let mut w = SnapWriter::new();
    w.put_u8(3); // BATCH tag
    w.put_u64(0); // batch
    w.put_len(1); // one sequence
    w.put_len((1u64 << 40) as usize); // claiming 2^40 pages
    let err = Frame::decode_payload(&w.into_bytes()).expect_err("hostile count");
    assert!(matches!(err, CodecError::Invalid(_)), "{err}");
}

#[test]
fn unknown_tag_and_trailing_bytes_are_rejected() {
    assert!(matches!(
        Frame::decode_payload(&[200]),
        Err(CodecError::Invalid(_))
    ));
    let mut payload = Frame::Stats.encode_payload();
    payload.push(0);
    assert!(matches!(
        Frame::decode_payload(&payload),
        Err(CodecError::Invalid(_))
    ));
    assert!(matches!(
        Frame::decode_payload(&[]),
        Err(CodecError::UnexpectedEof)
    ));
}

#[test]
fn wrong_magic_is_rejected() {
    let payload = Frame::Stats.encode_payload();
    let (mut bytes, _) = frame_wire(0, c2s_chain_seed(), &payload);
    bytes[0] ^= 0xff;
    assert!(matches!(
        parse_wire(&bytes, c2s_chain_seed(), 0),
        Err(CodecError::BadMagic)
    ));
}

#[test]
fn clean_eof_is_closed_but_mid_frame_eof_is_not() {
    let mut rx = WireState::new(c2s_chain_seed());
    assert!(matches!(
        rx.read_frame(&mut Cursor::new(Vec::new())),
        Err(WireError::Closed)
    ));
    // One byte of a header is a broken peer, not a clean close.
    let mut rx = WireState::new(c2s_chain_seed());
    assert!(matches!(
        rx.read_frame(&mut Cursor::new(vec![b'p'])),
        Err(WireError::Codec(CodecError::UnexpectedEof))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage never panics the payload decoder and never
    /// round-trips by accident into a different encoding.
    #[test]
    fn garbage_payloads_decode_to_typed_errors_or_canonical_frames(
        bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        // A canonical decode must re-encode to exactly the input (the
        // codec is a bijection on its valid domain); a typed error is
        // the only other acceptable outcome.
        if let Ok(frame) = Frame::decode_payload(&bytes) {
            prop_assert_eq!(frame.encode_payload(), bytes);
        }
    }

    /// Any single bit flip anywhere in a framed message is caught.
    #[test]
    fn single_bit_flips_never_pass_verification(
        batch in 0u64..1000,
        seq_pages in prop::collection::vec(0u64..512, 0..40),
        flip_byte in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let frame = Frame::Batch {
            batch,
            seqs: vec![seq_pages.into_iter().map(PageId).collect()],
        };
        let payload = frame.encode_payload();
        let (mut bytes, _) = frame_wire(0, c2s_chain_seed(), &payload);
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        // Whatever was flipped — magic, seq, length, payload, digest —
        // the parse must fail with a typed error, never a panic.
        prop_assert!(parse_wire(&bytes, c2s_chain_seed(), 0).is_err());
    }

    /// Random Batch frames round-trip exactly through payload and wire.
    #[test]
    fn random_batches_round_trip(
        batch in any::<u64>(),
        seqs in prop::collection::vec(
            prop::collection::vec(any::<u64>().prop_map(PageId), 0..20),
            0..6,
        ),
    ) {
        let frame = Frame::Batch { batch, seqs };
        prop_assert_eq!(
            Frame::decode_payload(&frame.encode_payload()).unwrap(),
            frame.clone()
        );
        let mut tx = WireState::new(s2c_chain_seed());
        let mut buf = Vec::new();
        tx.write_frame(&mut buf, &frame).unwrap();
        let mut rx = WireState::new(s2c_chain_seed());
        prop_assert_eq!(rx.read_frame(&mut Cursor::new(buf)).unwrap(), frame);
    }

    /// Random Error frames (arbitrary code and UTF-8 message) round-trip.
    #[test]
    fn random_errors_round_trip(code in any::<u16>(), message in ".{0,80}") {
        let frame = Frame::Error { code, message };
        prop_assert_eq!(
            Frame::decode_payload(&frame.encode_payload()).unwrap(),
            frame
        );
    }

    /// Truncating a framed stream at any point yields a typed error from
    /// the streaming reader too (never a panic, never Closed mid-frame).
    #[test]
    fn stream_truncation_is_typed(cut_frac in 0.0f64..1.0) {
        let frame = Frame::Hello { proto: 1, config: sample_config() };
        let mut tx = WireState::new(c2s_chain_seed());
        let mut buf = Vec::new();
        tx.write_frame(&mut buf, &frame).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let mut rx = WireState::new(c2s_chain_seed());
        match rx.read_frame(&mut Cursor::new(buf[..cut].to_vec())) {
            Ok(_) => prop_assert!(false, "truncated frame parsed"),
            Err(WireError::Closed) => prop_assert!(cut == 0, "Closed mid-frame at {cut}"),
            // A Cursor never reports a read timeout, but the arm keeps
            // the match total over the typed error space.
            Err(WireError::Codec(_)) | Err(WireError::Io(_)) | Err(WireError::TimedOut { .. }) => {}
        }
    }
}
