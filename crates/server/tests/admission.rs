//! Admission control and session-state policing: tenant caps, request
//! budgets, version and configuration checks, and the ordering rules a
//! session must obey — all surfaced as typed `Error` frames on a
//! connection that stays usable.

use parapage::cache::PageId;
use parapage_server::protocol::{error_code, Frame, TenantConfig, PROTO_VERSION};
use parapage_server::server::{serve, ServeOpts};
use parapage_server::Client;

fn config(tenant: &str) -> TenantConfig {
    TenantConfig {
        tenant: tenant.into(),
        p: 2,
        k: 16,
        s: 4,
        policy: "det-par".into(),
        seed: 1,
        shards: 2,
    }
}

fn batch(batch: u64, len: usize) -> Frame {
    Frame::Batch {
        batch,
        seqs: (0..2)
            .map(|x| (0..len).map(|i| PageId((x * len + i) as u64 % 8)).collect())
            .collect(),
    }
}

fn expect_error(reply: Frame, code: u16) {
    match reply {
        Frame::Error { code: got, message } => {
            assert_eq!(got, code, "wrong error code: {message}")
        }
        other => panic!("expected error {code}, got {other:?}"),
    }
}

#[test]
fn tenant_cap_and_reattach_rules() {
    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            max_tenants: 2,
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let mut a = Client::connect(addr).expect("connect");
    assert!(matches!(
        a.hello(config("a")).expect("hello"),
        Frame::HelloAck { .. }
    ));
    let mut b = Client::connect(addr).expect("connect");
    assert!(matches!(
        b.hello(config("b")).expect("hello"),
        Frame::HelloAck { .. }
    ));

    // Third tenant: the table is full.
    let mut c = Client::connect(addr).expect("connect");
    expect_error(
        c.hello(config("c")).expect("hello"),
        error_code::TENANTS_FULL,
    );

    // Re-attaching to an existing tenant with the same config is not a
    // new admission — it succeeds even at the cap.
    let mut a2 = Client::connect(addr).expect("connect");
    assert!(matches!(
        a2.hello(config("a")).expect("hello"),
        Frame::HelloAck { .. }
    ));

    // Re-attaching with a different config is rejected.
    let mut a3 = Client::connect(addr).expect("connect");
    let mut wrong = config("a");
    wrong.k = 32;
    expect_error(a3.hello(wrong).expect("hello"), error_code::CONFIG_MISMATCH);

    let _ = a.call(&Frame::Shutdown);
    handle.join();
}

#[test]
fn hello_validation_rejects_bad_versions_policies_and_models() {
    let handle = serve("127.0.0.1:0", ServeOpts::default()).expect("bind");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // Wrong protocol version.
    let reply = client
        .call(&Frame::Hello {
            proto: PROTO_VERSION + 1,
            config: config("v"),
        })
        .expect("call");
    expect_error(reply, error_code::BAD_VERSION);

    // Unknown policy (and shared-lru, which is not servable).
    for policy in ["no-such-policy", "shared-lru"] {
        let mut cfg = config("p");
        cfg.policy = policy.into();
        expect_error(client.hello(cfg).expect("hello"), error_code::BAD_FRAME);
    }

    // Degenerate models.
    for (p, k, s) in [(0usize, 16usize, 4u64), (4, 2, 4), (2, 16, 1)] {
        let mut cfg = config("m");
        (cfg.p, cfg.k, cfg.s) = (p, k, s);
        expect_error(client.hello(cfg).expect("hello"), error_code::BAD_FRAME);
    }

    // The connection survived every rejection: a valid Hello still works.
    assert!(matches!(
        client.hello(config("ok")).expect("hello"),
        Frame::HelloAck { .. }
    ));

    let _ = client.call(&Frame::Shutdown);
    handle.join();
}

#[test]
fn session_ordering_is_policed() {
    let handle = serve("127.0.0.1:0", ServeOpts::default()).expect("bind");
    let addr = handle.addr();

    // A batch before Hello is a state error on that connection.
    let mut cold = Client::connect(addr).expect("connect");
    expect_error(
        cold.call(&batch(0, 4)).expect("call"),
        error_code::BAD_STATE,
    );

    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(
        client.hello(config("o")).expect("hello"),
        Frame::HelloAck { .. }
    ));

    // Batches must arrive in sequence.
    expect_error(
        client.call(&batch(5, 4)).expect("call"),
        error_code::BAD_STATE,
    );
    // A batch must carry exactly p sequences.
    let lopsided = Frame::Batch {
        batch: 0,
        seqs: vec![vec![PageId(1)]],
    };
    expect_error(client.call(&lopsided).expect("call"), error_code::BAD_STATE);
    // After the rejections, the correct next batch still serves.
    assert!(matches!(
        client.call(&batch(0, 4)).expect("call"),
        Frame::BatchDone { .. }
    ));

    let _ = client.call(&Frame::Shutdown);
    handle.join();
}

#[test]
fn request_budgets_are_enforced_cumulatively() {
    let handle = serve(
        "127.0.0.1:0",
        ServeOpts {
            request_budget: 100,
            ..ServeOpts::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let budget = match client.hello(config("t")).expect("hello") {
        Frame::HelloAck { budget_left, .. } => budget_left,
        other => panic!("{other:?}"),
    };
    assert_eq!(budget, 100);

    // 2 × 60 = 120 requests: over budget, rejected, sequence unmoved.
    expect_error(
        client.call(&batch(0, 60)).expect("call"),
        error_code::BUDGET_EXHAUSTED,
    );
    // 2 × 40 = 80 fits.
    assert!(matches!(
        client.call(&batch(0, 40)).expect("call"),
        Frame::BatchDone { .. }
    ));
    // Only 20 left now: another 80 is over.
    expect_error(
        client.call(&batch(1, 40)).expect("call"),
        error_code::BUDGET_EXHAUSTED,
    );
    // 2 × 10 = 20 drains the budget exactly.
    assert!(matches!(
        client.call(&batch(1, 10)).expect("call"),
        Frame::BatchDone { .. }
    ));
    expect_error(
        client.call(&batch(2, 1)).expect("call"),
        error_code::BUDGET_EXHAUSTED,
    );

    let _ = client.call(&Frame::Shutdown);
    handle.join();
}
