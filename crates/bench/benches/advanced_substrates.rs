//! Microbench: the extended substrates — SHARDS sampling vs exact Mattson,
//! the Fenwick-accelerated green-OPT DP vs the naive one, ARC vs LRU, and
//! the exact static-partition optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parapage::analysis::{static_opt_makespan, static_opt_total_time};
use parapage::prelude::*;

fn trace(n: usize) -> Vec<PageId> {
    let mut b = SeqBuilder::new(ProcId(0), 77);
    b.zipf(1024, 0.9, n / 2)
        .cyclic(200, n / 4)
        .fresh_stream(n / 4);
    b.build()
}

fn bench_sampling(c: &mut Criterion) {
    let seq = trace(200_000);
    let mut group = c.benchmark_group("stack_distance");
    group.sample_size(10);
    group.bench_function("exact_mattson", |b| {
        b.iter(|| black_box(miss_curve(&seq, 512)))
    });
    group.bench_function("shards_rate_0.1", |b| {
        b.iter(|| black_box(sampled_miss_curve(&seq, 512, 0.1)))
    });
    group.bench_function("shards_rate_0.01", |b| {
        b.iter(|| black_box(sampled_miss_curve(&seq, 512, 0.01)))
    });
    group.finish();
}

fn bench_green_opt_variants(c: &mut Criterion) {
    let params = ModelParams::new(16, 128, 16);
    let seq = trace(20_000);
    let heights = params.box_heights();
    let mut group = c.benchmark_group("green_opt_variants");
    group.sample_size(10);
    group.bench_function("naive_dp", |b| {
        b.iter(|| black_box(green_opt(&seq, &heights, params.s).impact))
    });
    group.bench_function("fenwick_dp", |b| {
        b.iter(|| black_box(green_opt_fast(&seq, &heights, params.s).impact))
    });
    group.finish();
}

fn bench_arc_vs_lru(c: &mut Criterion) {
    let seq = trace(100_000);
    let mut group = c.benchmark_group("arc_vs_lru");
    group.sample_size(15);
    group.bench_function("lru", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(256);
            let m = seq.iter().filter(|&&p| !cache.access(p).is_hit()).count();
            black_box(m)
        })
    });
    group.bench_function("arc", |b| {
        b.iter(|| {
            let mut cache = ArcCache::new(256);
            let m = seq.iter().filter(|&&p| !cache.access(p).is_hit()).count();
            black_box(m)
        })
    });
    group.bench_function("two_queue", |b| {
        b.iter(|| {
            let mut cache = TwoQueueCache::new(256);
            let m = seq.iter().filter(|&&p| !cache.access(p).is_hit()).count();
            black_box(m)
        })
    });
    group.finish();
}

fn bench_static_opt(c: &mut Criterion) {
    let seqs: Vec<Vec<PageId>> = (0..8)
        .map(|x| {
            let mut b = SeqBuilder::new(ProcId(x), 5);
            b.cyclic(8 << (x % 4), 5000);
            b.build()
        })
        .collect();
    let mut group = c.benchmark_group("static_opt");
    group.sample_size(10);
    group.bench_function("makespan_objective", |b| {
        b.iter(|| black_box(static_opt_makespan(&seqs, 128, 16).objective))
    });
    group.bench_function("total_time_objective", |b| {
        b.iter(|| black_box(static_opt_total_time(&seqs, 128, 16).objective))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampling,
    bench_green_opt_variants,
    bench_arc_vs_lru,
    bench_static_opt
);
criterion_main!(benches);
