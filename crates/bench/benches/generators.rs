//! Microbench: workload generators (S9/S10), including the adversarial
//! instance builder.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use parapage::prelude::*;

fn bench_generators(c: &mut Criterion) {
    let n = 100_000usize;
    let mut group = c.benchmark_group("generators");
    group.sample_size(15);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("cyclic", |b| {
        b.iter(|| {
            let mut sb = SeqBuilder::new(ProcId(0), 1);
            sb.cyclic(64, n);
            black_box(sb.build())
        })
    });
    group.bench_function("zipf", |b| {
        b.iter(|| {
            let mut sb = SeqBuilder::new(ProcId(0), 1);
            sb.zipf(4096, 0.9, n);
            black_box(sb.build())
        })
    });
    group.bench_function("polluted_cycle", |b| {
        b.iter(|| {
            let mut sb = SeqBuilder::new(ProcId(0), 1);
            sb.polluted_cycle(63, n, 16);
            black_box(sb.build())
        })
    });
    group.finish();

    c.bench_function("adversarial_instance_p32", |b| {
        b.iter(|| {
            let cfg = AdversarialConfig::scaled(32, 128, 128, 0.05);
            black_box(AdversarialInstance::build(cfg))
        })
    });
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
