//! Microbench: one memory box (S3) — `run_box` at the heights the paging
//! algorithms actually allocate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parapage::prelude::*;

fn bench_box(c: &mut Criterion) {
    let seq: Vec<PageId> = (0..200_000).map(|i| PageId(i as u64 % 96)).collect();
    let s = 16;
    let mut group = c.benchmark_group("run_box");
    group.sample_size(20);
    for height in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(height), &height, |b, &h| {
            b.iter(|| black_box(run_box(&seq, 0, h, s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_box);
criterion_main!(benches);
