//! Microbench: the full execution engine (S5) end-to-end, one measurement
//! per policy on a fixed mixed workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parapage::prelude::*;
use parapage_bench::recipes;

fn bench_engine(c: &mut Criterion) {
    let p = 8usize;
    let k = 128;
    let params = ModelParams::new(p, k, 16);
    let w = build_workload(&recipes::mixed_specs(p, k, 2000), 5);
    let opts = EngineOpts::default();

    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(15);
    group.bench_function("det_par", |b| {
        b.iter(|| {
            let mut det = DetPar::new(&params);
            black_box(
                run_engine(&mut det, w.seqs(), &params, &opts)
                    .unwrap()
                    .makespan,
            )
        })
    });
    group.bench_function("rand_par", |b| {
        b.iter(|| {
            let mut rp = RandPar::new(&params, 7);
            black_box(
                run_engine(&mut rp, w.seqs(), &params, &opts)
                    .unwrap()
                    .makespan,
            )
        })
    });
    group.bench_function("static_partition", |b| {
        b.iter(|| {
            let mut st = StaticPartition::new(&params);
            black_box(
                run_engine(&mut st, w.seqs(), &params, &opts)
                    .unwrap()
                    .makespan,
            )
        })
    });
    group.bench_function("blackbox_green", |b| {
        b.iter(|| {
            let pagers: Vec<RandGreen> =
                (0..p as u64).map(|i| RandGreen::new(&params, i)).collect();
            let mut bb = BlackboxGreenPacker::new(&params, pagers);
            black_box(
                run_engine(&mut bb, w.seqs(), &params, &opts)
                    .unwrap()
                    .makespan,
            )
        })
    });
    group.bench_function("shared_lru", |b| {
        b.iter(|| black_box(run_shared_lru(w.seqs(), k, 16).makespan))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
