//! Microbench: green paging machinery (S4) — RAND-GREEN execution and the
//! offline OPT dynamic program.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parapage::prelude::*;
use parapage_bench::recipes;

fn bench_green(c: &mut Criterion) {
    let params = ModelParams::new(16, 128, 16);
    let seq = recipes::green_sequence(128, 4);

    let mut group = c.benchmark_group("green_paging");
    group.sample_size(10);
    group.bench_function("rand_green_run", |b| {
        b.iter(|| {
            let mut g = RandGreen::new(&params, 9);
            black_box(run_green(&mut g, &seq, &params).impact)
        })
    });
    group.bench_function("adaptive_green_run", |b| {
        b.iter(|| {
            let mut g = AdaptiveGreen::new(&params);
            black_box(run_green(&mut g, &seq, &params).impact)
        })
    });
    group.bench_function("green_opt_dp", |b| {
        b.iter(|| black_box(green_opt_normalized(&seq, &params).impact))
    });
    group.finish();
}

criterion_group!(benches, bench_green);
criterion_main!(benches);
