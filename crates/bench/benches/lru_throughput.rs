//! Microbench: LRU cache access throughput — the innermost loop of every
//! simulation in the workspace (S1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use parapage::prelude::*;

fn seqs() -> Vec<(&'static str, Vec<PageId>, usize)> {
    let n = 100_000;
    vec![
        (
            "hit_heavy_cyclic",
            (0..n).map(|i| PageId(i as u64 % 64)).collect(),
            256,
        ),
        (
            "miss_heavy_cyclic",
            (0..n).map(|i| PageId(i as u64 % 512)).collect(),
            256,
        ),
        (
            "zipf_mixed",
            {
                let mut b = SeqBuilder::new(ProcId(0), 1);
                b.zipf(4096, 0.9, n);
                b.build()
            },
            256,
        ),
    ]
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_access");
    group.sample_size(20);
    for (name, seq, cap) in seqs() {
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_function(name, |b| {
            b.iter_batched(
                || LruCache::new(cap),
                |mut cache| {
                    let mut misses = 0u64;
                    for &p in &seq {
                        if !cache.access(p).is_hit() {
                            misses += 1;
                        }
                    }
                    black_box(misses)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_resize(c: &mut Criterion) {
    let seq: Vec<PageId> = (0..50_000).map(|i| PageId(i as u64 % 300)).collect();
    c.bench_function("lru_resize_oscillation", |b| {
        b.iter_batched(
            || LruCache::new(256),
            |mut cache| {
                for (i, &p) in seq.iter().enumerate() {
                    if i % 1000 == 0 {
                        cache.resize(if (i / 1000) % 2 == 0 { 64 } else { 256 });
                    }
                    black_box(cache.access(p));
                }
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_lru, bench_resize);
criterion_main!(benches);
