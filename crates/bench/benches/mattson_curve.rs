//! Microbench: Mattson single-pass miss curve (S2) versus running one LRU
//! simulation per capacity — the speedup that makes the green-OPT DP and
//! the lower-bound calculator affordable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use parapage::prelude::*;

fn workload(n: usize) -> Vec<PageId> {
    let mut b = SeqBuilder::new(ProcId(0), 2);
    b.zipf(2048, 0.8, n);
    b.build()
}

fn bench_curve(c: &mut Criterion) {
    let seq = workload(100_000);
    let mut group = c.benchmark_group("miss_curve");
    group.sample_size(15);
    group.throughput(Throughput::Elements(seq.len() as u64));

    group.bench_function("mattson_single_pass", |b| {
        b.iter(|| black_box(miss_curve(&seq, 512)))
    });

    group.bench_function("naive_per_capacity_x8", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for cap in [1usize, 2, 4, 16, 64, 128, 256, 512] {
                let mut cache = LruCache::new(cap);
                total += seq.iter().filter(|&&p| !cache.access(p).is_hit()).count() as u64;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_curve);
criterion_main!(benches);
