//! Microbench: Belady MIN simulation (S1) — the per-processor component of
//! the certified `T_OPT` lower bound.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use parapage::prelude::*;

fn bench_belady(c: &mut Criterion) {
    let n = 100_000;
    let zipf = {
        let mut b = SeqBuilder::new(ProcId(0), 3);
        b.zipf(2048, 0.8, n);
        b.build()
    };
    let cyclic: Vec<PageId> = (0..n).map(|i| PageId(i as u64 % 700)).collect();

    let mut group = c.benchmark_group("belady_min");
    group.sample_size(15);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("zipf", |b| b.iter(|| black_box(min_misses(&zipf, 256))));
    group.bench_function("cyclic_thrash", |b| {
        b.iter(|| black_box(min_misses(&cyclic, 256)))
    });
    group.finish();
}

criterion_group!(benches, bench_belady);
criterion_main!(benches);
