//! The benchmark suite's own determinism contract: every entry's digest
//! must match between its single-threaded and multi-threaded legs, and
//! the whole report must be identical across pool widths.

use std::sync::Mutex;

use parapage_bench::suite::{run_suite, Digest};

/// Serializes tests that set the global pool width.
static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn quick_suite_is_deterministic_across_legs() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let report = run_suite(true, 42, 8);
    for entry in &report.entries {
        assert!(
            entry.deterministic(),
            "entry `{}` digests diverge: {:#018x} (1 thread) vs {:#018x} ({} threads)",
            entry.name,
            entry.digest_base,
            entry.digest_par,
            report.threads_par
        );
    }
    assert!(report.deterministic());
}

#[test]
fn suite_report_is_stable_across_pool_widths() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Two full quick suites at different widths: wall times differ, but
    // every digest (the actual computation results) must match.
    let narrow = run_suite(true, 7, 2);
    let wide = run_suite(true, 7, 8);
    let digests = |r: &parapage_bench::suite::SuiteReport| -> Vec<(&'static str, u64, u64)> {
        r.entries
            .iter()
            .map(|e| (e.name, e.digest_base, e.digest_par))
            .collect()
    };
    assert_eq!(digests(&narrow), digests(&wide));
}

#[test]
fn digest_is_order_sensitive() {
    let mut a = Digest::new();
    a.write("1");
    a.write("2");
    let mut b = Digest::new();
    b.write("2");
    b.write("1");
    assert_ne!(a.finish(), b.finish(), "digest must detect reordering");
}
