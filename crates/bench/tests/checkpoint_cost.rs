//! Regression pin on the WAL's size advantage: the per-epoch incremental
//! delta stream must stay well below the full-snapshot stream on the
//! suite's own workload, and both byte counts must be deterministic.

use std::sync::Mutex;

use parapage_bench::suite::{checkpoint_cost, EntryResult, SuiteReport};

/// Serializes tests against others that set the global pool width.
static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn wal_deltas_cost_less_than_half_of_full_snapshots() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let full = checkpoint_cost(true, 42, false);
    let wal = checkpoint_cost(true, 42, true);
    assert_eq!(
        full.runs, wal.runs,
        "both modes must checkpoint every epoch"
    );
    let (full_bytes, wal_bytes) = (full.bytes.unwrap(), wal.bytes.unwrap());
    assert!(full_bytes > 0 && wal_bytes > 0);
    assert!(
        wal_bytes * 2 < full_bytes,
        "WAL deltas ({wal_bytes} bytes over {} epochs) must cost less than half the \
         full snapshots ({full_bytes} bytes) — the O(changes) advantage regressed",
        wal.runs
    );
}

fn fast_entry() -> EntryResult {
    EntryResult {
        name: "sweep/fake",
        parallel: true,
        runs: 10,
        secs_base: 3.0,
        secs_par: 1.0,
        digest_base: 0xabcd,
        digest_par: 0xabcd,
        bytes: None,
    }
}

fn gate_line(json: &str) -> String {
    json.lines()
        .find(|l| l.trim_start().starts_with("\"gate\""))
        .expect("gate object present")
        .to_string()
}

/// `host_cores` must appear inside the gate object when the gate PASSES —
/// not only on the waiver path. A consumer deciding whether a pass was a
/// real multi-core win needs the core count either way.
#[test]
fn gate_json_emits_host_cores_when_gate_passes() {
    let report = SuiteReport {
        entries: vec![fast_entry()],
        threads_par: 4,
        host_cores: 8,
        quick: false,
        seed: 1,
    };
    assert!(report.gate_enforced() && report.gate_passed());
    let line = gate_line(&report.to_json("test"));
    assert!(
        line.contains("\"host_cores\": 8"),
        "gate object lost host_cores on the passing path: {line}"
    );
    assert!(line.contains("\"passed\": true"), "{line}");
    assert!(line.contains("\"waived_reason\": null"), "{line}");
}

/// ... and on the waiver path (single-core host), where it always was.
#[test]
fn gate_json_emits_host_cores_when_gate_waived() {
    let report = SuiteReport {
        entries: vec![fast_entry()],
        threads_par: 4,
        host_cores: 1,
        quick: false,
        seed: 1,
    };
    assert!(!report.gate_enforced());
    let line = gate_line(&report.to_json("test"));
    assert!(
        line.contains("\"host_cores\": 1"),
        "gate object lost host_cores on the waiver path: {line}"
    );
    assert!(
        line.contains("\"waived_reason\": \"single-core host\""),
        "{line}"
    );
}

/// The gate's host_cores agrees with the top-level field (one source of
/// truth serialized twice, never two diverging counts).
#[test]
fn gate_json_host_cores_matches_top_level() {
    let report = SuiteReport {
        entries: vec![fast_entry()],
        threads_par: 2,
        host_cores: 6,
        quick: true,
        seed: 3,
    };
    let json = report.to_json("test");
    let top = json
        .lines()
        .find(|l| l.trim_start().starts_with("\"host_cores\""))
        .expect("top-level host_cores");
    assert!(top.contains("6"));
    assert!(gate_line(&json).contains("\"host_cores\": 6"));
}

#[test]
fn checkpoint_byte_counts_are_deterministic() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for wal in [false, true] {
        let a = checkpoint_cost(true, 7, wal);
        let b = checkpoint_cost(true, 7, wal);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.bytes, b.bytes, "wal={wal}: byte count not reproducible");
        assert_eq!(a.digest, b.digest);
    }
}
