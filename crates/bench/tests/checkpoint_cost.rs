//! Regression pin on the WAL's size advantage: the per-epoch incremental
//! delta stream must stay well below the full-snapshot stream on the
//! suite's own workload, and both byte counts must be deterministic.

use std::sync::Mutex;

use parapage_bench::suite::checkpoint_cost;

/// Serializes tests against others that set the global pool width.
static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn wal_deltas_cost_less_than_half_of_full_snapshots() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let full = checkpoint_cost(true, 42, false);
    let wal = checkpoint_cost(true, 42, true);
    assert_eq!(
        full.runs, wal.runs,
        "both modes must checkpoint every epoch"
    );
    let (full_bytes, wal_bytes) = (full.bytes.unwrap(), wal.bytes.unwrap());
    assert!(full_bytes > 0 && wal_bytes > 0);
    assert!(
        wal_bytes * 2 < full_bytes,
        "WAL deltas ({wal_bytes} bytes over {} epochs) must cost less than half the \
         full snapshots ({full_bytes} bytes) — the O(changes) advantage regressed",
        wal.runs
    );
}

#[test]
fn checkpoint_byte_counts_are_deterministic() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for wal in [false, true] {
        let a = checkpoint_cost(true, 7, wal);
        let b = checkpoint_cost(true, 7, wal);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.bytes, b.bytes, "wal={wal}: byte count not reproducible");
        assert_eq!(a.digest, b.digest);
    }
}
