//! Regression pins on the single-thread `ops/*` microbench entries.
//!
//! The hot-path rewrite (packed intrusive LRU, fused `access_if_fits`,
//! batched grant dispatch, arena-backed ledgers) is only worth its
//! complexity while the throughput it bought stays bought. The floors in
//! [`OPS_FLOORS`] pin that: a release build whose `ops/*` rate drops
//! below its floor fails here and in the `parapage bench` exit gate.
//!
//! The floors are wall-clock assertions, so they only run on optimized
//! builds (`cargo test --release`, which is what CI's bench-regression
//! job executes); a debug `cargo test` still exercises the entries but
//! checks determinism and work counts only.

use std::sync::Mutex;

use parapage_bench::suite::{run_ops_suite, OPS_FLOORS};

/// Serializes tests against others that set the global pool width.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Every pinned entry name must exist in the suite — a silently renamed
/// entry would otherwise turn its floor into a vacuous pass.
#[test]
fn every_pinned_entry_exists_and_counts_work() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let report = run_ops_suite(true, 42);
    for &(name, floor) in OPS_FLOORS {
        assert!(floor > 0.0, "{name}: floor must be positive");
        let entry = report
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("pinned entry {name} missing from the ops recipe"));
        assert!(entry.runs > 0, "{name}: zero work units");
        assert!(
            !entry.parallel,
            "{name}: ops entries are single-thread microbenches"
        );
    }
}

/// The ops entries are pure functions of (recipe size, seed): two runs
/// must agree digest-for-digest, and the two legs of one run likewise.
#[test]
fn ops_entries_are_deterministic() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = run_ops_suite(true, 7);
    let b = run_ops_suite(true, 7);
    assert!(a.deterministic(), "legs diverged within one run");
    for (ea, eb) in a.entries.iter().zip(&b.entries) {
        assert_eq!(ea.name, eb.name);
        assert_eq!(ea.runs, eb.runs, "{}: work count not reproducible", ea.name);
        assert_eq!(
            ea.digest_base, eb.digest_base,
            "{}: digest not reproducible",
            ea.name
        );
    }
}

/// The release-build throughput floors. Meaningless for unoptimized
/// builds, so a debug run reports a skip and exits green.
#[test]
fn ops_throughput_meets_release_floors() {
    if cfg!(debug_assertions) {
        eprintln!("ops floors skipped: debug build (run with --release to enforce)");
        return;
    }
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let report = run_ops_suite(true, 42);
    let failures = report.ops_floor_failures();
    assert!(
        failures.is_empty(),
        "ops floors regressed: {}",
        failures
            .iter()
            .map(|(name, rate, floor)| format!("{name} {rate:.0}/s < floor {floor:.0}/s"))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
