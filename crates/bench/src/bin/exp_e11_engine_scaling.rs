//! E11 — systems table: simulator throughput (requests/second) as `p`
//! scales, per engine/policy. Not a paper claim; it characterizes the
//! testbed itself, so readers can judge what problem sizes are reachable.

use std::time::Instant;

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};

fn main() {
    let cli = parse_cli();
    let ps: &[usize] = if cli.quick {
        &[4, 16]
    } else {
        &[4, 16, 64, 256]
    };
    let len = if cli.quick { 2000 } else { 5000 };

    let mut table = Table::new([
        "p",
        "requests",
        "DET-PAR Mreq/s",
        "RAND-PAR Mreq/s",
        "SHARED-LRU Mreq/s",
        "grants (DET)",
    ]);
    for &p in ps {
        let k = 8 * p;
        let params = ModelParams::new(p, k, 16);
        let w = build_workload(&recipes::mixed_specs(p, k, len), cli.seed);
        let total = w.total_requests() as f64;
        let opts = EngineOpts::default();

        let t0 = Instant::now();
        let mut det = DetPar::new(&params);
        let res_det = run_engine(&mut det, w.seqs(), &params, &opts).unwrap();
        let det_rate = total / t0.elapsed().as_secs_f64() / 1e6;

        let t1 = Instant::now();
        let mut rnd = RandPar::new(&params, cli.seed);
        let _ = run_engine(&mut rnd, w.seqs(), &params, &opts).unwrap();
        let rnd_rate = total / t1.elapsed().as_secs_f64() / 1e6;

        let t2 = Instant::now();
        let _ = run_shared_lru(w.seqs(), k, params.s);
        let shared_rate = total / t2.elapsed().as_secs_f64() / 1e6;

        table.row([
            p.to_string(),
            format!("{}", w.total_requests()),
            format!("{det_rate:.2}"),
            format!("{rnd_rate:.2}"),
            format!("{shared_rate:.2}"),
            res_det.grants_issued.to_string(),
        ]);
    }
    emit("E11: simulator throughput scaling", &table, &cli);
}
