//! E12 — the paper's future-work scenario (§5): sequences that *share*
//! pages. The model's disjointness assumption is deliberately violated with
//! a common hot set; partition-based algorithms (DET-PAR and friends)
//! replicate the shared pages in every partition, while the global shared
//! LRU deduplicates them — quantifying the gap the open problem is about.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli};

fn main() {
    let cli = parse_cli();
    let p = if cli.quick { 8 } else { 16 };
    let k = 16 * p;
    let s = 16u64;
    let len = if cli.quick { 3000 } else { 8000 };
    let params = ModelParams::new(p, k, s);

    // Sweep the sharing intensity: share_every = ∞ (disjoint) … 2 (half the
    // accesses hit the shared set).
    let mut table = Table::new([
        "share freq",
        "shared width",
        "DET-PAR",
        "STATIC",
        "SHARED-LRU",
        "DET/SHARED",
    ]);
    for &(every, label) in &[
        (usize::MAX, "never"),
        (8usize, "1/8"),
        (4, "1/4"),
        (2, "1/2"),
    ] {
        let shared_width = k / 2;
        let private_width = k / 8;
        let seqs = if every == usize::MAX {
            // Disjoint control with the same request volume.
            (0..p)
                .map(|x| {
                    let mut b = SeqBuilder::new(ProcId(x as u32), cli.seed);
                    b.cyclic(private_width, len);
                    b.build()
                })
                .collect::<Vec<_>>()
        } else {
            shared_hotset_workload(p, private_width, shared_width, every, len)
        };

        let opts = EngineOpts::default();
        let mut det = DetPar::new(&params);
        let det_ms = run_engine(&mut det, &seqs, &params, &opts)
            .unwrap()
            .makespan;
        let mut st = StaticPartition::new(&params);
        let st_ms = run_engine(&mut st, &seqs, &params, &opts).unwrap().makespan;
        let sh_ms = run_shared_lru(&seqs, k, s).makespan;

        table.row([
            label.to_string(),
            shared_width.to_string(),
            det_ms.to_string(),
            st_ms.to_string(),
            sh_ms.to_string(),
            format!("{:.2}", det_ms as f64 / sh_ms as f64),
        ]);
    }
    emit(
        "E12: page sharing (paper §5 future work) — partitioning replicates, \
         a shared cache deduplicates",
        &table,
        &cli,
    );
    println!(
        "Sharing hurts every policy: partitioning replicates the hot set in\n\
         every partition (DET-PAR's makespan grows several-fold), while the\n\
         shared cache deduplicates it but loses isolation on the private\n\
         sets. Neither dominates across the sweep — which is exactly why the\n\
         paper's conclusion calls paging with shared pages an open problem."
    );
}
