//! E9 — ablations of the `Θ(·)` design constants:
//!
//! * the box-height distribution exponent (`Pr[j] ∝ j^-e`): the paper's
//!   `e = 2` equalizes impact contributions; `e = 1` over-spends on tall
//!   boxes, `e = 3` starves them (hurts green ratio on tall-box workloads);
//! * RAND-PAR's primary-part length multiplier: longer primaries help
//!   time-bound workloads and waste time on impact-bound ones.

use parapage::core::RandParConfig;
use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn green_ablation(cli: &parapage_bench::Cli) {
    let p = 32usize;
    let k = 8 * p;
    let params = ModelParams::new(p, k, 16);
    let seq = recipes::green_sequence(k, cli.seed);
    let opt = green_opt_normalized(&seq, &params);
    let exps = [1.0f64, 1.5, 2.0, 2.5, 3.0];
    let seeds = if cli.quick { 4u64 } else { 12 };

    let rows: Vec<(f64, f64, f64)> = exps
        .par_iter()
        .map(|&e| {
            let dist = BoxHeightDist::with_exponent(&params, e);
            let ratios: Vec<f64> = (0..seeds)
                .map(|seed| {
                    let mut g = RandGreen::with_dist(dist.clone(), cli.seed ^ seed);
                    run_green(&mut g, &seq, &params).impact as f64 / opt.impact as f64
                })
                .collect();
            let s = summarize(&ratios);
            (e, s.mean, s.ci95)
        })
        .collect();

    let mut table = Table::new(["exponent", "impact ratio", "ci95"]);
    for (e, mean, ci) in rows {
        table.row([format!("{e:.1}"), format!("{mean:.3}"), format!("{ci:.3}")]);
    }
    emit(
        "E9a: RAND-GREEN height-distribution exponent (paper: 2)",
        &table,
        cli,
    );
}

fn rand_par_ablation(cli: &parapage_bench::Cli) {
    let p = 16usize;
    let k = 16 * p;
    let params = ModelParams::new(p, k, 16);
    let len = if cli.quick { 1500 } else { 4000 };
    let w = build_workload(&recipes::mixed_specs(p, k, len), cli.seed);
    let lb = opt_lower_bound(w.seqs(), k, params.s);

    let configs: Vec<(String, RandParConfig)> = vec![
        (
            "exp=1".into(),
            RandParConfig {
                exponent: 1.0,
                ..Default::default()
            },
        ),
        ("exp=2 (paper)".into(), RandParConfig::default()),
        (
            "exp=3".into(),
            RandParConfig {
                exponent: 3.0,
                ..Default::default()
            },
        ),
        (
            "primary×2".into(),
            RandParConfig {
                primary_factor: 2,
                ..Default::default()
            },
        ),
        (
            "primary×4".into(),
            RandParConfig {
                primary_factor: 4,
                ..Default::default()
            },
        ),
    ];
    let seeds = if cli.quick { 3u64 } else { 6 };

    let rows: Vec<(String, f64, f64)> = configs
        .into_par_iter()
        .map(|(name, cfg)| {
            let ratios: Vec<f64> = (0..seeds)
                .map(|seed| {
                    let mut rp = RandPar::with_config(&params, cfg, cli.seed ^ seed);
                    recipes::run_policy(&mut rp, &w, &params).makespan as f64 / lb as f64
                })
                .collect();
            let s = summarize(&ratios);
            (name, s.mean, s.ci95)
        })
        .collect();

    let mut table = Table::new(["config", "makespan/LB", "ci95"]);
    for (name, mean, ci) in rows {
        table.row([name, format!("{mean:.3}"), format!("{ci:.3}")]);
    }
    emit("E9b: RAND-PAR constants (mixed workload)", &table, cli);
}

fn main() {
    let cli = parse_cli();
    green_ablation(&cli);
    rand_par_ablation(&cli);
}
