//! E15 — the paper's §1 critique of fixed-rate models, measured.
//!
//! Early parallel-paging work assumed every processor advances one request
//! per round regardless of hits/misses, scoring policies by total miss
//! count. The paper argues this "sequentializes the interleaving" and hides
//! the real interactions.
//!
//! The demonstration: two static allocations engineered to incur **the same
//! total number of misses** — the fixed-rate model scores them as exact
//! ties — while their true makespans differ by ~3×, because it matters
//! enormously *which* processor eats the misses (starving one long
//! sequence puts `s·L` on the critical path; starving three short ones
//! puts only `s·L/3` there).

use parapage::prelude::*;
use parapage::sched::run_interleaved_partition;
use parapage_bench::{emit, parse_cli};

struct FixedAlloc(Vec<usize>, u64);
impl BoxAllocator for FixedAlloc {
    fn grant(&mut self, x: ProcId, _now: u64) -> Grant {
        let h = self.0[x.idx()];
        Grant {
            height: h.max(1),
            duration: self.1 * h.max(1) as u64,
        }
    }
    fn on_proc_finished(&mut self, _x: ProcId, _now: u64) {}
    fn name(&self) -> &'static str {
        "fixed-partition"
    }
}

fn main() {
    let cli = parse_cli();
    let k = 64usize;
    let s = 16u64;
    let long = if cli.quick { 6000 } else { 24000 };
    let width = 20usize; // loop width: fits in 20 pages, thrashes in 4
    let params = ModelParams::new(4, k, s);

    // Proc 0 is 3x longer than procs 1-3.
    let specs: Vec<SeqSpec> = (0..4)
        .map(|x| SeqSpec::Cyclic {
            width,
            len: if x == 0 { long } else { long / 3 },
        })
        .collect();
    let w = build_workload(&specs, cli.seed);

    // A starves the long processor; B starves the three short ones.
    // Both incur ~`long` misses in total.
    let alloc_a = vec![4usize, 20, 20, 20];
    let alloc_b = vec![20usize, 4, 4, 4];

    let mut table = Table::new([
        "allocation",
        "total misses (fixed-rate model)",
        "true makespan",
    ]);
    let mut results = Vec::new();
    for (name, alloc) in [
        ("A: starve the long proc", &alloc_a),
        ("B: starve the short procs", &alloc_b),
    ] {
        let inter = run_interleaved_partition(w.seqs(), alloc);
        let mut policy = FixedAlloc(alloc.clone(), s);
        let res = run_engine(&mut policy, w.seqs(), &params, &EngineOpts::default()).unwrap();
        table.row([
            name.to_string(),
            inter.stats.misses.to_string(),
            res.makespan.to_string(),
        ]);
        results.push((inter.stats.misses, res.makespan));
    }
    emit(
        "E15: the fixed-rate (interleaved) model cannot tell these apart",
        &table,
        &cli,
    );
    let miss_ratio = results[0].0 as f64 / results[1].0.max(1) as f64;
    let mk_ratio = results[0].1 as f64 / results[1].1.max(1) as f64;
    println!(
        "fixed-rate model verdict: {miss_ratio:.2}x (a tie). \
         true-model verdict: {mk_ratio:.2}x.\n\
         Counting misses at a fixed progress rate hides *whose* time the \
         misses consume —\nexactly the interaction the paper's model \
         restores (§1)."
    );
}
