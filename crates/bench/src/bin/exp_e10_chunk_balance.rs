//! E10 — Observation 1: within RAND-PAR, the primary and secondary parts of
//! each chunk have equal expected length and memory impact.
//!
//! Runs RAND-PAR instrumented and aggregates the chunk log, grouped by the
//! active-processor count `r` at chunk start.

use std::collections::BTreeMap;

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};

fn main() {
    let cli = parse_cli();
    let p = 32usize;
    let k = 16 * p;
    let params = ModelParams::new(p, k, 16);
    let len = if cli.quick { 1500 } else { 5000 };
    // Uniform lengths with varied widths so completions stagger and several
    // phases occur.
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| SeqSpec::Cyclic {
            width: (4 << (x % 5)).min(k / 2),
            len: len * (1 + x % 3),
        })
        .collect();
    let w = build_workload(&specs, cli.seed);

    let mut rp = RandPar::new(&params, cli.seed);
    let _ = recipes::run_policy(&mut rp, &w, &params);

    // Group chunks by r (active processors at chunk start).
    let mut by_r: BTreeMap<usize, (u128, u128, u128, u128, usize)> = BTreeMap::new();
    for c in rp.chunks() {
        let e = by_r.entry(c.r).or_insert((0, 0, 0, 0, 0));
        e.0 += c.primary_len as u128;
        e.1 += c.secondary_len as u128;
        e.2 += c.primary_impact;
        e.3 += c.secondary_impact;
        e.4 += 1;
    }

    let mut table = Table::new([
        "r",
        "chunks",
        "Σ primary len",
        "Σ secondary len",
        "len ratio",
        "impact ratio",
    ]);
    for (r, (l1, l2, i1, i2, n)) in &by_r {
        table.row([
            r.to_string(),
            n.to_string(),
            l1.to_string(),
            l2.to_string(),
            format!("{:.3}", *l2 as f64 / *l1 as f64),
            format!("{:.3}", *i2 as f64 / *i1 as f64),
        ]);
    }
    emit(
        "E10: RAND-PAR chunk balance by active count r (Observation 1)",
        &table,
        &cli,
    );

    let tot: (u128, u128, u128, u128) = rp.chunks().iter().fold((0, 0, 0, 0), |acc, c| {
        (
            acc.0 + c.primary_len as u128,
            acc.1 + c.secondary_len as u128,
            acc.2 + c.primary_impact,
            acc.3 + c.secondary_impact,
        )
    });
    println!(
        "overall: {} chunks, E[l2]/l1 = {:.3}, E[impact2]/impact1 = {:.3} \
         (Observation 1 predicts Θ(1) for both)",
        rp.chunks().len(),
        tot.1 as f64 / tot.0 as f64,
        tot.3 as f64 / tot.2 as f64
    );
}
