//! E1 — Theorem 1: RAND-GREEN is `O(log p)`-competitive for green paging.
//!
//! Sweeps `p` (with `k = 8p`), measures the memory-impact ratio of
//! RAND-GREEN (mean over seeds) and the deterministic ADAPT-GREEN baseline
//! against the exact offline optimum (DP over normalized box profiles), and
//! fits the ratio against `log₂ p`.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let ps: &[usize] = if cli.quick {
        &[4, 16, 64]
    } else {
        &[4, 8, 16, 32, 64, 128, 256]
    };
    let seeds: u64 = if cli.quick { 4 } else { 16 };

    #[allow(clippy::type_complexity)]
    let rows: Vec<(usize, f64, f64, f64, f64, f64)> = ps
        .par_iter()
        .map(|&p| {
            let k = 8 * p;
            let params = ModelParams::new(p, k, 16);
            let seq = recipes::green_sequence(k, cli.seed);
            let opt = green_opt_normalized(&seq, &params);
            let ratios: Vec<f64> = (0..seeds)
                .map(|seed| {
                    let run =
                        run_green(&mut RandGreen::new(&params, cli.seed ^ seed), &seq, &params);
                    run.impact as f64 / opt.impact as f64
                })
                .collect();
            let s = summarize(&ratios);
            let ad = run_green(&mut AdaptiveGreen::new(&params), &seq, &params);
            let un = run_green(&mut UniversalGreen::new(&params), &seq, &params);
            (
                p,
                opt.impact as f64,
                s.mean,
                s.ci95,
                ad.impact as f64 / opt.impact as f64,
                un.impact as f64 / opt.impact as f64,
            )
        })
        .collect();

    let mut table = Table::new([
        "p",
        "log2(p)",
        "OPT impact",
        "RAND-GREEN ratio",
        "ci95",
        "ADAPT-GREEN ratio",
        "UNIV-GREEN ratio",
    ]);
    let mut points = Vec::new();
    for &(p, opt, mean, ci, ad, un) in &rows {
        let lg = (p as f64).log2();
        points.push((lg, mean));
        table.row([
            p.to_string(),
            format!("{lg:.0}"),
            format!("{opt:.0}"),
            format!("{mean:.3}"),
            format!("{ci:.3}"),
            format!("{ad:.3}"),
            format!("{un:.3}"),
        ]);
    }
    emit(
        "E1: RAND-GREEN competitive ratio vs log p (Theorem 1)",
        &table,
        &cli,
    );
    if let Some(fit) = fit_linear(&points) {
        println!(
            "fit: ratio = {:.3} + {:.3}·log2(p)   (R² = {:.3})",
            fit.intercept, fit.slope, fit.r2
        );
        println!("Theorem 1 predicts a positive, bounded slope (O(log p) growth).");
    }
}
