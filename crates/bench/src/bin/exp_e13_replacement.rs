//! E13 — the WLOG check: the paper fixes LRU inside boxes "without loss of
//! generality" (up to constants). This experiment quantifies those
//! constants: DET-PAR run with LRU, FIFO, Clock, LFU, ARC, and 2Q inside
//! the boxes, on each workload family.
//!
//! The takeaway the model predicts: the *partitioning* decision dominates;
//! swapping the replacement policy moves makespan by small constant
//! factors only.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn run_with(w: &Workload, params: &ModelParams, name: &str) -> u64 {
    let opts = EngineOpts::default();
    let mut det = DetPar::new(params);
    match name {
        "LRU" => run_engine_with(&mut det, w.seqs(), params, &opts, |_| LruCache::new(0)).unwrap(),
        "FIFO" => {
            run_engine_with(&mut det, w.seqs(), params, &opts, |_| FifoCache::new(0)).unwrap()
        }
        "Clock" => {
            run_engine_with(&mut det, w.seqs(), params, &opts, |_| ClockCache::new(0)).unwrap()
        }
        "LFU" => run_engine_with(&mut det, w.seqs(), params, &opts, |_| LfuCache::new(0)).unwrap(),
        "ARC" => run_engine_with(&mut det, w.seqs(), params, &opts, |_| ArcCache::new(0)).unwrap(),
        "2Q" => {
            run_engine_with(&mut det, w.seqs(), params, &opts, |_| TwoQueueCache::new(0)).unwrap()
        }
        "LIRS" => {
            run_engine_with(&mut det, w.seqs(), params, &opts, |_| LirsCache::new(0)).unwrap()
        }
        _ => unreachable!(),
    }
    .makespan
}

fn main() {
    let cli = parse_cli();
    let p = if cli.quick { 8 } else { 16 };
    let k = 16 * p;
    let params = ModelParams::new(p, k, 16);
    let len = if cli.quick { 2000 } else { 5000 };

    let policies = ["LRU", "FIFO", "Clock", "LFU", "ARC", "2Q", "LIRS"];
    let mut table = Table::new([
        "workload", "LRU", "FIFO", "Clock", "LFU", "ARC", "2Q", "LIRS", "max/min",
    ]);
    for (fam, specs) in [
        ("mixed", recipes::mixed_specs(p, k, len)),
        ("skewed", recipes::skewed_specs(p, k, len)),
        ("uniform", recipes::uniform_specs(p, k, len)),
    ] {
        let w = build_workload(&specs, cli.seed);
        // One engine run per replacement policy; the pool returns them in
        // column order regardless of thread count.
        let makespans: Vec<u64> = policies
            .par_iter()
            .map(|n| run_with(&w, &params, n))
            .collect();
        let lo = *makespans.iter().min().unwrap() as f64;
        let hi = *makespans.iter().max().unwrap() as f64;
        let mut row = vec![fam.to_string()];
        row.extend(makespans.iter().map(|m| m.to_string()));
        row.push(format!("{:.2}", hi / lo));
        table.row(row);
    }
    emit(
        "E13: replacement policy inside DET-PAR boxes (the paper's LRU WLOG)",
        &table,
        &cli,
    );
    println!(
        "The spread (max/min) stays a small constant — consistent with the\n\
         WLOG: partitioning, not replacement, dominates. (ARC is the\n\
         outlier where it appears: its scan resistance actively refuses to\n\
         cache pure loops, the pattern these workloads are made of.)"
    );
}
