//! E6 — Corollary 3: DET-PAR is simultaneously `O(log p)`-competitive for
//! *mean completion time*.
//!
//! Reports each policy's mean completion time normalized by the mean of the
//! per-processor Belady floors (a lower bound on the optimal mean
//! completion time, since every processor individually needs at least its
//! floor).

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let ps: &[usize] = if cli.quick { &[4, 8] } else { &[4, 8, 16, 32] };

    let rows: Vec<(usize, f64, Vec<f64>)> = ps
        .par_iter()
        .map(|&p| {
            let k = 16 * p;
            let params = ModelParams::new(p, k, 16);
            let len = 3000;
            let w = build_workload(&recipes::mixed_specs(p, k, len), cli.seed);
            let mean_floor: f64 = w
                .seqs()
                .iter()
                .map(|seq| (seq.len() as u64 + (params.s - 1) * min_misses(seq, k)) as f64)
                .sum::<f64>()
                / p as f64;

            let mut ratios = Vec::new();
            let mut det = DetPar::new(&params);
            ratios.push(recipes::run_policy(&mut det, &w, &params).mean_completion() / mean_floor);
            let mut rnd = RandPar::new(&params, cli.seed);
            ratios.push(recipes::run_policy(&mut rnd, &w, &params).mean_completion() / mean_floor);
            let mut st = StaticPartition::new(&params);
            ratios.push(recipes::run_policy(&mut st, &w, &params).mean_completion() / mean_floor);
            let mut pm = PropMissPartition::new(&params);
            ratios.push(recipes::run_policy(&mut pm, &w, &params).mean_completion() / mean_floor);
            ratios.push(run_shared_lru(w.seqs(), k, params.s).mean_completion() / mean_floor);
            (p, mean_floor, ratios)
        })
        .collect();

    let mut table = Table::new([
        "p",
        "mean floor",
        "DET-PAR",
        "RAND-PAR",
        "STATIC",
        "PROP-MISS",
        "SHARED-LRU",
    ]);
    let mut det_points = Vec::new();
    for (p, floor, ratios) in &rows {
        det_points.push(((*p as f64).log2(), ratios[0]));
        table.row([
            p.to_string(),
            format!("{floor:.0}"),
            format!("{:.2}", ratios[0]),
            format!("{:.2}", ratios[1]),
            format!("{:.2}", ratios[2]),
            format!("{:.2}", ratios[3]),
            format!("{:.2}", ratios[4]),
        ]);
    }
    emit(
        "E6: mean completion time / mean floor (Corollary 3)",
        &table,
        &cli,
    );
    if let Some(fit) = fit_linear(&det_points) {
        println!(
            "DET-PAR fit: ratio = {:.3} + {:.3}·log2(p)   (R² = {:.3})",
            fit.intercept, fit.slope, fit.r2
        );
    }
}
