//! E2 — Lemma 1: under the distribution `Pr[j] ∝ k²/(j²p²)`, every box
//! height contributes the same expected memory impact `Θ(k²s/p²)`.
//!
//! Monte-Carlo estimates `E[X_j·Y]` (indicator of height `j` times box
//! impact) per height and compares against the analytic value; the flatness
//! across heights is the lemma.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = parse_cli();
    let p = 32usize;
    let k = 8 * p;
    let s = 16u64;
    let params = ModelParams::new(p, k, s);
    let dist = BoxHeightDist::paper(&params);
    let n: u64 = if cli.quick { 200_000 } else { 2_000_000 };

    let mut rng = StdRng::seed_from_u64(cli.seed);
    let heights = dist.heights().to_vec();
    let mut impact_sum = vec![0u128; heights.len()];
    let mut count = vec![0u64; heights.len()];
    for _ in 0..n {
        let j = dist.sample(&mut rng);
        let idx = heights.iter().position(|&h| h == j).unwrap();
        count[idx] += 1;
        impact_sum[idx] += (s as u128) * (j as u128) * (j as u128);
    }

    let flat_theory = (k as f64 / p as f64).powi(2) * s as f64; // s·(k/p)² per level (up to the normalization)
    let mut table = Table::new([
        "height j",
        "Pr[j] (theory)",
        "Pr[j] (empirical)",
        "E[X·Y] per draw",
        "normalized",
    ]);
    for (idx, &j) in heights.iter().enumerate() {
        let emp_pr = count[idx] as f64 / n as f64;
        let exy = impact_sum[idx] as f64 / n as f64;
        table.row([
            j.to_string(),
            format!("{:.5}", dist.probs()[idx]),
            format!("{emp_pr:.5}"),
            format!("{exy:.1}"),
            format!("{:.3}", exy / (flat_theory * dist.probs()[0])),
        ]);
    }
    emit(
        "E2: per-height expected impact contribution is flat (Lemma 1)",
        &table,
        &cli,
    );
    let exys: Vec<f64> = (0..heights.len())
        .map(|i| impact_sum[i] as f64 / n as f64)
        .collect();
    let max = exys.iter().cloned().fold(f64::MIN, f64::max);
    let min = exys.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "max/min contribution across heights = {:.3} (Lemma 1 predicts ≈ 1)",
        max / min
    );
    println!(
        "expected impact per draw = {:.0}; per-level contribution × {} levels = {:.0}",
        dist.expected_impact(s),
        heights.len(),
        exys.iter().sum::<f64>()
    );
}
