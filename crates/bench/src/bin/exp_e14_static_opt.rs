//! E14 — the value of *dynamic* allocation: DET-PAR versus the **exact**
//! optimal static partition (computable in polynomial time from Mattson
//! curves), versus UCP (the best practical adaptive heuristic).
//!
//! The paper's whole subject is reallocating cache over time; this
//! experiment quantifies the gap between "the best you can do without ever
//! reallocating" (OPT-STATIC, an oracle that already knows the workloads)
//! and the online dynamic algorithms.

use parapage::analysis::{static_opt_makespan, static_opt_total_time};
use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};

fn main() {
    let cli = parse_cli();
    let p = if cli.quick { 8 } else { 16 };
    let k = 16 * p;
    let s = 16u64;
    let len = if cli.quick { 2000 } else { 6000 };
    let params = ModelParams::new(p, k, s);

    let mut table = Table::new([
        "workload",
        "OPT-STATIC mkspan",
        "DET-PAR",
        "UCP",
        "DET/OPT-STATIC",
        "OPT-STATIC Σtime",
        "DET Σtime",
    ]);

    for (fam, specs) in [
        ("mixed", recipes::mixed_specs(p, k, len)),
        ("skewed", recipes::skewed_specs(p, k, len)),
        ("phase-shift", {
            // Workload designed so NO static split is good: every processor
            // needs a lot of cache, but at different times.
            (0..p)
                .map(|x| SeqSpec::Phased {
                    phases: vec![
                        (if x % 2 == 0 { k / 2 } else { 4 }, len / 2),
                        (if x % 2 == 0 { 4 } else { k / 2 }, len - len / 2),
                    ],
                })
                .collect()
        }),
    ] {
        let w = build_workload(&specs, cli.seed);

        let st_mk = static_opt_makespan(w.seqs(), k, s);
        let st_tot = static_opt_total_time(w.seqs(), k, s);

        let opts = EngineOpts::default();
        let mut det = DetPar::new(&params);
        let det_res = run_engine(&mut det, w.seqs(), &params, &opts).unwrap();
        let mut ucp = UcpPartition::new(&params);
        let ucp_res = run_engine(&mut ucp, w.seqs(), &params, &opts).unwrap();

        let det_total: u64 = det_res.completions.iter().sum();
        table.row([
            fam.to_string(),
            st_mk.objective.to_string(),
            det_res.makespan.to_string(),
            ucp_res.makespan.to_string(),
            format!("{:.2}", det_res.makespan as f64 / st_mk.objective as f64),
            st_tot.objective.to_string(),
            det_total.to_string(),
        ]);
    }
    emit(
        "E14: dynamic policies vs the exact optimal static partition",
        &table,
        &cli,
    );
    println!(
        "OPT-STATIC is an offline oracle for the static class. On stationary\n\
         workloads it is hard to beat; on the phase-shift family no static\n\
         split works and the dynamic algorithms take the lead — the paper's\n\
         reason for existing."
    );
}
