//! E7 — Theorem 4 + Lemmas 8–9: on the adversarial instances, every online
//! pager built from green allocations pays a ratio over OPT that grows with
//! `p` (toward `Ω(log p / log log p)`), while the Lemma-8 offline schedule
//! stays suffix-dominated.
//!
//! Reported per `p`: the Lemma-8 OPT makespan (split into prefix/suffix
//! stages), the makespans of BB-GREEN (the explicit §4 black-box
//! construction), DET-PAR and RAND-PAR, and each ratio together with the
//! theory curve `log p / log log p`.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let pks: &[(usize, usize)] = if cli.quick {
        &[(8, 32), (16, 64)]
    } else {
        &[(8, 32), (16, 64), (32, 128), (64, 256), (128, 512)]
    };

    #[allow(clippy::type_complexity)]
    let rows: Vec<(usize, u64, u64, u64, u64, u64, u64)> = pks
        .par_iter()
        .map(|&(p, k)| {
            // Theorem 4 wants s > c·k; scale s with k.
            let cfg = AdversarialConfig::scaled(p, k, k as u64, 0.05);
            let inst = AdversarialInstance::build(cfg);
            let params = cfg.params();
            let seqs = inst.workload.seqs();
            let opts = EngineOpts::default();

            let sched = lemma8_makespan(&inst);

            let mut det = DetPar::new(&params);
            let det_ms = run_engine(&mut det, seqs, &params, &opts).unwrap().makespan;
            let mut rnd = RandPar::new(&params, cli.seed);
            let rnd_ms = run_engine(&mut rnd, seqs, &params, &opts).unwrap().makespan;
            let pagers: Vec<RandGreen> = (0..p as u64)
                .map(|i| RandGreen::new(&params, cli.seed ^ i))
                .collect();
            let mut bb = BlackboxGreenPacker::new(&params, pagers);
            let bb_ms = run_engine(&mut bb, seqs, &params, &opts).unwrap().makespan;

            (
                p,
                sched.prefix_time,
                sched.suffix_time,
                sched.makespan(),
                bb_ms,
                det_ms,
                rnd_ms,
            )
        })
        .collect();

    let mut table = Table::new([
        "p",
        "OPT prefix",
        "OPT suffix",
        "OPT total",
        "BB/OPT",
        "DET/OPT",
        "RAND/OPT",
        "logp/loglogp",
    ]);
    for &(p, pre, suf, opt, bb, det, rnd) in &rows {
        let lg = (p as f64).log2();
        let theory = lg / lg.log2().max(1.0);
        table.row([
            p.to_string(),
            pre.to_string(),
            suf.to_string(),
            opt.to_string(),
            format!("{:.3}", bb as f64 / opt as f64),
            format!("{:.3}", det as f64 / opt as f64),
            format!("{:.3}", rnd as f64 / opt as f64),
            format!("{theory:.2}"),
        ]);
    }
    emit(
        "E7: adversarial instances — green-ness forces growing ratios (Theorem 4)",
        &table,
        &cli,
    );
    println!(
        "All online columns must be ≥ 1 and grow with p; Corollaries 1-2 put\n\
         DET-PAR/RAND-PAR in the theorem's scope too — their O(log p) upper\n\
         bound caps how fast the growth can be."
    );
}
