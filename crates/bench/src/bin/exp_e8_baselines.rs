//! E8 — positioning against practical baselines (the paper's §1
//! motivation): the oblivious DET-PAR/RAND-PAR versus static partition,
//! adaptive proportional partition, and a globally shared LRU, across
//! workload families.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let p = if cli.quick { 8 } else { 16 };
    let k = 16 * p;
    let s = 16u64;
    let len = if cli.quick { 2000 } else { 6000 };
    let params = ModelParams::new(p, k, s);

    let families: Vec<(&str, Vec<SeqSpec>)> = vec![
        ("mixed", recipes::mixed_specs(p, k, len)),
        ("skewed", recipes::skewed_specs(p, k, len)),
        ("uniform", recipes::uniform_specs(p, k, len)),
        (
            "fresh-heavy",
            (0..p)
                .map(|x| {
                    if x % 2 == 0 {
                        SeqSpec::Fresh { len }
                    } else {
                        SeqSpec::Cyclic { width: k / 4, len }
                    }
                })
                .collect(),
        ),
    ];

    for (fam, specs) in families {
        let w = build_workload(&specs, cli.seed);
        let lb = opt_lower_bound(w.seqs(), k, s);

        let names = [
            "DET-PAR",
            "RAND-PAR",
            "STATIC",
            "PROP-MISS",
            "UCP",
            "SHARED-LRU",
        ];
        let results: Vec<RunResult> = (0..6usize)
            .into_par_iter()
            .map(|i| match i {
                0 => recipes::run_policy(&mut DetPar::new(&params), &w, &params),
                1 => recipes::run_policy(&mut RandPar::new(&params, cli.seed), &w, &params),
                2 => recipes::run_policy(&mut StaticPartition::new(&params), &w, &params),
                3 => recipes::run_policy(&mut PropMissPartition::new(&params), &w, &params),
                4 => recipes::run_policy(&mut UcpPartition::new(&params), &w, &params),
                _ => run_shared_lru(w.seqs(), k, s),
            })
            .collect();

        let mut table = Table::new(["policy", "makespan", "vs LB", "mean compl", "miss %"]);
        for (name, r) in names.iter().zip(&results) {
            table.row([
                name.to_string(),
                r.makespan.to_string(),
                format!("{:.2}", r.makespan as f64 / lb as f64),
                format!("{:.0}", r.mean_completion()),
                format!("{:.1}", 100.0 * r.stats.miss_ratio()),
            ]);
        }
        emit(
            &format!("E8: workload `{fam}` (p={p}, k={k}, LB={lb})"),
            &table,
            &cli,
        );
    }
}
