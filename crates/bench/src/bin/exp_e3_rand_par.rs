//! E3 — Theorem 2: RAND-PAR's makespan is `O(log p · T_OPT)`.
//!
//! Sweeps `p` on the standard mixed workload, measures makespan over seeds
//! against the `T_OPT` lower bound, and fits ratio vs `log₂ p` — Theorem 2
//! predicts at most linear growth in `log p`.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let ps: &[usize] = if cli.quick {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let seeds: u64 = if cli.quick { 3 } else { 8 };

    let rows: Vec<(usize, u64, f64, f64)> = ps
        .par_iter()
        .map(|&p| {
            let k = 16 * p;
            let params = ModelParams::new(p, k, 16);
            let len = 3000;
            let w = build_workload(&recipes::mixed_specs(p, k, len), cli.seed);
            let lb = opt_lower_bound(w.seqs(), k, params.s);
            let ratios: Vec<f64> = (0..seeds)
                .into_par_iter()
                .map(|seed| {
                    let mut rp = RandPar::new(&params, cli.seed ^ seed);
                    let ms = recipes::run_policy(&mut rp, &w, &params).makespan;
                    ms as f64 / lb as f64
                })
                .collect();
            let s = summarize(&ratios);
            (p, lb, s.mean, s.ci95)
        })
        .collect();

    let mut table = Table::new(["p", "k", "T_OPT LB", "RAND-PAR/LB", "ci95"]);
    let mut points = Vec::new();
    for &(p, lb, mean, ci) in &rows {
        points.push(((p as f64).log2(), mean));
        table.row([
            p.to_string(),
            (16 * p).to_string(),
            lb.to_string(),
            format!("{mean:.3}"),
            format!("{ci:.3}"),
        ]);
    }
    emit(
        "E3: RAND-PAR makespan ratio vs log p (Theorem 2)",
        &table,
        &cli,
    );
    if let Some(fit) = fit_linear(&points) {
        println!(
            "fit: ratio = {:.3} + {:.3}·log2(p)   (R² = {:.3})",
            fit.intercept, fit.slope, fit.r2
        );
    }
}
