//! E4 — Theorem 3: DET-PAR's makespan is `O(log p · T_OPT)`,
//! deterministically, and head-to-head it matches or beats RAND-PAR.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let ps: &[usize] = if cli.quick {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };

    let rows: Vec<(usize, u64, f64, f64, usize)> = ps
        .par_iter()
        .map(|&p| {
            let k = 16 * p;
            let params = ModelParams::new(p, k, 16);
            let len = 3000;
            let w = build_workload(&recipes::mixed_specs(p, k, len), cli.seed);
            let lb = opt_lower_bound(w.seqs(), k, params.s);
            let mut det = DetPar::new(&params);
            let res = recipes::run_policy(&mut det, &w, &params);
            let mut rnd = RandPar::new(&params, cli.seed);
            let rnd_ms = recipes::run_policy(&mut rnd, &w, &params).makespan;
            (
                p,
                lb,
                res.makespan as f64 / lb as f64,
                rnd_ms as f64 / res.makespan as f64,
                res.peak_memory,
            )
        })
        .collect();

    let mut table = Table::new([
        "p",
        "k",
        "T_OPT LB",
        "DET-PAR/LB",
        "RAND/DET",
        "peak mem (×k)",
    ]);
    let mut points = Vec::new();
    for &(p, lb, ratio, vs_rand, peak) in &rows {
        points.push(((p as f64).log2(), ratio));
        table.row([
            p.to_string(),
            (16 * p).to_string(),
            lb.to_string(),
            format!("{ratio:.3}"),
            format!("{vs_rand:.2}"),
            format!("{:.2}", peak as f64 / (16 * p) as f64),
        ]);
    }
    emit(
        "E4: DET-PAR makespan ratio vs log p (Theorem 3)",
        &table,
        &cli,
    );
    if let Some(fit) = fit_linear(&points) {
        println!(
            "fit: ratio = {:.3} + {:.3}·log2(p)   (R² = {:.3})",
            fit.intercept, fit.slope, fit.r2
        );
        println!("Theorem 3 predicts bounded-slope growth; peak memory certifies ξ = O(1).");
    }
}
