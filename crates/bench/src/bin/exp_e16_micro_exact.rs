//! E16 — exact ratios on micro instances.
//!
//! On tiny instances (p = 2–3, short sequences) the round-synchronized
//! schedule class can be searched exhaustively (`analysis::micro_opt`),
//! giving a certified **upper bound** on `T_OPT` to complement the
//! certified lower bound. The sandwich
//! `per_proc_bound ≤ T_OPT ≤ micro_opt` pins the true optimum to a narrow
//! interval, so the online algorithms' true competitive ratios are known
//! up to that interval — the only place in the whole reproduction where
//! "competitive ratio" needs no estimate at all.

use parapage::analysis::micro_opt_makespan;
use parapage::prelude::*;
use parapage_bench::{emit, parse_cli};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let s = 10u64;
    let k = 8usize;
    let len = if cli.quick { 60 } else { 120 };

    let instances: Vec<(&str, Vec<SeqSpec>)> = vec![
        (
            "2x small loops",
            vec![
                SeqSpec::Cyclic { width: 3, len },
                SeqSpec::Cyclic { width: 3, len },
            ],
        ),
        (
            "big + small loop",
            vec![
                SeqSpec::Cyclic { width: 6, len },
                SeqSpec::Cyclic { width: 2, len },
            ],
        ),
        (
            "2x big loops",
            vec![
                SeqSpec::Cyclic { width: 6, len },
                SeqSpec::Cyclic { width: 6, len },
            ],
        ),
        (
            "3x big loops",
            vec![
                SeqSpec::Cyclic { width: 6, len },
                SeqSpec::Cyclic { width: 6, len },
                SeqSpec::Cyclic { width: 6, len },
            ],
        ),
        (
            "3x mixed",
            vec![
                SeqSpec::Cyclic { width: 7, len },
                SeqSpec::Fresh { len },
                SeqSpec::Cyclic { width: 5, len },
            ],
        ),
    ];

    let mut table = Table::new([
        "instance",
        "LB (certified)",
        "T_OPT UB (certified)",
        "gap",
        "DET-PAR",
        "true ratio range",
    ]);
    // The exhaustive micro-OPT search dominates each instance, and the
    // instances are independent — fan them out; rows land in slot order.
    let rows: Vec<[String; 6]> = instances
        .par_iter()
        .map(|(name, specs)| {
            let w = build_workload(specs, cli.seed);
            let params = ModelParams::new(specs.len(), k, s);
            let lb = per_proc_bound(w.seqs(), k, s);
            let ub = micro_opt_makespan(w.seqs(), k, s);
            let mut det = DetPar::new(&params);
            let det_ms = run_engine(&mut det, w.seqs(), &params, &EngineOpts::default())
                .unwrap()
                .makespan;
            // Every feasible schedule upper-bounds T_OPT — including
            // DET-PAR's own run, so the certified interval is
            // [LB, min(micro, DET)].
            let tight_ub = ub.min(det_ms);
            [
                name.to_string(),
                lb.to_string(),
                tight_ub.to_string(),
                format!("{:.2}x", tight_ub as f64 / lb.max(1) as f64),
                det_ms.to_string(),
                format!(
                    "{:.2} – {:.2}",
                    det_ms as f64 / tight_ub as f64,
                    det_ms as f64 / lb.max(1) as f64
                ),
            ]
        })
        .collect();
    for row in rows {
        table.row(row);
    }
    emit(
        "E16: certified T_OPT sandwich on micro instances (p=2-3, k=8)",
        &table,
        &cli,
    );
    println!(
        "T_OPT is certified inside [LB, UB] (UB = min(micro-OPT, DET-PAR's\n\
         own feasible run)), so the last column brackets DET-PAR's *true*\n\
         competitive ratio with no estimation. Per the paper's framework,\n\
         DET-PAR runs with O(1) resource augmentation while OPT does not.\n\
         At p=2 DET-PAR matches the lower bound exactly; contention appears\n\
         from p=3."
    );
}
