//! E5 — Lemma 6: DET-PAR is *well-rounded* with `O(k)` memory.
//!
//! Runs DET-PAR with timeline recording across `p` and workload families,
//! then audits both well-roundedness properties (base-height floor and the
//! `O(z²·s·log p / b)` gap bound for every height class) and the actual
//! resource augmentation used.

use parapage::prelude::*;
use parapage_bench::{emit, parse_cli, recipes};
use rayon::prelude::*;

fn main() {
    let cli = parse_cli();
    let ps: &[usize] = if cli.quick { &[4, 8] } else { &[4, 8, 16, 32] };
    let families: &[&str] = &["mixed", "skewed", "uniform"];

    let mut table = Table::new([
        "p",
        "workload",
        "phases",
        "max gap factor",
        "violations",
        "peak mem (×k)",
        "well-rounded",
    ]);

    let mut rows: Vec<(usize, &str, usize, f64, usize, f64, bool)> = ps
        .par_iter()
        .flat_map(|&p| families.par_iter().map(move |&fam| (p, fam)))
        .map(|(p, fam)| {
            let k = 16 * p;
            let params = ModelParams::new(p, k, 16);
            let len = if cli.quick { 1200 } else { 3000 };
            let specs = match fam {
                "mixed" => recipes::mixed_specs(p, k, len),
                "skewed" => recipes::skewed_specs(p, k, len),
                _ => recipes::uniform_specs(p, k, len),
            };
            let w = build_workload(&specs, cli.seed);
            let mut det = DetPar::new(&params);
            let opts = EngineOpts {
                record_timelines: true,
                ..Default::default()
            };
            let res = run_engine(&mut det, w.seqs(), &params, &opts).unwrap();
            let report = check_well_rounded(
                res.timelines.as_ref().unwrap(),
                &res.completions,
                det.phases(),
                &params,
                4.0,
            );
            (
                p,
                fam,
                det.phases().len(),
                report.max_gap_factor,
                report.violations.len(),
                res.peak_memory as f64 / k as f64,
                report.ok,
            )
        })
        .collect();
    rows.sort_by_key(|r| (r.0, r.1));

    let mut all_ok = true;
    for (p, fam, phases, gap, viol, peak, ok) in rows {
        all_ok &= ok;
        table.row([
            p.to_string(),
            fam.to_string(),
            phases.to_string(),
            format!("{gap:.3}"),
            viol.to_string(),
            format!("{peak:.2}"),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    emit("E5: DET-PAR well-roundedness audit (Lemma 6)", &table, &cli);
    println!(
        "all audits passed: {all_ok}  (gap factor is normalized by s·z²·log p / b; \
         Lemma 6 guarantees O(1))"
    );
}
