//! Coarse per-phase wall-clock attribution behind `parapage bench
//! --profile`.
//!
//! The suite's `ops/*` entries say *how fast* the hot paths are; this
//! module says *where the time goes*. One representative det-par run is
//! executed with timing shims wrapped around the two extension points the
//! engine already exposes — the [`BoxAllocator`] (policy decisions) and
//! the per-processor [`Cache`] (LRU work) — and one pool-driven grid is
//! timed as a whole, yielding four coarse buckets:
//!
//! * **alloc** — run setup: workload generation plus engine construction
//!   (event heap, per-processor caches, arena ledgers);
//! * **policy** — time inside `BoxAllocator` calls (`grant`,
//!   `grant_batch`, completion/fault notifications);
//! * **cache** — time inside `Cache` calls (`access`, `access_if_fits`,
//!   `resize`, `clear`) across all processors;
//! * **pool** — wall time of a policy × seed grid on the worker pool (the
//!   sweep shape; includes its own policy/cache time — it is a separate
//!   measurement, not a disjoint slice of the engine run);
//! * **other** — the engine run's remainder (event heap, window
//!   bookkeeping, ledger pushes) = run wall time − policy − cache.
//!
//! The shims cost one `Instant::now` pair per call, which inflates the
//! phases they wrap by a few percent — acceptable for a coarse profile,
//! which is why the numbers are reported separately from the suite's
//! untimed entries and never gated.
//!
//! Determinism: the shims delegate faithfully (`oblivious`,
//! `grant_batch`, checkpointing), so the profiled run takes exactly the
//! production code paths — including batched grant dispatch — and its
//! result digest matches an unshimmed run.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use parapage::cache::{CodecError, SnapReader, SnapWriter, WindowOutcome};
use parapage::prelude::*;

use crate::suite::Digest;

/// Nanoseconds accumulated by one family of shims (shared by clones, so
/// every per-processor cache adds into the same bucket).
type SharedNanos = Rc<Cell<u64>>;

/// Times one closure and adds the elapsed nanoseconds to `bucket`.
fn timed<T>(bucket: &SharedNanos, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    bucket.set(bucket.get() + t0.elapsed().as_nanos() as u64);
    out
}

/// A [`BoxAllocator`] shim that forwards every call to the wrapped policy
/// and charges the wall time of the decision entry points (`grant`,
/// `grant_batch`, `on_proc_finished`, `on_fault`) to a shared bucket.
struct TimingAlloc<A> {
    inner: A,
    nanos: SharedNanos,
}

impl<A: BoxAllocator> BoxAllocator for TimingAlloc<A> {
    fn grant(&mut self, proc: ProcId, now: Time) -> Grant {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.grant(proc, now))
    }

    fn oblivious(&self) -> bool {
        self.inner.oblivious()
    }

    fn grant_batch(&mut self, procs: &[ProcId], now: Time, out: &mut Vec<Grant>) {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.grant_batch(procs, now, out));
    }

    fn on_proc_finished(&mut self, proc: ProcId, now: Time) {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.on_proc_finished(proc, now));
    }

    fn observe(&mut self, proc: ProcId, outcome: &WindowOutcome) {
        self.inner.observe(proc, outcome);
    }

    fn observe_accesses(&mut self, proc: ProcId, served: &[PageId]) {
        self.inner.observe_accesses(proc, served);
    }

    fn on_fault(&mut self, event: &FaultEvent) {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.on_fault(event));
    }

    fn on_budget_shrunk(&mut self, new_k: usize) {
        self.inner.on_budget_shrunk(new_k);
    }

    fn degraded_grants(&self) -> u64 {
        self.inner.degraded_grants()
    }

    fn checkpoint(&self, w: &mut SnapWriter) -> Result<(), CodecError> {
        self.inner.checkpoint(w)
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), CodecError> {
        self.inner.restore(r)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A [`Cache`] shim charging every cache operation to a shared bucket.
/// Cheap read-only queries (`contains`, `len`, `capacity`) are forwarded
/// untimed: the `Instant` pair would cost more than the query and the
/// window loop's per-request lookups already flow through
/// [`Cache::access_if_fits`].
struct TimingCache<C> {
    inner: C,
    nanos: SharedNanos,
}

impl<C: Cache> Cache for TimingCache<C> {
    fn access(&mut self, page: PageId) -> Access {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.access(page))
    }

    fn access_if_fits(
        &mut self,
        page: PageId,
        remaining: Time,
        miss_penalty: u64,
    ) -> Option<Access> {
        let nanos = self.nanos.clone();
        timed(&nanos, || {
            self.inner.access_if_fits(page, remaining, miss_penalty)
        })
    }

    fn contains(&self, page: PageId) -> bool {
        self.inner.contains(page)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn resize(&mut self, capacity: usize) {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.resize(capacity));
    }

    fn clear(&mut self) {
        let nanos = self.nanos.clone();
        timed(&nanos, || self.inner.clear());
    }
}

/// The coarse phase breakdown of one profiled bench run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseProfile {
    /// Run setup: workload generation + engine construction.
    pub alloc_secs: f64,
    /// Time inside `BoxAllocator` decision calls.
    pub policy_secs: f64,
    /// Time inside `Cache` operations, summed over processors.
    pub cache_secs: f64,
    /// Wall time of the pool-driven policy × seed grid.
    pub pool_secs: f64,
    /// Engine-run remainder (heap, windows, ledgers).
    pub other_secs: f64,
    /// Total wall time of the profiled engine run (= policy + cache +
    /// other).
    pub engine_secs: f64,
    /// Events the profiled engine run processed.
    pub engine_events: u64,
    /// Result digest of the profiled run — must match an unshimmed run of
    /// the same recipe (the shims may cost time, never behavior).
    pub digest: u64,
}

impl PhaseProfile {
    /// Serializes the profile as a small JSON document (the `--profile`
    /// side output).
    pub fn to_json(&self, quick: bool, seed: u64) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"profile\": \"bench-phases\",\n");
        s.push_str(&format!("  \"quick\": {quick},\n"));
        s.push_str(&format!("  \"seed\": {seed},\n"));
        s.push_str(&format!("  \"engine_events\": {},\n", self.engine_events));
        s.push_str(&format!("  \"engine_secs\": {:.6},\n", self.engine_secs));
        s.push_str("  \"phases\": {\n");
        s.push_str(&format!("    \"alloc\": {:.6},\n", self.alloc_secs));
        s.push_str(&format!("    \"policy\": {:.6},\n", self.policy_secs));
        s.push_str(&format!("    \"cache\": {:.6},\n", self.cache_secs));
        s.push_str(&format!("    \"pool\": {:.6},\n", self.pool_secs));
        s.push_str(&format!("    \"other\": {:.6}\n", self.other_secs));
        s.push_str("  },\n");
        s.push_str(&format!("  \"digest\": \"{:016x}\"\n", self.digest));
        s.push_str("}\n");
        s
    }
}

/// Runs the profiled recipe: one shimmed det-par engine run (same shape
/// as the suite's `ops/engine-step` entry) plus one pool-driven policy
/// grid, and attributes the wall time to the coarse phases.
pub fn profile_run(quick: bool, seed: u64) -> PhaseProfile {
    let policy_nanos: SharedNanos = Rc::new(Cell::new(0));
    let cache_nanos: SharedNanos = Rc::new(Cell::new(0));

    // Phase: alloc — workload + engine construction.
    let t0 = Instant::now();
    let params = ModelParams::new(8, 128, 16);
    let len = if quick { 4000 } else { 20000 };
    let specs: Vec<SeqSpec> = (0..8)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic { width: 16, len },
            1 => SeqSpec::Cyclic { width: 64, len },
            _ => SeqSpec::Zipf {
                universe: 64,
                theta: 0.9,
                len,
            },
        })
        .collect();
    let w = build_workload(&specs, seed);
    let opts = EngineOpts::default();
    let plan = FaultPlan::none();
    let mut alloc = TimingAlloc {
        inner: DetPar::new(&params),
        nanos: policy_nanos.clone(),
    };
    let mut engine = Engine::new(&mut alloc, w.seqs(), &params, &opts, &plan, |_| {
        TimingCache {
            inner: LruCache::new(0),
            nanos: cache_nanos.clone(),
        }
    });
    let alloc_secs = t0.elapsed().as_secs_f64();

    // The engine run: policy + cache buckets accumulate inside it.
    let mut sink = NullSink;
    let t1 = Instant::now();
    while engine.step(&mut alloc, &mut sink).expect("profile step") {}
    let engine_secs = t1.elapsed().as_secs_f64();
    let engine_events = engine.ticks();
    let res = engine.into_result(&alloc);
    let mut d = Digest::new();
    d.write(&format!(
        "ticks={engine_events} makespan={} misses={} hits={}",
        res.makespan, res.stats.misses, res.stats.hits
    ));

    // Phase: pool — a small policy × seed grid at the session's width.
    let pool_secs = {
        use rayon::prelude::*;
        let grid_len = if quick { 600 } else { 1500 };
        let gw = {
            // Workload generation happens outside the timed region; the
            // bucket measures pool execution, not setup.
            let gspecs: Vec<SeqSpec> = (0..4)
                .map(|_| SeqSpec::Cyclic {
                    width: 16,
                    len: grid_len,
                })
                .collect();
            build_workload(&gspecs, seed ^ 0x9E37)
        };
        let gparams = ModelParams::new(4, 64, 10);
        let cells: Vec<u64> = (0..if quick { 8 } else { 16 }).collect();
        let t2 = Instant::now();
        let results: Vec<u64> = cells
            .par_iter()
            .map(|&s| {
                let mut p = RandPar::new(&gparams, seed ^ s);
                run_engine(&mut p, gw.seqs(), &gparams, &EngineOpts::default())
                    .expect("profile grid run")
                    .makespan
            })
            .collect();
        for (s, m) in cells.iter().zip(&results) {
            d.write(&format!("grid {s}={m}"));
        }
        t2.elapsed().as_secs_f64()
    };

    let policy_secs = policy_nanos.get() as f64 * 1e-9;
    let cache_secs = cache_nanos.get() as f64 * 1e-9;
    PhaseProfile {
        alloc_secs,
        policy_secs,
        cache_secs,
        pool_secs,
        other_secs: (engine_secs - policy_secs - cache_secs).max(0.0),
        engine_secs,
        engine_events,
        digest: d.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::pool;

    /// The shims must not change behavior: a profiled run's engine-leg
    /// digest prefix is a pure function of (workload, policy), so two
    /// profiled runs agree, and the phase accounting is self-consistent.
    #[test]
    fn profile_is_deterministic_and_consistent() {
        let _g = pool::threads(2);
        let a = profile_run(true, 42);
        let b = profile_run(true, 42);
        assert_eq!(a.digest, b.digest, "profiled run must be deterministic");
        assert_eq!(a.engine_events, b.engine_events);
        assert!(a.engine_events > 0);
        assert!(a.engine_secs >= 0.0);
        // other = engine − policy − cache (clamped), so the parts never
        // exceed the whole by more than float noise.
        assert!(a.policy_secs + a.cache_secs <= a.engine_secs + 1e-3);
        let json = a.to_json(true, 42);
        assert!(json.contains("\"phases\""), "json: {json}");
        assert!(json.contains("\"policy\""));
        assert!(json.contains(&format!("{:016x}", a.digest)));
    }
}
