//! The perf-trajectory benchmark suite behind `parapage bench`.
//!
//! A fixed recipe of engine and sweep hot paths, each executed twice —
//! once pinned to one pool worker (`threads(1)`) and once at the
//! requested width — timed, digested, and compared:
//!
//! * the **digest** of every entry must be byte-identical across the two
//!   legs (the pool's determinism contract, checked end-to-end on real
//!   workloads rather than toy closures);
//! * the **wall-clock ratio** over the sweep entries is the measured
//!   multi-thread speedup, recorded in `BENCH_<n>.json` so future PRs
//!   have a trajectory to be gated against.
//!
//! Entry set (names are stable identifiers — downstream tooling compares
//! them across `BENCH_*.json` generations):
//!
//! | name                  | what it exercises                          |
//! |-----------------------|--------------------------------------------|
//! | `engine/det-par`      | single-threaded engine hot path (no pool)  |
//! | `sweep/policy-grid`   | policy × seed grid, one engine run per cell|
//! | `sweep/differential`  | conform's engine-vs-reference sweep        |
//! | `sweep/conform-matrix`| conform's policy × scenario invariant grid |
//! | `sweep/envelope`      | Theorem-4 competitive-ratio guardrails     |
//! | `checkpoint/full-snapshot` | per-epoch full-snapshot encoding cost |
//! | `checkpoint/wal-delta`| per-epoch incremental WAL delta cost       |
//! | `server/wire-codec`   | serve protocol frame encode/verify/decode  |
//! | `concurrent/sharded-access` | pool workers on one shared sharded LRU |
//! | `concurrent/lockfree-index` | pool workers on one shared lock-free map |
//! | `ops/engine-step`     | raw engine event throughput (ticks/sec)    |
//! | `ops/lru-access`      | packed-LRU access throughput (single shard)|
//! | `ops/sharded-access`  | sharded-LRU routing + access, one thread   |
//!
//! The two `checkpoint/*` entries additionally record their total payload
//! bytes (a deterministic function of the workload), pinning the WAL's
//! O(changes) size advantage over O(state) snapshots in the trajectory.
//!
//! The three `ops/*` entries are single-thread microbenchmarks of the
//! hot-path rewrite (packed LRU, batched grant dispatch): their `runs`
//! count individual operations (engine events / cache accesses), so
//! `runs_per_sec_threads1` reads directly as ops/sec. Release builds are
//! pinned against the floors in [`OPS_FLOORS`] by
//! `bench/tests/ops_regression.rs` and by the `parapage bench` exit gate.

use std::time::Instant;

use parapage::prelude::*;
use rayon::pool;

/// FNV-1a 64-bit running digest over result summaries; collision
/// resistance is irrelevant here — any single-bit divergence between two
/// legs must flip it, and FNV over the full formatted summary does that.
pub struct Digest(u64);

impl Digest {
    /// Fresh digest with the standard FNV offset basis.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds a summary line into the digest.
    pub fn write(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// One entry leg's outcome.
pub struct EntryOut {
    /// Work units executed (engine runs / sweep cells / epochs).
    pub runs: usize,
    /// Result digest.
    pub digest: u64,
    /// Payload bytes produced (checkpoint entries only).
    pub bytes: Option<u64>,
}

impl EntryOut {
    fn plain(runs: usize, digest: u64) -> Self {
        EntryOut {
            runs,
            digest,
            bytes: None,
        }
    }
}

/// One timed suite entry.
pub struct EntryResult {
    /// Stable entry identifier (see the module table).
    pub name: &'static str,
    /// Whether the entry's inner loop runs on the pool (only these count
    /// toward the speedup aggregate).
    pub parallel: bool,
    /// Work units executed per leg (engine runs / sweep cells).
    pub runs: usize,
    /// Wall seconds under `threads(1)`.
    pub secs_base: f64,
    /// Wall seconds under the parallel width.
    pub secs_par: f64,
    /// Result digest of the `threads(1)` leg.
    pub digest_base: u64,
    /// Result digest of the parallel leg.
    pub digest_par: u64,
    /// Payload bytes produced (checkpoint entries only — deterministic, so
    /// both legs agree whenever the digests do).
    pub bytes: Option<u64>,
}

impl EntryResult {
    /// Parallel-leg speedup over the sequential leg.
    pub fn speedup(&self) -> f64 {
        self.secs_base / self.secs_par.max(1e-9)
    }

    /// `true` when both legs produced byte-identical results.
    pub fn deterministic(&self) -> bool {
        self.digest_base == self.digest_par
    }
}

/// The full suite outcome, ready for reporting and `BENCH_<n>.json`.
pub struct SuiteReport {
    /// Per-entry measurements, in recipe order.
    pub entries: Vec<EntryResult>,
    /// Worker width of the parallel leg.
    pub threads_par: usize,
    /// Hardware parallelism of the host.
    pub host_cores: usize,
    /// Whether the shrunk (`--quick`) recipe ran.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

/// The speedup bar future PRs are gated against (aggregate over sweep
/// entries, full recipe, on a multi-core host).
pub const SPEEDUP_GATE: f64 = 1.5;

impl SuiteReport {
    /// Aggregate speedup: total sequential wall time of the pool-driven
    /// entries divided by their total parallel wall time.
    pub fn aggregate_speedup(&self) -> f64 {
        let base: f64 = self
            .entries
            .iter()
            .filter(|e| e.parallel)
            .map(|e| e.secs_base)
            .sum();
        let par: f64 = self
            .entries
            .iter()
            .filter(|e| e.parallel)
            .map(|e| e.secs_par)
            .sum();
        base / par.max(1e-9)
    }

    /// `true` when every entry was byte-identical across both legs.
    pub fn deterministic(&self) -> bool {
        self.entries.iter().all(EntryResult::deterministic)
    }

    /// Whether the speedup gate applies: a sequential host cannot speed
    /// up no matter how good the pool is, and the `--quick` recipe is too
    /// small to time reliably — both only *record* the trajectory.
    pub fn gate_enforced(&self) -> bool {
        self.host_cores >= 2 && self.threads_par >= 2 && !self.quick
    }

    /// Gate verdict (vacuously true when not enforced).
    pub fn gate_passed(&self) -> bool {
        !self.gate_enforced() || self.aggregate_speedup() >= SPEEDUP_GATE
    }

    /// Why the gate is waived, when it is (`None` when enforced).
    pub fn gate_waived_reason(&self) -> Option<&'static str> {
        if self.host_cores < 2 {
            Some("single-core host")
        } else if self.threads_par < 2 {
            Some("parallel leg pinned to one worker")
        } else if self.quick {
            Some("quick recipe too small to time reliably")
        } else {
            None
        }
    }

    /// Serializes the report as the `BENCH_<n>.json` document.
    pub fn to_json(&self, bench_id: &str) -> String {
        self.to_json_with(bench_id, None)
    }

    /// Like [`SuiteReport::to_json`], with an optional `"baseline"` block
    /// comparing this generation's single-thread rates against a prior
    /// `BENCH_<n>.json` (the `parapage bench --baseline` path).
    pub fn to_json_with(&self, bench_id: &str, baseline: Option<&BaselineComparison>) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench_id\": \"{bench_id}\",\n"));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"threads\": {{ \"baseline\": 1, \"parallel\": {} }},\n",
            self.threads_par
        ));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let bytes = e
                .bytes
                .map(|b| format!("\"bytes\": {b}, "))
                .unwrap_or_default();
            s.push_str(&format!(
                "    {{ \"name\": \"{}\", \"parallel\": {}, \"runs\": {}, \
                 \"secs_threads1\": {:.6}, \"secs_parallel\": {:.6}, \
                 \"runs_per_sec_threads1\": {:.3}, \"runs_per_sec_parallel\": {:.3}, \
                 \"speedup\": {:.3}, \"deterministic\": {}, {bytes}\"digest\": \"{:016x}\" }}{}\n",
                e.name,
                e.parallel,
                e.runs,
                e.secs_base,
                e.secs_par,
                e.runs as f64 / e.secs_base.max(1e-9),
                e.runs as f64 / e.secs_par.max(1e-9),
                e.speedup(),
                e.deterministic(),
                e.digest_base,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"aggregate_speedup\": {:.3},\n",
            self.aggregate_speedup()
        ));
        s.push_str(&format!("  \"deterministic\": {},\n", self.deterministic()));
        // `host_cores` appears unconditionally: the gate consumer needs it
        // to interpret a pass (was this a real multi-core win?) just as
        // much as a waiver, so it cannot ride on the waiver branch.
        s.push_str(&format!(
            "  \"gate\": {{ \"min_speedup\": {SPEEDUP_GATE}, \"host_cores\": {}, \
             \"enforced\": {}, \"waived\": {}, \
             \"waived_reason\": {}, \"passed\": {} }}{}\n",
            self.host_cores,
            self.gate_enforced(),
            !self.gate_enforced(),
            self.gate_waived_reason()
                .map(|r| format!("\"{r}\""))
                .unwrap_or_else(|| "null".to_string()),
            self.gate_passed(),
            if baseline.is_some() { "," } else { "" }
        ));
        if let Some(cmp) = baseline {
            s.push_str(&cmp.to_json_block(!self.quick));
        }
        s.push_str("}\n");
        s
    }
}

/// Minimum aggregate single-thread improvement over a `--baseline`
/// generation: the geometric mean of per-entry ops/sec ratios across the
/// entries both generations share must reach this bar on a full-recipe
/// run. The geometric mean is the standard cross-benchmark throughput
/// aggregate — it weights every entry equally instead of letting the
/// slowest entry's wall time dominate.
pub const BASELINE_IMPROVEMENT_GATE: f64 = 1.3;

/// One entry shared between this report and a baseline generation.
pub struct BaselineDelta {
    /// Entry name (present in both generations).
    pub name: String,
    /// Baseline single-thread throughput (runs/sec).
    pub base_rate: f64,
    /// This report's single-thread throughput (runs/sec).
    pub new_rate: f64,
}

impl BaselineDelta {
    /// Per-entry improvement factor (`> 1` means faster now).
    pub fn ratio(&self) -> f64 {
        self.new_rate / self.base_rate.max(1e-9)
    }
}

/// The single-thread comparison of one suite run against a prior
/// `BENCH_<n>.json`.
pub struct BaselineComparison {
    /// `bench_id` of the baseline document.
    pub baseline_id: String,
    /// Shared entries, in this report's recipe order.
    pub entries: Vec<BaselineDelta>,
}

impl BaselineComparison {
    /// Aggregate improvement: geometric mean of the shared entries'
    /// per-entry ratios (1.0 when no entries are shared).
    pub fn aggregate_improvement(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.entries.iter().map(|e| e.ratio().max(1e-9).ln()).sum();
        (log_sum / self.entries.len() as f64).exp()
    }

    /// Gate verdict: enforced only on full-recipe runs (`--quick` is too
    /// small to time reliably), vacuously true otherwise.
    pub fn gate_passed(&self, enforced: bool) -> bool {
        !enforced || self.aggregate_improvement() >= BASELINE_IMPROVEMENT_GATE
    }

    /// The `"baseline"` JSON block embedded in `BENCH_<n>.json`.
    fn to_json_block(&self, enforced: bool) -> String {
        let mut s = String::new();
        s.push_str("  \"baseline\": {\n");
        s.push_str(&format!("    \"bench_id\": \"{}\",\n", self.baseline_id));
        s.push_str("    \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "      {{ \"name\": \"{}\", \"base_runs_per_sec\": {:.3}, \
                 \"runs_per_sec\": {:.3}, \"improvement\": {:.3} }}{}\n",
                e.name,
                e.base_rate,
                e.new_rate,
                e.ratio(),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        s.push_str("    ],\n");
        s.push_str(&format!(
            "    \"aggregate_improvement\": {:.3},\n",
            self.aggregate_improvement()
        ));
        s.push_str(&format!(
            "    \"gate\": {{ \"min_improvement\": {BASELINE_IMPROVEMENT_GATE}, \
             \"enforced\": {enforced}, \"passed\": {} }}\n",
            self.gate_passed(enforced)
        ));
        s.push_str("  }\n");
        s
    }
}

/// Hand-parses `(bench_id, per-entry single-thread rates)` out of a prior
/// `BENCH_<n>.json` — the suite's own writer format, one entry object per
/// line, so a line scan suffices (the tree deliberately has no JSON
/// dependency).
pub fn parse_baseline(json: &str) -> Result<(String, Vec<(String, f64)>), String> {
    fn str_field(line: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\": \"");
        let start = line.find(&pat)? + pat.len();
        let end = line[start..].find('"')? + start;
        Some(line[start..end].to_string())
    }
    fn num_field(line: &str, key: &str) -> Option<f64> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let tail = &line[start..];
        let end = tail
            .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
            .unwrap_or(tail.len());
        tail[..end].parse().ok()
    }
    let mut bench_id = None;
    let mut entries = Vec::new();
    let mut in_baseline_block = false;
    for line in json.lines() {
        // A baseline document may itself embed a "baseline" block from an
        // even earlier generation; its entries must not be mistaken for
        // the document's own.
        if line.trim_start().starts_with("\"baseline\"") {
            in_baseline_block = true;
        }
        if bench_id.is_none() && !in_baseline_block {
            if let Some(id) = str_field(line, "bench_id") {
                bench_id = Some(id);
            }
        }
        if in_baseline_block {
            continue;
        }
        if let (Some(name), Some(rate)) = (
            str_field(line, "name"),
            num_field(line, "runs_per_sec_threads1"),
        ) {
            entries.push((name, rate));
        }
    }
    let id = bench_id.ok_or("baseline file has no \"bench_id\" field")?;
    if entries.is_empty() {
        return Err(format!(
            "baseline {id} has no entries with runs_per_sec_threads1"
        ));
    }
    Ok((id, entries))
}

impl SuiteReport {
    /// Compares this report's single-thread rates against a parsed
    /// baseline, keeping only the entries both generations share.
    pub fn compare_baseline(
        &self,
        baseline_id: &str,
        base_rates: &[(String, f64)],
    ) -> BaselineComparison {
        let entries = self
            .entries
            .iter()
            .filter_map(|e| {
                let (_, base_rate) = base_rates.iter().find(|(n, _)| n == e.name)?;
                Some(BaselineDelta {
                    name: e.name.to_string(),
                    base_rate: *base_rate,
                    new_rate: e.runs as f64 / e.secs_base.max(1e-9),
                })
            })
            .collect();
        BaselineComparison {
            baseline_id: baseline_id.to_string(),
            entries,
        }
    }
}

/// Folds the scalar outcome of one engine run into a digest.
fn digest_run(d: &mut Digest, r: &RunResult) {
    d.write(&format!(
        "makespan={} completions={:?} misses={} hits={} peak={} integral={} grants={} \
         faults={} degraded={}",
        r.makespan,
        r.completions,
        r.stats.misses,
        r.stats.hits,
        r.peak_memory,
        r.memory_integral,
        r.grants_issued,
        r.faults_injected,
        r.degraded_grants
    ));
}

/// Runs one named box policy on the workload (suite-local dispatch).
fn run_policy(name: &str, w: &Workload, params: &ModelParams, seed: u64) -> RunResult {
    let opts = EngineOpts::default();
    let run = |a: &mut dyn BoxAllocator| run_engine(a, w.seqs(), params, &opts).expect("bench run");
    match name {
        "det-par" => run(&mut DetPar::new(params)),
        "rand-par" => run(&mut RandPar::new(params, seed)),
        "static" => run(&mut StaticPartition::new(params)),
        "prop-miss" => run(&mut PropMissPartition::new(params)),
        "ucp" => run(&mut UcpPartition::new(params)),
        "bb-green" => {
            let pagers: Vec<RandGreen> = (0..params.p as u64)
                .map(|i| RandGreen::new(params, seed ^ i))
                .collect();
            run(&mut BlackboxGreenPacker::new(params, pagers))
        }
        other => unreachable!("suite policy {other}"),
    }
}

/// The standard heterogeneous bench workload (mirrors the CLI's `mixed`).
fn bench_workload(p: usize, k: usize, len: usize, seed: u64) -> Workload {
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic {
                width: (k / 8).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            _ => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
        })
        .collect();
    build_workload(&specs, seed)
}

/// Entry 1: the single-threaded engine hot path — no pool involvement, so
/// its speedup is expected to be ≈1; it anchors the trajectory with an
/// absolute engine-throughput number.
fn entry_engine(quick: bool, seed: u64) -> EntryOut {
    let repeats = if quick { 2 } else { 6 };
    let params = ModelParams::new(8, 128, 16);
    let w = bench_workload(8, 128, if quick { 2000 } else { 5000 }, seed);
    let mut d = Digest::new();
    for r in 0..repeats {
        let res = run_policy("det-par", &w, &params, seed ^ r as u64);
        digest_run(&mut d, &res);
    }
    EntryOut::plain(repeats, d.finish())
}

/// Entry 2: the policy × seed grid — the shape every E-binary sweep has.
fn entry_policy_grid(quick: bool, seed: u64) -> EntryOut {
    use rayon::prelude::*;
    let seeds: u64 = if quick { 2 } else { 4 };
    let params = ModelParams::new(8, 128, 16);
    let w = bench_workload(8, 128, if quick { 1200 } else { 3000 }, seed);
    let cells: Vec<(&str, u64)> = CONFORM_POLICIES
        .iter()
        .flat_map(|&pol| (0..seeds).map(move |s| (pol, s)))
        .collect();
    let results: Vec<RunResult> = cells
        .par_iter()
        .map(|&(pol, s)| run_policy(pol, &w, &params, seed ^ s))
        .collect();
    let mut d = Digest::new();
    for ((pol, s), res) in cells.iter().zip(&results) {
        d.write(&format!("{pol}/{s}:"));
        digest_run(&mut d, res);
    }
    EntryOut::plain(cells.len(), d.finish())
}

/// Entry 3: conform's engine-vs-reference differential sweep.
fn entry_differential(quick: bool, seed: u64) -> EntryOut {
    let count = if quick { 60 } else { 250 };
    let report = differential_sweep(count, seed);
    let mut d = Digest::new();
    d.write(&format!("runs={}", report.runs));
    for div in &report.divergences {
        d.write(&format!("{} — {}", div.recipe, div.detail));
    }
    EntryOut::plain(count, d.finish())
}

/// Entry 4: conform's policy × scenario invariant matrix.
fn entry_conform_matrix(quick: bool, seed: u64) -> EntryOut {
    let params = ModelParams::new(4, 32, 10);
    let w = bench_workload(4, 32, if quick { 300 } else { 800 }, seed);
    let reports = conform_matrix(w.seqs(), &params, seed, 4000).expect("conform matrix");
    let mut d = Digest::new();
    for r in &reports {
        d.write(&format!(
            "{}/{} hardened={} outcome={} events={} violations={:?}",
            r.policy, r.scenario, r.hardened, r.outcome, r.events, r.violations
        ));
    }
    EntryOut::plain(reports.len(), d.finish())
}

/// Entry 5: the Theorem-4 competitive-ratio guardrails.
fn entry_envelope(quick: bool, seed: u64) -> EntryOut {
    let report = competitive_envelope(quick, seed).expect("envelope");
    let mut d = Digest::new();
    for e in &report.entries {
        d.write(&format!(
            "{} {} p={} ratio={:.6} bound={:.6}",
            e.policy, e.instance, e.p, e.ratio, e.bound
        ));
    }
    EntryOut::plain(report.entries.len(), d.finish())
}

/// Shared core of the two `checkpoint/*` entries: drive one det-par run
/// tick by tick, emitting a checkpoint every `CKPT_EPOCH` ticks — either a
/// full snapshot re-encode or an incremental WAL delta — and count the
/// payload bytes. Byte counts are a deterministic function of the
/// workload, so they double as the determinism digest.
const CKPT_EPOCH: u64 = 8;

/// Per-epoch checkpoint cost measurement; `wal` selects delta vs full.
pub fn checkpoint_cost(quick: bool, seed: u64, wal: bool) -> EntryOut {
    let params = ModelParams::new(4, 32, 8);
    let w = bench_workload(4, 32, if quick { 4000 } else { 10000 }, seed);
    let mut alloc = DetPar::new(&params);
    let opts = EngineOpts::default();
    let plan = FaultPlan::none();
    let mut engine = Engine::new(&mut alloc, w.seqs(), &params, &opts, &plan, |_| {
        LruCache::new(0)
    });
    let mut sink = NullSink;
    let mut bytes = 0u64;
    let mut epochs = 0usize;
    // Cut epochs on the engine's logical clock (events processed), not on
    // step() calls: one step may process a whole timestamp batch, and an
    // epoch is a fixed amount of *work*, exactly as the supervisor counts.
    let mut next_ckpt = CKPT_EPOCH;
    while engine
        .step(&mut alloc, &mut sink)
        .expect("bench engine step")
    {
        let ticks = engine.ticks();
        if ticks >= next_ckpt {
            epochs += 1;
            bytes += if wal {
                engine.wal_delta(&alloc).expect("wal delta").encode().len() as u64
            } else {
                engine.snapshot(&alloc).expect("snapshot").encode().len() as u64
            };
            next_ckpt = ticks - ticks % CKPT_EPOCH + CKPT_EPOCH;
        }
    }
    let mut d = Digest::new();
    d.write(&format!("epochs={epochs} bytes={bytes}"));
    EntryOut {
        runs: epochs,
        digest: d.finish(),
        bytes: Some(bytes),
    }
}

/// Entry 6: per-epoch full-snapshot encoding cost (the pre-WAL supervisor
/// cadence).
fn entry_ckpt_full(quick: bool, seed: u64) -> EntryOut {
    checkpoint_cost(quick, seed, false)
}

/// Entry 7: per-epoch incremental WAL delta cost — must stay well below
/// `checkpoint/full-snapshot`.
fn entry_ckpt_wal(quick: bool, seed: u64) -> EntryOut {
    checkpoint_cost(quick, seed, true)
}

/// Entry 8: the serve wire codec — frame encode + digest-chain + decode of
/// a realistic request/reply mix (Batch frames dominating, as in a drive
/// run). Single-threaded: it measures codec throughput, not pool scaling,
/// so it stays out of the speedup aggregate.
fn entry_wire_codec(quick: bool, seed: u64) -> EntryOut {
    use parapage_server::protocol::{c2s_chain_seed, Frame, WireState};
    let frames = if quick { 2_000 } else { 10_000 };
    let mut tx = WireState::new(c2s_chain_seed());
    let mut rx = WireState::new(c2s_chain_seed());
    let mut d = Digest::new();
    let mut x = seed | 1;
    for i in 0..frames as u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let frame = match i % 4 {
            0..=2 => Frame::Batch {
                batch: i,
                seqs: (0..4)
                    .map(|p| {
                        (0..32)
                            .map(|j| PageId((x >> 17) ^ ((p * 131 + j) % 256)))
                            .collect()
                    })
                    .collect(),
            },
            _ => Frame::BatchDone {
                batch: i,
                makespan: x >> 40,
                hits: x & 0xffff,
                misses: (x >> 16) & 0xffff,
                grants: i,
                digest: x,
                chain: x.rotate_left(17),
            },
        };
        let mut buf = Vec::new();
        tx.write_frame(&mut buf, &frame).expect("bench wire write");
        let back = rx.read_frame(&mut &buf[..]).expect("bench wire read");
        assert_eq!(back, frame);
        d.write(&format!("i={i} len={}", buf.len()));
    }
    EntryOut::plain(frames, d.finish())
}

/// Entry 9: concurrent sharded-cache access. Pool workers hammer one
/// *shared* [`ShardedLru`]; each work unit owns the shards whose index
/// matches its own (pages are rejection-sampled onto owned shards), so
/// per-unit hit/miss counts are independent of interleaving and the
/// digest stays byte-identical across pool widths while the shard mutexes
/// and routing still run under real multi-thread traffic.
fn entry_concurrent_sharded(quick: bool, seed: u64) -> EntryOut {
    use rayon::prelude::*;
    const UNITS: usize = 8;
    let per = if quick { 4_000 } else { 20_000 };
    let cache = ShardedLru::with_shards(256, UNITS);
    let units: Vec<usize> = (0..UNITS).collect();
    let outs: Vec<(usize, usize)> = units
        .par_iter()
        .map(|&u| {
            let mut x = seed ^ (u as u64) << 7 | 1;
            let (mut hits, mut misses) = (0usize, 0usize);
            let mut produced = 0usize;
            while produced < per {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let page = PageId((x >> 33) % 512);
                if cache.shard_of(page) != u {
                    continue; // not an owned shard: skip, stay disjoint
                }
                produced += 1;
                if cache.access_shared(page).is_hit() {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            (hits, misses)
        })
        .collect();
    let mut d = Digest::new();
    for (u, (hits, misses)) in outs.iter().enumerate() {
        d.write(&format!("unit={u} hits={hits} misses={misses}"));
    }
    d.write(&format!("len={}", cache.len_shared()));
    EntryOut::plain(UNITS * per, d.finish())
}

/// Entry 10: the lock-free split-ordered index under pool-wide churn. Every
/// worker insert/probe/removes over its own disjoint key range of one
/// shared [`SplitOrderedMap`], so the CAS paths, bucket splits, and epoch
/// reclamation all see real contention while each unit's observable
/// results (and hence the digest) remain schedule-independent.
fn entry_concurrent_lockfree(quick: bool, seed: u64) -> EntryOut {
    use rayon::prelude::*;
    const UNITS: usize = 8;
    let per = if quick { 3_000 } else { 15_000 };
    let map = SplitOrderedMap::with_config(4, 4);
    let units: Vec<u64> = (0..UNITS as u64).collect();
    let outs: Vec<(u64, u64, u64)> = units
        .par_iter()
        .map(|&u| {
            let base = u << 32;
            let (mut inserted, mut present, mut removed) = (0u64, 0u64, 0u64);
            for i in 0..per as u64 {
                let k = base + (i.wrapping_mul(2654435761).wrapping_add(seed)) % 4096;
                if map.insert(PageId(k), i) {
                    inserted += 1;
                }
                if map.contains(PageId(k)) {
                    present += 1;
                }
                if i % 3 == 0 && map.remove(PageId(k)) {
                    removed += 1;
                }
            }
            (inserted, present, removed)
        })
        .collect();
    let mut d = Digest::new();
    for (u, (i, p, r)) in outs.iter().enumerate() {
        d.write(&format!("unit={u} inserted={i} present={p} removed={r}"));
    }
    // bucket_count() stays out of the digest: grows trigger on transient
    // global-size peaks, which are schedule-dependent across pool widths.
    // len and the per-unit counters are fixed by the disjoint key ranges.
    d.write(&format!("len={}", map.len()));
    EntryOut::plain(UNITS * per, d.finish())
}

/// Entry 11: raw engine event throughput. One det-par run stepped to
/// completion with a null sink and no checkpoint traffic; `runs` counts
/// events processed (the engine's tick clock), so `runs_per_sec_threads1`
/// reads as engine events per second. This is the number the batched
/// grant dispatch and arena-backed ledgers move.
fn entry_ops_engine_step(quick: bool, seed: u64) -> EntryOut {
    let repeats = if quick { 3 } else { 8 };
    let params = ModelParams::new(8, 128, 16);
    let w = bench_workload(8, 128, if quick { 4000 } else { 20000 }, seed);
    let opts = EngineOpts::default();
    let plan = FaultPlan::none();
    let mut total_ticks = 0u64;
    let mut d = Digest::new();
    for _ in 0..repeats {
        let mut alloc = DetPar::new(&params);
        let mut engine = Engine::new(&mut alloc, w.seqs(), &params, &opts, &plan, |_| {
            LruCache::new(0)
        });
        let mut sink = NullSink;
        while engine.step(&mut alloc, &mut sink).expect("ops engine step") {}
        let ticks = engine.ticks();
        total_ticks += ticks;
        let res = engine.into_result(&alloc);
        d.write(&format!("ticks={ticks}"));
        digest_run(&mut d, &res);
    }
    EntryOut::plain(total_ticks as usize, d.finish())
}

/// The deterministic page stream behind both `ops/*-access` entries: an
/// LCG whose draws mostly land in a hot set half the cache's size (hits
/// after warmup) and occasionally in a universe four times the capacity
/// (misses + evictions), so the packed LRU's promote, evict, and
/// index-probe paths all stay hot.
fn ops_access_page(x: &mut u64, capacity: u64) -> PageId {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    if *x & 3 != 0 {
        PageId((*x >> 16) % (capacity / 2))
    } else {
        PageId((*x >> 16) % (capacity * 4))
    }
}

/// Entry 12: packed-LRU access throughput — the innermost operation of
/// every simulated request, measured bare: one `LruCache`, one thread,
/// a mixed hit/miss stream. `runs` counts accesses.
fn entry_ops_lru_access(quick: bool, seed: u64) -> EntryOut {
    const K: usize = 256;
    let accesses = if quick { 200_000 } else { 1_000_000 };
    let mut cache = LruCache::new(K);
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut x = seed | 1;
    for _ in 0..accesses {
        let page = ops_access_page(&mut x, K as u64);
        if cache.access(page).is_hit() {
            hits += 1;
        } else {
            misses += 1;
        }
    }
    let mut d = Digest::new();
    d.write(&format!("hits={hits} misses={misses} len={}", cache.len()));
    EntryOut::plain(accesses, d.finish())
}

/// Entry 13: sharded-LRU access throughput on a single thread — the same
/// stream as `ops/lru-access` but through [`ShardedLru`]'s route + lock +
/// access path, isolating the sharding overhead from contention (which
/// `concurrent/sharded-access` measures separately).
fn entry_ops_sharded_access(quick: bool, seed: u64) -> EntryOut {
    const K: usize = 256;
    let accesses = if quick { 150_000 } else { 750_000 };
    let cache = ShardedLru::with_shards(K, 8);
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut x = seed | 1;
    for _ in 0..accesses {
        let page = ops_access_page(&mut x, K as u64);
        if cache.access_shared(page).is_hit() {
            hits += 1;
        } else {
            misses += 1;
        }
    }
    let mut d = Digest::new();
    d.write(&format!(
        "hits={hits} misses={misses} len={}",
        cache.len_shared()
    ));
    EntryOut::plain(accesses, d.finish())
}

/// Minimum sustained single-thread throughput, in runs (operations) per
/// second of the `threads(1)` leg, for the `ops/*` entries.
///
/// The floors are deliberately ~4× below the rates measured on the
/// development host at the time they were pinned, so scheduler noise and
/// slower CI hardware do not trip them — only a real hot-path regression
/// (an extra hash probe per access, a lost batching path) should. They
/// are meaningless for unoptimized builds; both consumers
/// (`bench/tests/ops_regression.rs` and the `parapage bench` exit gate)
/// skip them under `cfg(debug_assertions)`.
pub const OPS_FLOORS: &[(&str, f64)] = &[
    ("ops/engine-step", 50_000.0),
    ("ops/lru-access", 12_000_000.0),
    ("ops/sharded-access", 5_000_000.0),
];

impl SuiteReport {
    /// Single-thread throughput (runs per second of the `threads(1)` leg)
    /// of the named entry, if present.
    pub fn ops_rate(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.runs as f64 / e.secs_base.max(1e-9))
    }

    /// The `ops/*` floors that failed: `(name, measured, floor)` per entry
    /// whose single-thread throughput fell below its [`OPS_FLOORS`] bar.
    /// Empty means pass. Callers must gate on release builds themselves —
    /// the floors are not meaningful for debug builds.
    pub fn ops_floor_failures(&self) -> Vec<(&'static str, f64, f64)> {
        OPS_FLOORS
            .iter()
            .filter_map(|&(name, floor)| {
                let rate = self.ops_rate(name)?;
                (rate < floor).then_some((name, rate, floor))
            })
            .collect()
    }
}

/// A suite entry's measurement function.
type EntryFn = fn(bool, u64) -> EntryOut;

/// Measures each recipe entry twice — `threads(1)` and
/// `threads(threads_par)` — and assembles the report.
fn measure_recipe(
    recipe: &[(&'static str, bool, EntryFn)],
    quick: bool,
    seed: u64,
    threads_par: usize,
) -> SuiteReport {
    let entries = recipe
        .iter()
        .map(|&(name, parallel, f)| {
            let (base, secs_base) = {
                let _g = pool::threads(1);
                let t = Instant::now();
                let out = f(quick, seed);
                (out, t.elapsed().as_secs_f64())
            };
            let (par, secs_par) = {
                let _g = pool::threads(threads_par);
                let t = Instant::now();
                let out = f(quick, seed);
                (out, t.elapsed().as_secs_f64())
            };
            debug_assert_eq!(base.runs, par.runs);
            EntryResult {
                name,
                parallel,
                runs: base.runs,
                secs_base,
                secs_par,
                digest_base: base.digest,
                digest_par: par.digest,
                bytes: base.bytes,
            }
        })
        .collect();
    SuiteReport {
        entries,
        threads_par,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick,
        seed,
    }
}

/// The three single-thread `ops/*` microbench entries, shared by the full
/// recipe and [`run_ops_suite`].
const OPS_RECIPE: &[(&str, bool, EntryFn)] = &[
    ("ops/engine-step", false, entry_ops_engine_step),
    ("ops/lru-access", false, entry_ops_lru_access),
    ("ops/sharded-access", false, entry_ops_sharded_access),
];

/// Runs only the `ops/*` entries (both legs pinned to one worker) — the
/// regression-floor test drives this without paying for the full recipe.
pub fn run_ops_suite(quick: bool, seed: u64) -> SuiteReport {
    measure_recipe(OPS_RECIPE, quick, seed, 1)
}

/// Runs the full recipe: every entry once under `threads(1)` and once
/// under `threads(threads_par)`, with wall time and result digest per leg.
pub fn run_suite(quick: bool, seed: u64, threads_par: usize) -> SuiteReport {
    let recipe: &[(&'static str, bool, EntryFn)] = &[
        ("engine/det-par", false, entry_engine),
        ("sweep/policy-grid", true, entry_policy_grid),
        ("sweep/differential", true, entry_differential),
        ("sweep/conform-matrix", true, entry_conform_matrix),
        ("sweep/envelope", true, entry_envelope),
        ("checkpoint/full-snapshot", false, entry_ckpt_full),
        ("checkpoint/wal-delta", false, entry_ckpt_wal),
        ("server/wire-codec", false, entry_wire_codec),
        ("concurrent/sharded-access", true, entry_concurrent_sharded),
        ("concurrent/lockfree-index", true, entry_concurrent_lockfree),
    ];
    let full: Vec<(&'static str, bool, EntryFn)> =
        recipe.iter().chain(OPS_RECIPE.iter()).copied().collect();
    measure_recipe(&full, quick, seed, threads_par)
}
