//! # parapage-bench
//!
//! The benchmark/experiment harness: one binary per experiment in
//! DESIGN.md's index (E1–E16, `src/bin/exp_*.rs`), Criterion microbenches
//! for the substrate hot paths (`benches/`), and the [`suite`] behind
//! `parapage bench`.
//!
//! Every experiment binary accepts:
//!
//! * `--csv` — emit CSV instead of the aligned table;
//! * `--quick` — shrink sweeps for smoke-testing;
//! * `--seed <n>` — override the base seed.
//!
//! Sweeps across `(p, seed)` grids are embarrassingly parallel and run on
//! the workspace's vendored thread pool (`stubs/rayon`: scoped worker
//! threads behind the familiar `par_iter()` API — **not** the crates.io
//! rayon). Results are deterministic and order-stable for every worker
//! count because each grid cell writes into its pre-assigned slot; set
//! `PARAPAGE_THREADS=1` (or call `rayon::pool::threads(1)`) to force
//! sequential execution when debugging, and `PARAPAGE_THREADS=<n>` to pin
//! any other width.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod recipes;
pub mod suite;

use parapage::prelude::Table;

/// Parsed command-line options shared by every experiment binary.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Shrink the sweep for a fast smoke run.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            csv: false,
            quick: false,
            seed: 0xC0FFEE,
        }
    }
}

/// Parses `--csv`, `--quick`, and `--seed <n>` from `std::env::args`.
pub fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => cli.csv = true,
            "--quick" => cli.quick = true,
            "--seed" => {
                cli.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            other => {
                eprintln!("unknown flag {other}; supported: --csv --quick --seed <n>");
                std::process::exit(2);
            }
        }
    }
    cli
}

/// Prints a table in the format the CLI selected.
pub fn emit(title: &str, table: &Table, cli: &Cli) {
    if cli.csv {
        print!("{}", table.csv());
    } else {
        println!("== {title} ==");
        println!("{table}");
    }
}
