//! Shared workload recipes for the experiment binaries, so that E3/E4/E6/E8
//! compare policies on identical inputs.

use parapage::prelude::*;

/// The standard heterogeneous mix: small loops, big loops, Zipf hotspots,
/// and phase changers — one of each class per group of four processors.
pub fn mixed_specs(p: usize, k: usize, len: usize) -> Vec<SeqSpec> {
    (0..p)
        .map(|x| match x % 4 {
            0 => SeqSpec::Cyclic {
                width: (k / 16).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            2 => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
            _ => SeqSpec::Phased {
                phases: vec![((k / 16).max(2), len / 2), (k / 2, len - len / 2)],
            },
        })
        .collect()
}

/// One cache-hungry processor among tiny loops: the workload where a static
/// equal partition is maximally wrong.
pub fn skewed_specs(p: usize, k: usize, len: usize) -> Vec<SeqSpec> {
    (0..p)
        .map(|x| {
            if x == 0 {
                SeqSpec::Cyclic {
                    width: 3 * k / 4,
                    len,
                }
            } else {
                SeqSpec::Cyclic { width: 4, len }
            }
        })
        .collect()
}

/// Balanced small uniform working sets (each `2k/p` wide): everyone is
/// mildly memory-hungry.
pub fn uniform_specs(p: usize, k: usize, len: usize) -> Vec<SeqSpec> {
    (0..p)
        .map(|_| SeqSpec::Uniform {
            universe: (2 * k / p).max(2),
            len,
        })
        .collect()
}

/// A phase-changing single-processor sequence for green paging experiments:
/// tiny loop → large loop → medium loop.
pub fn green_sequence(k: usize, seed: u64) -> Vec<PageId> {
    let mut b = SeqBuilder::new(ProcId(0), seed);
    b.cyclic(4, 1500)
        .cyclic(3 * k / 4, 3000)
        .cyclic((k / 8).max(2), 1500);
    b.build()
}

/// Runs one policy end-to-end on a workload and returns the result.
pub fn run_policy(alloc: &mut dyn BoxAllocator, w: &Workload, params: &ModelParams) -> RunResult {
    run_engine(alloc, w.seqs(), params, &EngineOpts::default()).unwrap()
}
