//! Acceptance sweep for the schedule explorer: the built-in scenario suite
//! must yield at least 10^4 distinct interleavings of the core list ops
//! (insert / find / delete / resize) with zero linearization violations.

use parapage_conform::{explore, explore_all, scenarios, ExploreMode};

#[test]
fn explorer_enumerates_ten_thousand_clean_interleavings() {
    let reports = explore_all(12_000, ExploreMode::Exhaustive);
    let mut distinct = 0usize;
    for r in &reports {
        assert!(
            r.passed(),
            "{}: {} violations, first: {}",
            r.scenario,
            r.violations.len(),
            r.violations[0]
        );
        distinct += r.distinct;
    }
    assert!(
        distinct >= 10_000,
        "only {distinct} distinct interleavings across the suite"
    );
}

#[test]
fn random_sampling_scales_past_the_dfs_frontier() {
    // The grow-fence scenario has three threads and a deep tree; random
    // sampling must keep finding *new* schedules where DFS alone would
    // crawl the left spine.
    let sc = scenarios()
        .into_iter()
        .find(|s| s.name == "grow-fence")
        .unwrap();
    let r = explore(&sc, 300, ExploreMode::Random { seed: 1234 });
    assert!(r.passed(), "{:?}", r.violations);
    assert!(
        r.distinct * 10 >= r.executions * 9,
        "random walk collapsed: {} distinct in {} executions",
        r.distinct,
        r.executions
    );
}

#[test]
fn every_builtin_scenario_passes_a_bounded_exhaustive_sweep() {
    for sc in scenarios() {
        let r = explore(&sc, 500, ExploreMode::Exhaustive);
        assert!(r.passed(), "{}: {:?}", r.scenario, r.violations);
        assert!(
            r.distinct >= 100,
            "{}: only {} schedules",
            r.scenario,
            r.distinct
        );
    }
}
