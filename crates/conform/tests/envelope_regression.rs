//! Regression pin for the stall-desync memory finding (PR 2), and for its
//! resolution (PR 5).
//!
//! The finding: chunked policies emitted fixed-duration box queues; a
//! `ProcStall` deferred issuance and slid the stalled processor's queue
//! past its chunk, so boxes from adjacent chunk generations overlapped and
//! the synchronous `2k` peak argument no longer covered the run. Observed
//! worst case was exactly `3k`; the audited envelope was `4k`.
//!
//! The resolution: RAND-PAR's chunk schedules are now *time-anchored* — a
//! grant is looked up from the offset `now - chunk_start`, so a stalled
//! processor re-joins its chunk mid-schedule instead of sliding past it.
//! On the PR-2 grid the desync peak no longer reproduces: every run stays
//! within the synchronous `2k` bound. The stall guardrail is tightened
//! from `4k` to `3k` (kept above `2k` because BB-GREEN still issues
//! unanchored per-processor queues).
//!
//! This file pins both edges of the *resolved* state:
//!
//! * the **ceiling**: no stall run may exceed the `3k` envelope — if one
//!   does, the guardrail in [`memory_envelope`] is wrong and the bug is
//!   back;
//! * the **floor of the fix**: every run on the PR-2 grid must stay within
//!   `2k` — if a peak above `2k` reappears, the re-anchoring regressed and
//!   this pin (not the envelope) is what should catch it first.

use parapage_conform::{memory_envelope, run_traced};
use parapage_core::{DetPar, ModelParams};
use parapage_sched::{run_engine, EngineOpts, FaultPlan};
use parapage_workloads::{build_workload, fault_scenario, SeqSpec};

/// The documented envelope constants themselves — a change here must be
/// deliberate, with the doc comment on `memory_envelope` updated to match.
#[test]
fn envelope_constants_are_pinned() {
    let k = 64;
    // Stall runs of chunked policies: 3k guardrail (tightened from the
    // original 4k after RAND-PAR's time-anchored chunk redesign).
    assert_eq!(memory_envelope("rand-par", k, false, true), 3 * k);
    assert_eq!(memory_envelope("bb-green", k, false, true), 3 * k);
    // Synchronous chunked policies: the 2k argument holds.
    assert_eq!(memory_envelope("rand-par", k, false, false), 2 * k);
    assert_eq!(memory_envelope("bb-green", k, false, false), 2 * k);
    // DET-PAR grants are clipped to period ends, so stalls do not widen it.
    assert_eq!(
        memory_envelope("det-par", k, false, true),
        DetPar::MEMORY_FACTOR * k
    );
    assert_eq!(
        memory_envelope("det-par", k, false, false),
        DetPar::MEMORY_FACTOR * k
    );
    // Partition baselines split exactly k; hardened runs are capped at k.
    assert_eq!(memory_envelope("static", k, false, true), k);
    assert_eq!(memory_envelope("rand-par", k, true, true), k);
}

/// Empirical pin: rand-par and bb-green under the `stalls` scenario, on
/// the workload family where PR 2 first observed the `3k` peak (p=8,
/// k=64, mixed cyclic/zipf, seed grid including 42). Post-fix, the whole
/// grid peaks within `2k`.
#[test]
fn stall_desync_peak_stays_inside_documented_band() {
    let (p, k, len) = (8usize, 64usize, 2000usize);
    let params = ModelParams::new(p, k, 10);
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic {
                width: (k / 8).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            _ => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
        })
        .collect();
    let w = build_workload(&specs, 42);
    let opts = EngineOpts::default();
    let horizon = run_engine(&mut DetPar::new(&params), w.seqs(), &params, &opts)
        .expect("clean det-par run")
        .makespan
        .max(1);

    let mut max_peak = 0usize;
    for policy in ["rand-par", "bb-green"] {
        for seed in [42u64, 7, 11, 101] {
            let plan = FaultPlan::new(
                fault_scenario("stalls", p, k, horizon, seed).expect("stalls scenario"),
            );
            let run = run_traced(policy, w.seqs(), &params, &opts, seed, &plan, false)
                .expect("traced run");
            let res = run.outcome.unwrap_or_else(|e| {
                panic!(
                    "{policy} under stalls (seed {seed}) errored: {e} — the stalls \
                        scenario injects no memory faults, so this is a regression"
                )
            });
            let envelope = memory_envelope(policy, k, false, true);
            assert!(
                res.peak_memory <= envelope,
                "{policy} seed {seed}: peak {} exceeds the documented {}k stall \
                 envelope ({}); widen `memory_envelope` only if the paper argument \
                 is re-derived",
                res.peak_memory,
                envelope / k,
                envelope
            );
            max_peak = max_peak.max(res.peak_memory);
        }
    }

    // Resolution pin: the time-anchored chunk schedules keep the whole
    // PR-2 grid inside the synchronous 2k bound. A peak above 2k means
    // the stall-desync overlap is back — fix the re-anchoring, don't
    // loosen this assertion.
    assert!(
        max_peak <= 2 * k,
        "stall-desync grid peak is {max_peak} (> 2k = {}); the time-anchored \
         chunk fix regressed — stalled processors are sliding past their \
         chunks again",
        2 * k
    );
}
