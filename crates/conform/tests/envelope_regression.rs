//! Regression pin for the stall-desync memory finding (PR 2).
//!
//! The chunked policies (RAND-PAR, BB-GREEN) emit fixed-duration box
//! queues; a `ProcStall` defers issuance and slides the stalled
//! processor's queue past its chunk, so boxes from adjacent chunk
//! generations overlap and the synchronous `2k` peak argument no longer
//! covers the run. The audited envelope is `4k` (headroom), the observed
//! worst case is exactly `3k`.
//!
//! This file pins both edges of that finding:
//!
//! * the **ceiling**: no stall run may exceed the `4k` envelope — if one
//!   does, the guardrail in [`memory_envelope`] is wrong and the bug is
//!   real;
//! * the **floor**: the `3k` worst case must still reproduce — if every
//!   run now stays at `2k`, the envelope has silently tightened and both
//!   `memory_envelope` and its doc comment should be updated to claim the
//!   stronger bound, not left stale.

use parapage_conform::{memory_envelope, run_traced};
use parapage_core::{DetPar, ModelParams};
use parapage_sched::{run_engine, EngineOpts, FaultPlan};
use parapage_workloads::{build_workload, fault_scenario, SeqSpec};

/// The documented envelope constants themselves — a change here must be
/// deliberate, with the doc comment on `memory_envelope` updated to match.
#[test]
fn envelope_constants_are_pinned() {
    let k = 64;
    // Stall-desynced chunked policies: 4k guardrail.
    assert_eq!(memory_envelope("rand-par", k, false, true), 4 * k);
    assert_eq!(memory_envelope("bb-green", k, false, true), 4 * k);
    // Synchronous chunked policies: the 2k argument holds.
    assert_eq!(memory_envelope("rand-par", k, false, false), 2 * k);
    assert_eq!(memory_envelope("bb-green", k, false, false), 2 * k);
    // DET-PAR grants are clipped to period ends, so stalls do not widen it.
    assert_eq!(
        memory_envelope("det-par", k, false, true),
        DetPar::MEMORY_FACTOR * k
    );
    assert_eq!(
        memory_envelope("det-par", k, false, false),
        DetPar::MEMORY_FACTOR * k
    );
    // Partition baselines split exactly k; hardened runs are capped at k.
    assert_eq!(memory_envelope("static", k, false, true), k);
    assert_eq!(memory_envelope("rand-par", k, true, true), k);
}

/// Empirical reproduction: rand-par and bb-green under the `stalls`
/// scenario, on the workload family where PR 2 first observed the `3k`
/// peak (p=8, k=64, mixed cyclic/zipf, seed grid including 42).
#[test]
fn stall_desync_peak_stays_inside_documented_band() {
    let (p, k, len) = (8usize, 64usize, 2000usize);
    let params = ModelParams::new(p, k, 10);
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match x % 3 {
            0 => SeqSpec::Cyclic {
                width: (k / 8).max(2),
                len,
            },
            1 => SeqSpec::Cyclic { width: k / 2, len },
            _ => SeqSpec::Zipf {
                universe: (k / 2).max(4),
                theta: 0.9,
                len,
            },
        })
        .collect();
    let w = build_workload(&specs, 42);
    let opts = EngineOpts::default();
    let horizon = run_engine(&mut DetPar::new(&params), w.seqs(), &params, &opts)
        .expect("clean det-par run")
        .makespan
        .max(1);

    let mut max_peak = 0usize;
    for policy in ["rand-par", "bb-green"] {
        for seed in [42u64, 7, 11, 101] {
            let plan = FaultPlan::new(
                fault_scenario("stalls", p, k, horizon, seed).expect("stalls scenario"),
            );
            let run = run_traced(policy, w.seqs(), &params, &opts, seed, &plan, false)
                .expect("traced run");
            let res = run.outcome.unwrap_or_else(|e| {
                panic!(
                    "{policy} under stalls (seed {seed}) errored: {e} — the stalls \
                        scenario injects no memory faults, so this is a regression"
                )
            });
            let envelope = memory_envelope(policy, k, false, true);
            assert!(
                res.peak_memory <= envelope,
                "{policy} seed {seed}: peak {} exceeds the documented {}k stall \
                 envelope ({}); widen `memory_envelope` only if the paper argument \
                 is re-derived",
                res.peak_memory,
                envelope / k,
                envelope
            );
            max_peak = max_peak.max(res.peak_memory);
        }
    }

    // The desync worst case must still reproduce. If this fires because
    // every run now peaks at 2k, the engine got *better* — tighten the
    // stall envelope in `memory_envelope` and update its doc comment
    // rather than loosening this assertion.
    assert!(
        max_peak >= 3 * k,
        "stall-desync peak across the grid is {max_peak} (< 3k = {}); the documented \
         `observed worst case 3k` no longer reproduces — update memory_envelope's \
         doc (and consider tightening the 4k guardrail) instead of ignoring this",
        3 * k
    );
}
