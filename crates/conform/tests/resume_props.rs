//! Property-based resume equivalence: crash-and-recover at an *arbitrary*
//! tick must be invisible, the snapshot codec must round-trip exactly, and
//! an incremental WAL delta applied to its base must reconstruct the full
//! snapshot byte-for-byte.

use proptest::prelude::*;

use parapage_cache::{LruCache, ShardedLru};
use parapage_conform::{boxed_policy, check_replay, check_resume, CONFORM_POLICIES};
use parapage_core::ModelParams;
use parapage_sched::{
    CrashPlan, Engine, EngineOpts, EngineSnapshot, FaultPlan, NullSink, Supervisor, SupervisorOpts,
    TraceRecorder,
};
use parapage_workloads::{build_workload, fault_scenario, SeqSpec, FAULT_SCENARIOS};

fn workload_for(
    p: usize,
    k: usize,
    len: usize,
    shape: u32,
    seed: u64,
) -> Vec<Vec<parapage_cache::PageId>> {
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match (shape + x as u32) % 4 {
            0 => SeqSpec::Cyclic {
                width: (k / 2).max(1),
                len,
            },
            1 => SeqSpec::Fresh { len },
            2 => SeqSpec::Uniform {
                universe: (2 * k).max(2),
                len,
            },
            _ => SeqSpec::Zipf {
                universe: k.max(2),
                theta: 0.9,
                len,
            },
        })
        .collect();
    build_workload(&specs, seed).into_seqs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For every policy, fault scenario, and a crash at a random tick of
    /// the run, the supervised crash-and-recover run reproduces the
    /// uninterrupted run's result and trace byte-for-byte.
    #[test]
    fn resume_at_random_tick_is_equivalent(
        p in 1usize..5,
        kexp in 1u32..4,
        len in 1usize..120,
        seed in 0u64..1_000_000,
        // Folded (policy, scenario) selector plus a crash position.
        combo in 0usize..30,
        crash_frac in 0.0f64..1.0,
    ) {
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, 6);
        let seqs = workload_for(p, k, len, (combo % 4) as u32, seed);
        let policy = CONFORM_POLICIES[combo % CONFORM_POLICIES.len()];
        let scenario = FAULT_SCENARIOS[(combo / 6) % FAULT_SCENARIOS.len()];
        let plan = FaultPlan::new(
            fault_scenario(scenario, p, k, (len as u64 + 4) * 6 * 4, seed).unwrap(),
        );
        let opts = EngineOpts::default();
        // Probe the baseline length, then crash at the sampled fraction.
        let probe = check_resume(
            policy, &seqs, &params, &opts, seed, scenario, &plan, &[],
        ).unwrap();
        prop_assert!(probe.passed(), "{}/{}: {:?}", policy, scenario, probe.violations);
        let crash = ((probe.baseline_ticks as f64 * crash_frac) as u64)
            .clamp(1, probe.baseline_ticks);
        let cell = check_resume(
            policy, &seqs, &params, &opts, seed, scenario, &plan, &[crash],
        ).unwrap();
        prop_assert!(
            cell.passed(),
            "{}/{} crash at tick {}/{}: {:?}",
            policy, scenario, crash, cell.baseline_ticks, cell.violations
        );
    }

    /// The snapshot codec round-trips exactly on real mid-run engine
    /// states: `decode(encode(s)) == s`, for every policy and a snapshot
    /// taken after an arbitrary number of steps.
    #[test]
    fn snapshot_codec_round_trips_mid_run(
        p in 1usize..5,
        kexp in 1u32..4,
        len in 1usize..120,
        seed in 0u64..1_000_000,
        // Folded (policy, record_timelines) selector.
        sel in 0usize..12,
        steps in 0usize..64,
    ) {
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, 6);
        let seqs = workload_for(p, k, len, 2, seed);
        let policy = CONFORM_POLICIES[sel % CONFORM_POLICIES.len()];
        let timelines = sel >= CONFORM_POLICIES.len();
        let plan = FaultPlan::new(fault_scenario("chaos", p, k, 4000, seed).unwrap());
        let opts = EngineOpts { record_timelines: timelines, ..EngineOpts::default() };
        let mut alloc = boxed_policy(policy, &params, seed, true).unwrap();
        let mut engine =
            Engine::new(&mut *alloc, &seqs, &params, &opts, &plan, |_| LruCache::new(0));
        let mut sink = NullSink;
        for _ in 0..steps {
            match engine.step(&mut *alloc, &mut sink) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return Err(TestCaseError::fail(format!("engine errored: {e}"))),
            }
        }
        let snap = engine.snapshot(&*alloc).unwrap();
        let decoded = EngineSnapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    /// An incremental WAL delta taken after an arbitrary number of steps
    /// past an arbitrary base reconstructs the engine's full snapshot
    /// byte-for-byte when applied to that base, for every policy.
    #[test]
    fn wal_delta_reconstruction_matches_full_snapshot(
        p in 1usize..5,
        kexp in 1u32..4,
        len in 1usize..120,
        seed in 0u64..1_000_000,
        sel in 0usize..6,
        // Folded (base_steps, delta_steps), each in 0..48.
        steps in 0usize..2304,
    ) {
        let (base_steps, delta_steps) = (steps % 48, steps / 48);
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, 6);
        let seqs = workload_for(p, k, len, 1, seed);
        let policy = CONFORM_POLICIES[sel % CONFORM_POLICIES.len()];
        let plan = FaultPlan::new(fault_scenario("chaos", p, k, 4000, seed).unwrap());
        let opts = EngineOpts::default();
        let mut alloc = boxed_policy(policy, &params, seed, true).unwrap();
        let mut engine =
            Engine::new(&mut *alloc, &seqs, &params, &opts, &plan, |_| LruCache::new(0));
        let mut sink = NullSink;
        for _ in 0..base_steps {
            match engine.step(&mut *alloc, &mut sink) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return Err(TestCaseError::fail(format!("engine errored: {e}"))),
            }
        }
        let base = engine.snapshot(&*alloc).unwrap();
        engine.reset_wal_mark();
        for _ in 0..delta_steps {
            match engine.step(&mut *alloc, &mut sink) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return Err(TestCaseError::fail(format!("engine errored: {e}"))),
            }
        }
        let delta = engine.wal_delta(&*alloc).unwrap();
        let full = engine.snapshot(&*alloc).unwrap();
        let mut rebuilt = base;
        delta.apply(&mut rebuilt).unwrap();
        prop_assert_eq!(rebuilt.encode(), full.encode());
    }

    /// With WAL checkpoints at *every* epoch boundary and a crash at a
    /// random tick, the supervised run reproduces the uninterrupted run's
    /// result and trace byte-for-byte — for every policy, the RNG-backed
    /// ones included.
    #[test]
    fn wal_resume_at_random_tick_is_equivalent(
        p in 1usize..5,
        kexp in 1u32..4,
        len in 8usize..120,
        seed in 0u64..1_000_000,
        sel in 0usize..6,
        crash_frac in 0.0f64..1.0,
    ) {
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, 6);
        let seqs = workload_for(p, k, len, 3, seed);
        let policy = CONFORM_POLICIES[sel % CONFORM_POLICIES.len()];
        let plan = FaultPlan::none();
        let opts = EngineOpts::default();

        let mut alloc = boxed_policy(policy, &params, seed, false).unwrap();
        let mut engine =
            Engine::new(&mut *alloc, &seqs, &params, &opts, &plan, |_| LruCache::new(0));
        let mut baseline_trace = TraceRecorder::new();
        loop {
            match engine.step(&mut *alloc, &mut baseline_trace) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return Err(TestCaseError::fail(format!("engine errored: {e}"))),
            }
        }
        let baseline_ticks = engine.ticks();
        let baseline = engine.into_result(&*alloc);
        let crash = ((baseline_ticks as f64 * crash_frac) as u64).clamp(1, baseline_ticks);

        let sup_opts = SupervisorOpts {
            epoch_ticks: 8,
            max_retries: 3,
            backoff_base: std::time::Duration::ZERO,
            wal: true,
            full_snapshot_every: 4,
            ..SupervisorOpts::default()
        };
        let mut recovered_trace = TraceRecorder::new();
        let report = Supervisor::new(sup_opts)
            .run(
                &seqs,
                &params,
                &opts,
                &plan,
                &CrashPlan::at_ticks(vec![crash]),
                || boxed_policy(policy, &params, seed, false).unwrap(),
                |_| LruCache::new(0),
                &mut recovered_trace,
            )
            .map_err(|e| TestCaseError::fail(format!("{policy}: recovery failed: {e}")))?;
        prop_assert_eq!(&report.result, &baseline, "{} diverged", policy);
        let trace_violations = check_replay(baseline_trace.events(), recovered_trace.events());
        prop_assert!(
            trace_violations.is_empty(),
            "{} crash at tick {}/{}: {:?}",
            policy, crash, baseline_ticks, trace_violations
        );
    }

    /// The WAL resume equivalence extends to the *sharded* concurrent
    /// cache: with every per-processor cache a 4-shard `ShardedLru`, a
    /// crash-and-recover run under epoch WAL checkpoints reproduces the
    /// uninterrupted sharded run byte-for-byte — the concatenated shard
    /// snapshot travels through base + delta and back without loss.
    #[test]
    fn wal_resume_with_sharded_cache_is_equivalent(
        p in 1usize..5,
        kexp in 1u32..4,
        len in 8usize..100,
        seed in 0u64..1_000_000,
        sel in 0usize..6,
        crash_frac in 0.0f64..1.0,
    ) {
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, 6);
        let seqs = workload_for(p, k, len, 0, seed);
        let policy = CONFORM_POLICIES[sel % CONFORM_POLICIES.len()];
        let plan = FaultPlan::none();
        let opts = EngineOpts::default();
        let make_cache = |_| ShardedLru::with_shards(0, 4);

        let mut alloc = boxed_policy(policy, &params, seed, false).unwrap();
        let mut engine =
            Engine::new(&mut *alloc, &seqs, &params, &opts, &plan, make_cache);
        let mut baseline_trace = TraceRecorder::new();
        loop {
            match engine.step(&mut *alloc, &mut baseline_trace) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return Err(TestCaseError::fail(format!("engine errored: {e}"))),
            }
        }
        let baseline_ticks = engine.ticks();
        let baseline = engine.into_result(&*alloc);
        let crash = ((baseline_ticks as f64 * crash_frac) as u64).clamp(1, baseline_ticks);

        let sup_opts = SupervisorOpts {
            epoch_ticks: 8,
            max_retries: 3,
            backoff_base: std::time::Duration::ZERO,
            wal: true,
            full_snapshot_every: 4,
            ..SupervisorOpts::default()
        };
        let mut recovered_trace = TraceRecorder::new();
        let report = Supervisor::new(sup_opts)
            .run(
                &seqs,
                &params,
                &opts,
                &plan,
                &CrashPlan::at_ticks(vec![crash]),
                || boxed_policy(policy, &params, seed, false).unwrap(),
                make_cache,
                &mut recovered_trace,
            )
            .map_err(|e| TestCaseError::fail(format!("{policy}: sharded recovery failed: {e}")))?;
        prop_assert_eq!(&report.result, &baseline, "{} diverged on sharded cache", policy);
        let trace_violations = check_replay(baseline_trace.events(), recovered_trace.events());
        prop_assert!(
            trace_violations.is_empty(),
            "{} sharded crash at tick {}/{}: {:?}",
            policy, crash, baseline_ticks, trace_violations
        );
    }
}
