//! Pool-width stress for the concurrent cache substrate: the same stress
//! body runs under worker widths 1, 2, and 8 (the knob `PARAPAGE_THREADS`
//! sets, overridden here with the scoped guard so the tests are
//! self-contained). Every pool unit keeps its own op ledger; at join the
//! ledgers are reconciled against the structure's final state and against
//! the sequential policy — nothing is allowed to go missing, duplicate, or
//! reorder in a way the sequential model cannot explain.
//!
//! The width override is process-global, so every test here serializes on
//! [`POOL_LOCK`] before touching it.

use std::collections::HashSet;
use std::sync::Mutex;

use parapage_cache::{Access, PageId, ShardedLru, SplitOrderedMap};
use parapage_conform::check_sharded_ledgers;
use rayon::pool::{self, Tasks, Unit};

/// Serializes tests that set the global pool width.
static POOL_LOCK: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const UNITS: usize = 8;
const OPS: usize = 600;

fn p(v: u64) -> PageId {
    PageId(v)
}

/// Splitmix-style step for per-unit op streams.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// One sharded-stress unit's output: its index and its op ledger.
type UnitLedger = (usize, Vec<(PageId, Access)>);

/// Sharded LRU under fan-out: each unit hammers its own disjoint key range
/// (96 distinct keys revisited ~6x) against a no-eviction capacity, so a
/// unit's own ledger is deterministic regardless of interleaving: a miss
/// exactly on first touch, a hit ever after. At join:
///
/// 1. every per-unit ledger matches that first-touch law,
/// 2. every op is accounted for (no lost or duplicated accesses),
/// 3. the per-shard ledgers replay exactly through sequential LRU twins,
/// 4. the final residency digest is identical at every width.
#[test]
fn sharded_stress_ledgers_reconcile_at_every_width() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline: Option<(usize, usize)> = None;
    for width in THREAD_COUNTS {
        let _w = pool::threads(width);
        let cache = ShardedLru::with_shards(4096, 8);
        cache.set_ledger_recording(true);

        let units: Vec<Unit<'_, UnitLedger>> = (0..UNITS)
            .map(|u| {
                let cache = &cache;
                Box::new(move || {
                    let base = (u as u64) << 32;
                    let mut x = u as u64 + 1;
                    let mut ledger = Vec::with_capacity(OPS);
                    for _ in 0..OPS {
                        let page = p(base + lcg(&mut x) % 96);
                        ledger.push((page, cache.access_shared(page)));
                    }
                    vec![(u, ledger)]
                }) as Unit<'_, _>
            })
            .collect();
        let per_unit = pool::execute(Tasks { units });

        assert_eq!(per_unit.len(), UNITS, "width {width}: a unit went missing");
        let mut misses = 0usize;
        for (u, ledger) in &per_unit {
            assert_eq!(ledger.len(), OPS, "width {width}: unit {u} lost ops");
            let mut seen = HashSet::new();
            for &(page, outcome) in ledger {
                let first = seen.insert(page);
                misses += usize::from(!outcome.is_hit());
                assert_eq!(
                    outcome.is_hit(),
                    !first,
                    "width {width}: unit {u} page {page:?} broke the first-touch law"
                );
            }
        }

        let problems = check_sharded_ledgers(&cache.shard_capacities(), &cache.take_ledgers());
        assert!(problems.is_empty(), "width {width}: {problems:?}");

        // No evictions happen, so the end state is width-invariant: one
        // resident per distinct page, one miss per distinct page.
        let digest = (cache.len_shared(), misses);
        assert_eq!(digest.0, digest.1, "width {width}: residents != misses");
        match &baseline {
            None => baseline = Some(digest),
            Some(b) => assert_eq!(b, &digest, "width {width} diverged from width 1"),
        }
    }
}

/// What each map unit logs: the key, whether the op was an insert (else a
/// remove), and whether the structure said it took effect.
type MapLedger = Vec<(u64, bool, bool)>;

/// Lock-free map under fan-out with *overlapping* keys: all units fight
/// over the same 64 keys with a per-unit mix of inserts, removes, and
/// probes. Individual outcomes are schedule-dependent, but the
/// linearizable-set conservation law is not: for every key, successful
/// inserts minus successful removes must equal its final residency, and
/// the sum of those residuals must equal `len()`.
#[test]
fn lock_free_map_op_ledgers_reconcile_at_every_width() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for width in THREAD_COUNTS {
        let _w = pool::threads(width);
        let map = SplitOrderedMap::with_config(4, 4);

        let units: Vec<Unit<'_, MapLedger>> = (0..UNITS)
            .map(|u| {
                let map = &map;
                Box::new(move || {
                    let mut x = (u as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let mut ledger = MapLedger::with_capacity(OPS);
                    for _ in 0..OPS {
                        let r = lcg(&mut x);
                        let key = r % 64;
                        match (r >> 8) % 3 {
                            0 => ledger.push((key, true, map.insert(p(key), u as u64))),
                            1 => ledger.push((key, false, map.remove(p(key)))),
                            _ => {
                                // Probes have no individually checkable
                                // outcome under contention; they only add
                                // traversal pressure.
                                map.contains(p(key));
                            }
                        }
                    }
                    vec![ledger]
                }) as Unit<'_, _>
            })
            .collect();
        let ledgers = pool::execute(Tasks { units });
        assert_eq!(ledgers.len(), UNITS, "width {width}: a unit went missing");

        let mut net = [0i64; 64];
        for ledger in &ledgers {
            for &(key, is_insert, took_effect) in ledger {
                if took_effect {
                    net[key as usize] += if is_insert { 1 } else { -1 };
                }
            }
        }
        let mut residents = 0usize;
        for (key, &n) in net.iter().enumerate() {
            let resident = i64::from(map.contains(p(key as u64)));
            assert_eq!(
                n, resident,
                "width {width}: key {key} net effect {n} but residency {resident}"
            );
            residents += resident as usize;
        }
        assert_eq!(map.len(), residents, "width {width}: len out of sync");
        assert_eq!(
            map.entries().len(),
            residents,
            "width {width}: entries out of sync"
        );
    }
}

/// Concurrent growth loses nothing: seven units insert disjoint ranges
/// while an eighth forces repeated bucket-array doublings mid-stream. At
/// join every inserted key must still be reachable — the resize fence this
/// checks is exactly the one the sabotage switch drops.
#[test]
fn growth_under_stress_loses_no_members() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for width in THREAD_COUNTS {
        let _w = pool::threads(width);
        let map = SplitOrderedMap::with_config(2, 1 << 20);
        let units: Vec<Unit<'_, u64>> = (0..UNITS)
            .map(|u| {
                let map = &map;
                Box::new(move || {
                    if u == UNITS - 1 {
                        for _ in 0..10 {
                            map.grow();
                        }
                        vec![0]
                    } else {
                        let base = (u as u64) * 1_000;
                        let mut inserted = 0u64;
                        for i in 0..200 {
                            inserted += u64::from(map.insert(p(base + i), u as u64));
                        }
                        vec![inserted]
                    }
                }) as Unit<'_, _>
            })
            .collect();
        let inserted: u64 = pool::execute(Tasks { units }).into_iter().sum();
        assert_eq!(
            inserted,
            7 * 200,
            "width {width}: an insert failed on a fresh key"
        );
        for u in 0..(UNITS - 1) as u64 {
            for i in 0..200 {
                assert!(
                    map.contains(p(u * 1_000 + i)),
                    "width {width}: key {} unreachable after growth",
                    u * 1_000 + i
                );
            }
        }
        assert_eq!(map.len(), 7 * 200, "width {width}");
        assert!(map.bucket_count() >= 2, "width {width}");
    }
}
