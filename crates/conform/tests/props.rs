//! Property-based conformance: the optimized engine and the naive reference
//! simulator must be indistinguishable event-for-event on arbitrary
//! workloads, and the streaming checkers must hold on every clean run.

use proptest::prelude::*;

use parapage_conform::{
    check_box_geometry, check_memory, check_replay, check_run_consistency, check_stream_order,
    memory_envelope, outcome_divergence, run_reference_named, run_traced, CONFORM_POLICIES,
};
use parapage_core::ModelParams;
use parapage_sched::{EngineOpts, FaultPlan};
use parapage_workloads::{build_workload, fault_scenario, SeqSpec, FAULT_SCENARIOS};

fn workload_for(
    p: usize,
    k: usize,
    len: usize,
    shape: u32,
    seed: u64,
) -> Vec<Vec<parapage_cache::PageId>> {
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match (shape + x as u32) % 4 {
            0 => SeqSpec::Cyclic {
                width: (k / 2).max(1),
                len,
            },
            1 => SeqSpec::Fresh { len },
            2 => SeqSpec::Uniform {
                universe: (2 * k).max(2),
                len,
            },
            _ => SeqSpec::Zipf {
                universe: k.max(2),
                theta: 0.9,
                len,
            },
        })
        .collect();
    build_workload(&specs, seed).into_seqs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential oracle: engine and reference agree on the entire
    /// trace stream and the final result, for every policy, workload shape,
    /// and fault scenario.
    #[test]
    fn engine_matches_reference_everywhere(
        p in 1usize..5,
        kexp in 0u32..4,
        s in 2u64..14,
        len in 0usize..100,
        seed in 0u64..1_000_000,
        // Folded (policy, scenario, shape) selector: 6 policies x 5
        // scenarios x 4 workload shapes.
        combo in 0usize..120,
    ) {
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, s);
        let shape = (combo % 4) as u32;
        let seqs = workload_for(p, k, len, shape, seed);
        let policy = CONFORM_POLICIES[combo % CONFORM_POLICIES.len()];
        let scenario = FAULT_SCENARIOS[(combo / 6) % FAULT_SCENARIOS.len()];
        let plan = FaultPlan::new(
            fault_scenario(scenario, p, k, (len as u64 + 4) * s * 4, seed).unwrap(),
        );
        let hardened = scenario == "pressure" || scenario == "chaos";
        let opts = EngineOpts::default();
        let a = run_traced(policy, &seqs, &params, &opts, seed, &plan, hardened).unwrap();
        let b = run_reference_named(policy, &seqs, &params, &opts, seed, &plan, hardened).unwrap();
        let diverged = check_replay(&a.events, &b.events);
        prop_assert!(diverged.is_empty(), "{}/{}: {:?}", policy, scenario, diverged);
        prop_assert!(
            outcome_divergence(&a.outcome, &b.outcome).is_none(),
            "{}/{}: {:?}", policy, scenario,
            outcome_divergence(&a.outcome, &b.outcome)
        );
    }

    /// Replay determinism: the same (workload, policy, seed, plan) yields a
    /// byte-identical stream — including for the randomized pager.
    #[test]
    fn replay_is_deterministic(
        p in 1usize..5,
        len in 1usize..150,
        seed in 0u64..1_000_000,
        policy_idx in 0usize..6,
    ) {
        let k = 8 * p.next_power_of_two();
        let params = ModelParams::new(p, k, 8);
        let seqs = workload_for(p, k, len, 1, seed);
        let policy = CONFORM_POLICIES[policy_idx % CONFORM_POLICIES.len()];
        let plan = FaultPlan::new(fault_scenario("chaos", p, k, 4000, seed).unwrap());
        let opts = EngineOpts::default();
        let a = run_traced(policy, &seqs, &params, &opts, seed, &plan, true).unwrap();
        let b = run_traced(policy, &seqs, &params, &opts, seed, &plan, true).unwrap();
        prop_assert!(check_replay(&a.events, &b.events).is_empty());
    }

    /// Every successful clean run satisfies the streaming invariants: stream
    /// order, result consistency, and the policy's memory envelope; the
    /// paper pagers additionally satisfy box geometry.
    #[test]
    fn clean_runs_satisfy_streaming_invariants(
        p in 1usize..5,
        kexp in 1u32..4,
        len in 0usize..120,
        shape in 0u32..4,
        seed in 0u64..1_000_000,
        policy_idx in 0usize..6,
    ) {
        let k = p.next_power_of_two() << kexp;
        let params = ModelParams::new(p, k, 6);
        let seqs = workload_for(p, k, len, shape, seed);
        let policy = CONFORM_POLICIES[policy_idx % CONFORM_POLICIES.len()];
        let opts = EngineOpts::default();
        let run = run_traced(policy, &seqs, &params, &opts, seed, &FaultPlan::none(), false)
            .unwrap();
        let res = run.outcome.expect("clean runs must succeed");
        prop_assert!(check_stream_order(&run.events).is_empty());
        prop_assert!(check_run_consistency(&run.events, &res).is_empty());
        let budget = memory_envelope(policy, params.k, false, false);
        let mem = check_memory(&run.events, budget);
        prop_assert!(mem.is_empty(), "{}: {:?}", policy, mem);
        if matches!(policy, "det-par" | "rand-par") {
            let geo = check_box_geometry(&run.events, &params);
            prop_assert!(geo.is_empty(), "{}: {:?}", policy, geo);
        }
    }
}
