//! Proof the schedule-exploration harness can fail: re-introduce a seeded
//! concurrency bug (the dropped resize fence in the split-ordered map's
//! bucket initialization) and assert the explorer reports linearization
//! violations.
//!
//! Lives in its own integration-test binary because the sabotage switch is
//! process-global: flipping it next to concurrently running explorer tests
//! would poison them.

use parapage_cache::concurrent::sabotage;
use parapage_cache::{PageId, SplitOrderedMap};
use parapage_conform::{explore, scenarios, ExploreMode};

/// With the fence dropped, a grow makes previously inserted keys (the ones
/// whose hash routes to a freshly materialized bucket) unreachable: even a
/// fully sequential drive loses updates.
#[test]
fn dropped_resize_fence_loses_updates_sequentially() {
    sabotage::set_resize_fence_bug(true);
    let map = SplitOrderedMap::with_config(1, 1 << 20);
    for k in 0..32u64 {
        assert!(map.insert(PageId(k), k));
    }
    map.grow();
    map.grow();
    let survivors = (0..32u64).filter(|&k| map.contains(PageId(k))).count();
    sabotage::set_resize_fence_bug(false);
    assert!(
        survivors < 32,
        "the seeded bug failed to lose any of the 32 keys — the sabotage \
         switch is dead and the harness self-check proves nothing"
    );
}

/// The headline acceptance check: the explorer, pointed at the grow-fence
/// scenario with the seeded bug enabled, reports violations — the harness
/// demonstrably distinguishes a buggy substrate from a correct one.
#[test]
fn explorer_catches_the_seeded_resize_fence_bug() {
    let grow_fence = scenarios()
        .into_iter()
        .find(|s| s.name == "grow-fence")
        .expect("built-in scenario");

    // Clean substrate first: the same scenario and budget must be green,
    // otherwise a red result below proves nothing.
    let clean = explore(&grow_fence, 400, ExploreMode::Exhaustive);
    assert!(
        clean.passed(),
        "clean substrate must pass: {:?}",
        clean.violations
    );

    sabotage::set_resize_fence_bug(true);
    let sabotaged = explore(&grow_fence, 400, ExploreMode::Exhaustive);
    sabotage::set_resize_fence_bug(false);
    assert!(
        !sabotaged.violations.is_empty(),
        "explorer failed to catch the dropped resize fence in {} executions",
        sabotaged.executions
    );
    let v = &sabotaged.violations[0];
    assert!(
        v.contains("grow-fence") && v.contains("choices"),
        "violation must name the scenario and the reproducing choice \
         sequence, got: {v}"
    );
}
