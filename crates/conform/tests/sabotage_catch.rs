//! Proof the schedule-exploration harness can fail: re-introduce a seeded
//! concurrency bug (the dropped resize fence in the split-ordered map's
//! bucket initialization) and assert the explorer reports linearization
//! violations.
//!
//! Lives in its own integration-test binary because the sabotage switch is
//! process-global: flipping it next to concurrently running explorer tests
//! would poison them.

use std::sync::Mutex;

use parapage_cache::concurrent::{sabotage, EpochGc};
use parapage_cache::{PageId, SplitOrderedMap};
use parapage_conform::{explore, scenarios, ExploreMode};

/// Serializes this binary's tests: the sabotage switches are process-global
/// and the default test harness runs `#[test]`s on parallel threads, so a
/// clean sweep racing a flipped switch would be poisoned.
static SABOTAGE_LOCK: Mutex<()> = Mutex::new(());

/// With the fence dropped, a grow makes previously inserted keys (the ones
/// whose hash routes to a freshly materialized bucket) unreachable: even a
/// fully sequential drive loses updates.
#[test]
fn dropped_resize_fence_loses_updates_sequentially() {
    let _serial = SABOTAGE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sabotage::set_resize_fence_bug(true);
    let map = SplitOrderedMap::with_config(1, 1 << 20);
    for k in 0..32u64 {
        assert!(map.insert(PageId(k), k));
    }
    map.grow();
    map.grow();
    let survivors = (0..32u64).filter(|&k| map.contains(PageId(k))).count();
    sabotage::set_resize_fence_bug(false);
    assert!(
        survivors < 32,
        "the seeded bug failed to lose any of the 32 keys — the sabotage \
         switch is dead and the harness self-check proves nothing"
    );
}

/// The headline acceptance check: the explorer, pointed at the grow-fence
/// scenario with the seeded bug enabled, reports violations — the harness
/// demonstrably distinguishes a buggy substrate from a correct one.
#[test]
fn explorer_catches_the_seeded_resize_fence_bug() {
    let _serial = SABOTAGE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let grow_fence = scenarios()
        .into_iter()
        .find(|s| s.name == "grow-fence")
        .expect("built-in scenario");

    // Clean substrate first: the same scenario and budget must be green,
    // otherwise a red result below proves nothing.
    let clean = explore(&grow_fence, 400, ExploreMode::Exhaustive);
    assert!(
        clean.passed(),
        "clean substrate must pass: {:?}",
        clean.violations
    );

    sabotage::set_resize_fence_bug(true);
    let sabotaged = explore(&grow_fence, 400, ExploreMode::Exhaustive);
    sabotage::set_resize_fence_bug(false);
    assert!(
        !sabotaged.violations.is_empty(),
        "explorer failed to catch the dropped resize fence in {} executions",
        sabotaged.executions
    );
    let v = &sabotaged.violations[0];
    assert!(
        v.contains("grow-fence") && v.contains("choices"),
        "violation must name the scenario and the reproducing choice \
         sequence, got: {v}"
    );
}

/// The seeded *stale-pin retire* bug (retire bins by the guard's pinned
/// epoch instead of the current global epoch) hands a retired slot back
/// while a reader pinned at the newer epoch still holds its index; the
/// fixed binning keeps it in limbo until that reader unpins. Exercised
/// here at the [`EpochGc`] level because the hazard window is exactly one
/// epoch advance, which this drive reproduces deterministically.
#[test]
fn stale_epoch_retire_bug_frees_slots_under_live_readers() {
    let _serial = SABOTAGE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Build the lag: a thread pins at epoch 0, the epoch advances to 1
    // (pins at the current epoch never block try_advance), and a reader
    // pins at 1 — conceptually holding slot 7's index read pre-unlink.
    let drive = |gc: &EpochGc| {
        let stale = gc.pin();
        assert!(gc.try_advance().is_empty());
        assert_eq!(gc.current_epoch(), 1);
        let reader = gc.pin();
        gc.retire(&stale, 7);
        drop(stale);
        // The next advance is NOT blocked by `reader` (pinned at current).
        let freed = gc.try_advance();
        drop(reader);
        freed
    };

    sabotage::set_stale_epoch_retire_bug(true);
    let freed_buggy = drive(&EpochGc::new());
    sabotage::set_stale_epoch_retire_bug(false);
    assert_eq!(
        freed_buggy,
        vec![7],
        "the seeded bug failed to recycle the slot under a live reader — \
         the sabotage switch is dead and the harness self-check proves \
         nothing"
    );

    // Fixed binning: the same drive must keep the slot parked until the
    // reader unpins.
    let gc = EpochGc::new();
    assert!(drive(&gc).is_empty(), "fixed retire freed under a live pin");
    assert_eq!(gc.limbo_len(), 1);
    assert_eq!(gc.try_advance(), vec![7]);
}

/// The reclaim-churn scenario drives the full stale-pin shape through the
/// real map — remover parked mid-operation, churn inserts advancing the
/// epoch and draining limbo, a reader parked mid-walk — so the explorer
/// sweeps retire-under-a-lagging-pin interleavings. With the fixed binning
/// every enumerated schedule must linearize.
#[test]
fn reclaim_churn_scenario_sweeps_clean_with_fixed_binning() {
    let _serial = SABOTAGE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sc = scenarios()
        .into_iter()
        .find(|s| s.name == "reclaim-churn")
        .expect("built-in scenario");
    let r = explore(&sc, 2_000, ExploreMode::Exhaustive);
    assert!(r.passed(), "{:?}", r.violations);
    assert!(r.distinct >= 1_000, "only {} schedules", r.distinct);
}
