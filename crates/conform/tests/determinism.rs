//! Thread-count determinism: every parallel sweep in this crate must
//! produce byte-identical reports whether the pool runs 1, 2, or 8
//! threads. The pool pins each unit of work to a pre-assigned output
//! slot, so parallelism may only change *wall time*, never *results* —
//! these tests are the contract's enforcement.
//!
//! The thread-count override is process-global, so every test here
//! serializes on [`POOL_LOCK`] before touching it.

use std::sync::Mutex;

use proptest::prelude::*;

use parapage_conform::{
    competitive_envelope, conform_matrix, differential_sweep, ConformReport, DiffReport,
    EnvelopeReport,
};
use parapage_core::{DetPar, ModelParams};
use parapage_sched::{run_engine, EngineOpts};
use parapage_workloads::{build_workload, SeqSpec};

/// Serializes tests that set the global pool width.
static POOL_LOCK: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn render_diff(report: &DiffReport) -> String {
    let mut out = format!("runs={}\n", report.runs);
    for d in &report.divergences {
        out.push_str(&format!("{} :: {}\n", d.recipe, d.detail));
    }
    out
}

fn render_matrix(reports: &[ConformReport]) -> String {
    reports
        .iter()
        .map(|r| {
            format!(
                "{}/{} hardened={} outcome={} events={} violations={:?}\n",
                r.policy, r.scenario, r.hardened, r.outcome, r.events, r.violations
            )
        })
        .collect()
}

fn render_envelope(report: &EnvelopeReport) -> String {
    report
        .entries
        .iter()
        .map(|e| {
            format!(
                "{} on {} p={} ratio={:.6} bound={:.6}\n",
                e.policy, e.instance, e.p, e.ratio, e.bound
            )
        })
        .collect()
}

/// Runs `f` once per thread count and asserts every rendering matches the
/// single-threaded one.
fn assert_identical_across_widths(what: &str, f: impl Fn() -> String) {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline: Option<String> = None;
    for n in THREAD_COUNTS {
        let _width = rayon::pool::threads(n);
        let rendered = f();
        match &baseline {
            None => baseline = Some(rendered),
            Some(base) => assert_eq!(
                base, &rendered,
                "{what} diverged between 1 thread and {n} threads"
            ),
        }
    }
}

#[test]
fn differential_sweep_is_thread_count_invariant() {
    assert_identical_across_widths("differential_sweep", || {
        render_diff(&differential_sweep(24, 42))
    });
}

#[test]
fn conform_matrix_is_thread_count_invariant() {
    let p = 4;
    let k = 32;
    let params = ModelParams::new(p, k, 10);
    let specs: Vec<SeqSpec> = (0..p)
        .map(|x| match x % 2 {
            0 => SeqSpec::Cyclic {
                width: k / 4,
                len: 300,
            },
            _ => SeqSpec::Zipf {
                universe: k,
                theta: 0.9,
                len: 300,
            },
        })
        .collect();
    let w = build_workload(&specs, 7);
    let horizon = run_engine(
        &mut DetPar::new(&params),
        w.seqs(),
        &params,
        &EngineOpts::default(),
    )
    .expect("clean det-par run")
    .makespan
    .max(1);
    assert_identical_across_widths("conform_matrix", || {
        render_matrix(&conform_matrix(w.seqs(), &params, 7, horizon).expect("matrix"))
    });
}

#[test]
fn envelope_sweep_is_thread_count_invariant() {
    assert_identical_across_widths("competitive_envelope", || {
        render_envelope(&competitive_envelope(true, 42).expect("envelope"))
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sweep stays thread-count invariant for arbitrary (count, seed),
    /// not just the fixed recipes above.
    #[test]
    fn differential_sweep_invariant_for_arbitrary_inputs(
        count in 1usize..10,
        seed in 0u64..1_000,
    ) {
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let narrow = {
            let _w = rayon::pool::threads(2);
            render_diff(&differential_sweep(count, seed))
        };
        let wide = {
            let _w = rayon::pool::threads(8);
            render_diff(&differential_sweep(count, seed))
        };
        prop_assert_eq!(narrow, wide);
    }
}
