//! Loom-style schedule exploration for the concurrent cache substrate.
//!
//! The lock-free structures in `parapage-cache::concurrent` announce every
//! racy shared-memory access through a thread-local yield hook. This module
//! turns those hooks into a *virtual scheduler*: worker threads run real
//! code on real OS threads, but a token-passing controller admits exactly
//! one thread at a time and decides, at every yield point, which thread
//! runs next. An execution is therefore a deterministic function of the
//! controller's choice sequence — which makes interleavings enumerable,
//! replayable, and shrinkable.
//!
//! Three pieces:
//!
//! * **The scheduler** ([`run_schedule`]) — token passing over a
//!   mutex/condvar pair. A worker owns the token from the moment the
//!   controller grants it until its next yield point (or completion); no
//!   two workers ever run concurrently, so each step is atomic *between*
//!   instrumented access points — exactly the granularity at which the
//!   substrate's CASes can interleave.
//! * **The explorer** ([`explore`]) — depth-first enumeration of the
//!   choice tree by prefix replay: run with a plan, record every decision
//!   point and its fan-out, then increment the deepest incrementable
//!   choice like an odometer and replay. Every execution visits a distinct
//!   interleaving; the walk is exhaustive when the budget allows. A
//!   random-sampling mode covers schedules past any feasible DFS horizon.
//! * **The linearization checker** ([`check_linearizable`]) — Wing–Gong
//!   style: each operation records an `(invoked, returned)` interval from
//!   a global clock; the checker searches for a total order, consistent
//!   with real-time precedence, under which a sequential set model
//!   reproduces every observed result. No such order = a real concurrency
//!   bug, reported with the exact choice sequence that triggers it.
//!
//! Soundness of the approach rests on two facts, both load-bearing enough
//! to state: (1) the substrate is deterministic between yield points (no
//! wall-clock, no RNG, no unannounced shared access), so a choice sequence
//! fully determines an execution — replay *is* reproduction; and (2) the
//! yield points cover every shared load/CAS a racing thread can observe,
//! so the explored interleavings are exactly the sequentially-consistent
//! executions of the instrumented operations.
//!
//! The module also carries the conform-side checks for the sharded
//! baseline: per-shard ledgers replayed exactly against the sequential
//! policy ([`check_sharded_ledgers`]) and an aggregate hit/miss envelope
//! in the spirit of `envelope.rs` ([`check_concurrent_cache`]).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use parapage_cache::concurrent::{clear_yield_hook, set_yield_hook};
use parapage_cache::{Access, Cache, LruCache, PageId, ShardedLru, SplitOrderedMap};

/// One operation a virtual thread performs against the shared map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert a key (value = the op's invocation stamp).
    Insert(u64),
    /// Remove a key.
    Remove(u64),
    /// Membership probe.
    Contains(u64),
    /// Double the bucket array (the structure's resize).
    Grow,
}

/// A completed operation with its real-time interval and observed result.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Virtual thread that ran the op.
    pub thread: usize,
    /// The operation.
    pub op: Op,
    /// Observed boolean result (`true` for [`Op::Grow`]).
    pub result: bool,
    /// Global-clock stamp at invocation.
    pub invoked: u64,
    /// Global-clock stamp at return.
    pub returned: u64,
}

/// A schedule-exploration scenario: a shared map configuration, sequential
/// setup, and one op script per virtual thread.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Initial bucket count for the map under test.
    pub initial_buckets: usize,
    /// Load factor (keep high so growth happens only via [`Op::Grow`]).
    pub load_factor: usize,
    /// Ops applied sequentially before the threads start.
    pub setup: Vec<Op>,
    /// Per-thread op scripts (2–3 threads is the sweet spot).
    pub threads: Vec<Vec<Op>>,
}

/// How [`explore`] walks the schedule space.
#[derive(Clone, Copy, Debug)]
pub enum ExploreMode {
    /// Depth-first enumeration; every execution is a distinct interleaving.
    Exhaustive,
    /// Uniform random sampling of choices with a deterministic seed.
    Random {
        /// RNG seed (xorshift64*).
        seed: u64,
    },
}

/// Outcome of exploring one scenario.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Executions performed.
    pub executions: usize,
    /// Distinct interleavings visited (equals `executions` when exhaustive).
    pub distinct: usize,
    /// Whether the full choice tree was exhausted within the budget.
    pub complete: bool,
    /// Linearization violations (capped at [`MAX_REPORTED`] entries).
    pub violations: Vec<String>,
}

impl ExploreReport {
    /// `true` when no violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Cap on retained violation strings per report.
pub const MAX_REPORTED: usize = 5;

/// Fair-mode fallback threshold: a single execution taking more scheduler
/// grants than this is treated as a livelock symptom; the controller
/// switches to round-robin (which is fair, so lock-free ops terminate) and
/// the execution is flagged.
const STEP_CAP: usize = 100_000;

// ---------------------------------------------------------------------------
// Token-passing virtual scheduler
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Turn {
    Controller,
    Worker(usize),
}

struct SchedState {
    turn: Turn,
    finished: Box<[bool]>,
}

struct Sched {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Sched {
    fn new(workers: usize) -> Sched {
        Sched {
            state: Mutex::new(SchedState {
                turn: Turn::Controller,
                finished: vec![false; workers].into_boxed_slice(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Worker `i`: block until first granted the token.
    fn acquire(&self, i: usize) {
        let mut st = self.lock();
        while st.turn != Turn::Worker(i) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Worker `i`: hand the token back and block until granted again.
    fn yield_back(&self, i: usize) {
        let mut st = self.lock();
        st.turn = Turn::Controller;
        self.cv.notify_all();
        while st.turn != Turn::Worker(i) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Worker `i`: mark done and hand the token back for good.
    fn finish(&self, i: usize) {
        let mut st = self.lock();
        st.finished[i] = true;
        st.turn = Turn::Controller;
        self.cv.notify_all();
    }

    /// Controller: grant the token to worker `c`, block until it comes back.
    fn grant(&self, c: usize) {
        let mut st = self.lock();
        st.turn = Turn::Worker(c);
        self.cv.notify_all();
        while st.turn != Turn::Controller {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn runnable(&self) -> Vec<usize> {
        let st = self.lock();
        (0..st.finished.len())
            .filter(|&i| !st.finished[i])
            .collect()
    }
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Runs `scenario` once under the virtual scheduler.
///
/// `plan` fixes the first `plan.len()` choices (indices into the runnable
/// list); past the plan, choices come from `rng` when given, else default
/// to index 0 (the DFS left spine). Returns the full decision trace and
/// the linearization verdict for the execution's history.
pub fn run_schedule(
    scenario: &Scenario,
    plan: &[usize],
    mut rng: Option<&mut u64>,
) -> (Vec<(usize, usize)>, Vec<OpRecord>, Option<String>) {
    let map = SplitOrderedMap::with_config(scenario.initial_buckets, scenario.load_factor);
    let mut initial = Vec::new();
    for &op in &scenario.setup {
        apply_real(&map, op, 0);
        apply_model(&mut initial, op);
    }
    let sched = Arc::new(Sched::new(scenario.threads.len()));
    let clock = AtomicU64::new(1);
    let history: Mutex<Vec<OpRecord>> = Mutex::new(Vec::new());
    let mut taken: Vec<(usize, usize)> = Vec::new();
    let mut livelock = false;

    std::thread::scope(|s| {
        for (i, script) in scenario.threads.iter().enumerate() {
            let sched_arc = Arc::clone(&sched);
            let (map, clock, history) = (&map, &clock, &history);
            s.spawn(move || {
                sched_arc.acquire(i);
                let hook_sched = Arc::clone(&sched_arc);
                set_yield_hook(Box::new(move |_| hook_sched.yield_back(i)));
                for &op in script {
                    let invoked = clock.fetch_add(1, Ordering::SeqCst);
                    let result = apply_real(map, op, invoked);
                    let returned = clock.fetch_add(1, Ordering::SeqCst);
                    history
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(OpRecord {
                            thread: i,
                            op,
                            result,
                            invoked,
                            returned,
                        });
                }
                clear_yield_hook();
                sched_arc.finish(i);
            });
        }
        // Controller loop: one grant per scheduling step.
        let mut step = 0usize;
        loop {
            let runnable = sched.runnable();
            if runnable.is_empty() {
                break;
            }
            step += 1;
            let pick = if step > STEP_CAP {
                livelock = true;
                step % runnable.len() // fair round-robin drain
            } else if taken.len() < plan.len() {
                plan[taken.len()].min(runnable.len() - 1)
            } else {
                match rng.as_deref_mut() {
                    Some(seed) => (xorshift(seed) % runnable.len() as u64) as usize,
                    None => 0,
                }
            };
            // Record every decision, including round-robin picks after the
            // livelock fallback engages: exhaustive mode's next_plan() does
            // odometer arithmetic on this trace and Random mode dedups on
            // it, and both mis-count on a truncated prefix.
            taken.push((pick, runnable.len()));
            sched.grant(runnable[pick]);
        }
    });

    let mut history = history.into_inner().unwrap_or_else(|e| e.into_inner());
    history.sort_by_key(|r| r.invoked);
    let mut violation = check_linearizable(&initial, &history)
        .err()
        .map(|v| format!("{}: {v} [choices {:?}]", scenario.name, choices_of(&taken)));
    if livelock && violation.is_none() {
        violation = Some(format!(
            "{}: exceeded {STEP_CAP} scheduler steps (livelock suspected)",
            scenario.name
        ));
    }
    (taken, history, violation)
}

fn choices_of(taken: &[(usize, usize)]) -> Vec<usize> {
    taken.iter().map(|&(c, _)| c).collect()
}

fn apply_real(map: &SplitOrderedMap, op: Op, stamp: u64) -> bool {
    match op {
        Op::Insert(k) => map.insert(PageId(k), stamp),
        Op::Remove(k) => map.remove(PageId(k)),
        Op::Contains(k) => map.contains(PageId(k)),
        Op::Grow => {
            map.grow();
            true
        }
    }
}

/// Applies `op` to a sorted-vec set model (setup only: results unchecked).
fn apply_model(state: &mut Vec<u64>, op: Op) {
    match op {
        Op::Insert(k) => {
            if let Err(at) = state.binary_search(&k) {
                state.insert(at, k);
            }
        }
        Op::Remove(k) => {
            if let Ok(at) = state.binary_search(&k) {
                state.remove(at);
            }
        }
        Op::Contains(_) | Op::Grow => {}
    }
}

// ---------------------------------------------------------------------------
// Wing–Gong linearization check
// ---------------------------------------------------------------------------

/// Checks that `history` (ops with real-time intervals) is linearizable
/// against a sequential set model starting from `initial` membership.
///
/// Searches for a total order of the ops that (a) respects real-time
/// precedence — if op `a` returned before op `b` was invoked, `a` comes
/// first — and (b) makes every observed result correct under sequential
/// set semantics. Memoized on (linearized-op set, membership state), which
/// keeps the search polynomial-ish for the short histories the explorer
/// generates.
pub fn check_linearizable(initial: &[u64], history: &[OpRecord]) -> Result<(), String> {
    assert!(
        history.len() <= 63,
        "history too long for the bitmask search"
    );
    // Canonicalize keys to bit positions for a compact memo key.
    let mut keys: Vec<u64> = initial.to_vec();
    for r in history {
        if let Op::Insert(k) | Op::Remove(k) | Op::Contains(k) = r.op {
            keys.push(k);
        }
    }
    keys.sort_unstable();
    keys.dedup();
    assert!(
        keys.len() <= 64,
        "too many distinct keys for the bitmask model"
    );
    let bit = |k: u64| keys.binary_search(&k).expect("key was collected") as u32;
    let mut state0: u64 = 0;
    for &k in initial {
        state0 |= 1 << bit(k);
    }

    let full: u64 = if history.is_empty() {
        0
    } else {
        (1u64 << history.len()) - 1
    };
    let mut memo: HashSet<(u64, u64)> = HashSet::new();
    let mut stack = vec![(0u64, state0)];
    while let Some((done, state)) = stack.pop() {
        if done == full {
            return Ok(());
        }
        if !memo.insert((done, state)) {
            continue;
        }
        // An undone op is a linearization candidate iff no *other* undone
        // op returned before it was invoked.
        let min_ret = history
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, r)| r.returned)
            .min()
            .unwrap_or(u64::MAX);
        for (i, r) in history.iter().enumerate() {
            if done & (1 << i) != 0 || r.invoked > min_ret {
                continue;
            }
            let next = match r.op {
                Op::Insert(k) => {
                    let b = 1u64 << bit(k);
                    if (state & b == 0) != r.result {
                        continue;
                    }
                    Some(state | b)
                }
                Op::Remove(k) => {
                    let b = 1u64 << bit(k);
                    if (state & b != 0) != r.result {
                        continue;
                    }
                    Some(state & !b)
                }
                Op::Contains(k) => {
                    if (state & (1u64 << bit(k)) != 0) != r.result {
                        continue;
                    }
                    Some(state)
                }
                Op::Grow => Some(state),
            };
            if let Some(ns) = next {
                stack.push((done | (1 << i), ns));
            }
        }
    }
    Err(format!(
        "no linearization explains the history: {:?}",
        history
            .iter()
            .map(|r| format!(
                "T{} {:?}={} @[{},{}]",
                r.thread, r.op, r.result, r.invoked, r.returned
            ))
            .collect::<Vec<_>>()
    ))
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Odometer increment over a decision trace: the next unexplored DFS plan,
/// or `None` when the whole tree is exhausted.
fn next_plan(taken: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut prefix = taken.to_vec();
    while let Some((c, n)) = prefix.pop() {
        if c + 1 < n {
            let mut plan = choices_of(&prefix);
            plan.push(c + 1);
            return Some(plan);
        }
    }
    None
}

/// Explores `scenario` for at most `budget` executions under `mode`.
pub fn explore(scenario: &Scenario, budget: usize, mode: ExploreMode) -> ExploreReport {
    let mut report = ExploreReport {
        scenario: scenario.name.to_string(),
        executions: 0,
        distinct: 0,
        complete: false,
        violations: Vec::new(),
    };
    match mode {
        ExploreMode::Exhaustive => {
            let mut plan: Vec<usize> = Vec::new();
            loop {
                if report.executions >= budget {
                    return report;
                }
                let (taken, _, violation) = run_schedule(scenario, &plan, None);
                report.executions += 1;
                report.distinct += 1;
                if let Some(v) = violation {
                    if report.violations.len() < MAX_REPORTED {
                        report.violations.push(v);
                    }
                }
                match next_plan(&taken) {
                    Some(p) => plan = p,
                    None => {
                        report.complete = true;
                        return report;
                    }
                }
            }
        }
        ExploreMode::Random { seed } => {
            let mut rng = seed.max(1);
            let mut seen: HashSet<Vec<usize>> = HashSet::new();
            for _ in 0..budget {
                let (taken, _, violation) = run_schedule(scenario, &[], Some(&mut rng));
                report.executions += 1;
                if seen.insert(choices_of(&taken)) {
                    report.distinct += 1;
                }
                if let Some(v) = violation {
                    if report.violations.len() < MAX_REPORTED {
                        report.violations.push(v);
                    }
                }
            }
            report
        }
    }
}

/// The built-in scenario suite covering the core list operations
/// (insert / find / delete / resize) under 2–3 virtual threads.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "insert-insert-contested",
            initial_buckets: 1,
            load_factor: 1 << 20,
            setup: vec![],
            threads: vec![
                vec![Op::Insert(1), Op::Insert(2)],
                vec![Op::Insert(1), Op::Contains(2)],
            ],
        },
        Scenario {
            name: "insert-remove-contested",
            initial_buckets: 1,
            load_factor: 1 << 20,
            setup: vec![Op::Insert(7)],
            threads: vec![
                vec![Op::Remove(7), Op::Insert(7)],
                vec![Op::Remove(7), Op::Contains(7)],
            ],
        },
        Scenario {
            name: "grow-fence",
            initial_buckets: 1,
            load_factor: 1 << 20,
            setup: vec![Op::Insert(1), Op::Insert(2), Op::Insert(3), Op::Insert(4)],
            threads: vec![
                vec![Op::Insert(5), Op::Contains(3)],
                vec![Op::Grow, Op::Contains(1), Op::Contains(2)],
                vec![Op::Contains(4), Op::Remove(2)],
            ],
        },
        // Forces retire-under-a-lagging-pin interleavings: the remover can
        // pin, lose the token while the churn thread's allocations advance
        // the global epoch (and drain limbo into the free stack), then
        // unlink + retire with its pin one epoch stale — all while the
        // reader thread is parked mid-walk holding the victim's slot index.
        // In split-order, 4 precedes 2 precedes 1 (reversed-bit keys), so a
        // recycled node(4) slot mid-walk can derail Contains(2)/Contains(1).
        Scenario {
            name: "reclaim-churn",
            initial_buckets: 1,
            load_factor: 1 << 20,
            setup: vec![Op::Insert(4), Op::Insert(2), Op::Insert(1)],
            threads: vec![
                vec![Op::Remove(4)],
                vec![Op::Insert(3), Op::Insert(5)],
                vec![Op::Contains(2), Op::Contains(1)],
            ],
        },
        Scenario {
            name: "triple-mixed",
            initial_buckets: 1,
            load_factor: 1 << 20,
            setup: vec![Op::Insert(10)],
            threads: vec![
                vec![Op::Insert(11), Op::Remove(10)],
                vec![Op::Contains(10), Op::Insert(12)],
                vec![Op::Remove(11), Op::Contains(12)],
            ],
        },
    ]
}

/// Explores every built-in scenario, splitting `budget` across them.
/// Budget a small scenario exhausts without spending rolls over to the
/// deeper trees, so the whole allowance turns into distinct interleavings.
pub fn explore_all(budget: usize, mode: ExploreMode) -> Vec<ExploreReport> {
    let all = scenarios();
    let mut remaining = budget;
    let mut reports = Vec::with_capacity(all.len());
    for (i, sc) in all.iter().enumerate() {
        let share = (remaining / (all.len() - i)).max(1);
        let report = explore(sc, share, mode);
        remaining = remaining.saturating_sub(report.executions);
        reports.push(report);
    }
    reports
}

// ---------------------------------------------------------------------------
// Sharded-baseline history checks
// ---------------------------------------------------------------------------

/// Replays each shard's access ledger through a fresh sequential LRU of the
/// same capacity; any diverging outcome is a violation. This is the exact
/// (not envelope) check: the shard lock serialized the accesses, so the
/// ledger order *is* a linearization and must reproduce bit-for-bit.
pub fn check_sharded_ledgers(
    shard_caps: &[usize],
    ledgers: &[Vec<(PageId, Access)>],
) -> Vec<String> {
    let mut violations = Vec::new();
    for (i, ledger) in ledgers.iter().enumerate() {
        let mut twin = LruCache::new(shard_caps[i]);
        for (at, &(page, outcome)) in ledger.iter().enumerate() {
            let expect = twin.access(page);
            if expect != outcome {
                violations.push(format!(
                    "shard {i} op {at}: page {} observed {outcome:?}, sequential replay says {expect:?}",
                    page.0
                ));
                break;
            }
        }
    }
    violations
}

/// Outcome of one concurrent-cache stress cell.
#[derive(Clone, Debug)]
pub struct ConcurrentCell {
    /// Total accesses performed.
    pub ops: usize,
    /// Aggregate misses observed across all threads.
    pub misses: usize,
    /// Violations from ledger replay and the hit/miss envelope.
    pub violations: Vec<String>,
}

impl ConcurrentCell {
    /// `true` when the cell is violation-free.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Hammers one [`ShardedLru`] from `threads` real OS threads and checks the
/// history two ways: exact per-shard ledger replay, and an aggregate
/// hit/miss envelope — total misses must be at least the cold-start floor
/// (every distinct page faults once) and at most the sequential
/// worst-case over any serialization (each thread's private trace run
/// alone), mirroring the loose-guardrail style of `envelope.rs`.
pub fn check_concurrent_cache(
    threads: usize,
    ops_per_thread: usize,
    capacity: usize,
    shards: usize,
    seed: u64,
) -> ConcurrentCell {
    let cache = ShardedLru::with_shards(capacity, shards);
    cache.set_ledger_recording(true);
    let traces: Vec<Vec<PageId>> = (0..threads as u64)
        .map(|t| {
            let mut s = seed.wrapping_add(t).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..ops_per_thread)
                .map(|_| PageId(xorshift(&mut s) % (2 * capacity.max(1)) as u64))
                .collect()
        })
        .collect();
    let miss_count = AtomicU64::new(0);
    std::thread::scope(|s| {
        for trace in &traces {
            let (cache, miss_count) = (&cache, &miss_count);
            s.spawn(move || {
                for &page in trace {
                    if !cache.access_shared(page).is_hit() {
                        miss_count.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    let misses = miss_count.load(Ordering::SeqCst) as usize;
    let mut violations = check_sharded_ledgers(&cache.shard_capacities(), &cache.take_ledgers());

    let distinct: HashSet<PageId> = traces.iter().flatten().copied().collect();
    if misses < distinct.len() {
        violations.push(format!(
            "envelope: {misses} misses below the cold-start floor of {} distinct pages",
            distinct.len()
        ));
    }
    // Upper envelope: interleaving can only *pollute* a shard relative to
    // each thread running alone, never help every thread at once; the sum
    // of solo-run misses bounds any serialization from above only loosely,
    // so allow the full op count as the hard ceiling and flag crossings of
    // the solo sum as suspicious only when they also exceed it.
    let solo_sum: usize = traces
        .iter()
        .map(|trace| {
            let mut solo = ShardedLru::with_shards(capacity, shards);
            trace.iter().filter(|&&p| !solo.access(p).is_hit()).count()
        })
        .sum();
    let ceiling = solo_sum.max(distinct.len()) + threads * ops_per_thread / 4;
    if misses > ceiling {
        violations.push(format!(
            "envelope: {misses} misses exceed ceiling {ceiling} (solo sum {solo_sum})"
        ));
    }
    ConcurrentCell {
        ops: threads * ops_per_thread,
        misses,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odometer_walks_the_tree_in_order() {
        assert_eq!(next_plan(&[(0, 2), (1, 2)]), Some(vec![1]));
        assert_eq!(next_plan(&[(0, 2), (0, 3)]), Some(vec![0, 1]));
        assert_eq!(next_plan(&[(1, 2), (2, 3)]), None);
        assert_eq!(next_plan(&[(0, 1)]), None);
        assert_eq!(next_plan(&[]), None);
    }

    #[test]
    fn linearizable_history_accepted() {
        // T0: insert(1) true, overlapping T1: contains(1) — either result
        // is linearizable while they overlap.
        for observed in [true, false] {
            let h = vec![
                OpRecord {
                    thread: 0,
                    op: Op::Insert(1),
                    result: true,
                    invoked: 1,
                    returned: 4,
                },
                OpRecord {
                    thread: 1,
                    op: Op::Contains(1),
                    result: observed,
                    invoked: 2,
                    returned: 3,
                },
            ];
            assert!(check_linearizable(&[], &h).is_ok(), "observed={observed}");
        }
    }

    #[test]
    fn non_linearizable_history_rejected() {
        // contains(1) returned false strictly *after* insert(1) returned
        // true: no legal order explains it.
        let h = vec![
            OpRecord {
                thread: 0,
                op: Op::Insert(1),
                result: true,
                invoked: 1,
                returned: 2,
            },
            OpRecord {
                thread: 1,
                op: Op::Contains(1),
                result: false,
                invoked: 3,
                returned: 4,
            },
        ];
        assert!(check_linearizable(&[], &h).is_err());
    }

    #[test]
    fn lost_update_history_rejected() {
        // Both inserts of the same absent key report success with disjoint
        // intervals — impossible for a set.
        let h = vec![
            OpRecord {
                thread: 0,
                op: Op::Insert(5),
                result: true,
                invoked: 1,
                returned: 2,
            },
            OpRecord {
                thread: 1,
                op: Op::Insert(5),
                result: true,
                invoked: 3,
                returned: 4,
            },
        ];
        assert!(check_linearizable(&[], &h).is_err());
    }

    #[test]
    fn exhaustive_exploration_of_a_small_scenario_is_clean() {
        let sc = Scenario {
            name: "tiny",
            initial_buckets: 1,
            load_factor: 1 << 20,
            setup: vec![],
            threads: vec![vec![Op::Insert(1)], vec![Op::Insert(1)]],
        };
        let report = explore(&sc, 50_000, ExploreMode::Exhaustive);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.complete, "tiny scenario must exhaust");
        assert!(report.distinct >= 2, "at least two interleavings exist");
    }

    #[test]
    fn random_sampling_is_clean_and_deterministic() {
        let sc = &scenarios()[1];
        let a = explore(sc, 60, ExploreMode::Random { seed: 9 });
        let b = explore(sc, 60, ExploreMode::Random { seed: 9 });
        assert!(a.passed(), "{:?}", a.violations);
        assert_eq!(a.distinct, b.distinct, "same seed, same walk");
        assert!(
            a.distinct > 10,
            "sampling found only {} schedules",
            a.distinct
        );
    }

    #[test]
    fn sharded_ledger_replay_flags_a_forged_history() {
        let caps = vec![2];
        let forged = vec![vec![
            (PageId(1), Access::Miss),
            (PageId(1), Access::Miss), // second access must be a hit
        ]];
        let v = check_sharded_ledgers(&caps, &forged);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("shard 0 op 1"), "{}", v[0]);
    }

    #[test]
    fn concurrent_cache_cell_passes() {
        let cell = check_concurrent_cache(4, 300, 64, 4, 42);
        assert!(cell.passed(), "{:?}", cell.violations);
        assert_eq!(cell.ops, 1200);
        assert!(cell.misses >= 1, "a cold cache must miss");
    }
}
