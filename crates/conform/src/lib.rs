//! # parapage-conform
//!
//! The conformance oracle for the parallel paging engine: machine-checked
//! paper invariants over the engine's trace stream, a differential
//! reference simulator, and empirical competitive-ratio guardrails.
//!
//! The paper's guarantees are structural — DET-PAR is `O(log p)`-
//! competitive *because* it keeps every processor in possession of a base
//! box and packs each short height class into a `k/log p` strip (Lemma 5);
//! box heights are powers of two in `[k/p, k]` by the §2 normal form; no
//! packing oversubscribes the budget. This crate turns those properties
//! into an always-on oracle over the [`parapage_sched::TraceEvent`] stream:
//!
//! * [`checkers`] — streaming invariant checkers: instantaneous memory ≤
//!   budget at every event (including mid-shrink under
//!   `FaultEvent::MemoryPressure`), box geometry, DET-PAR base-box
//!   possession, strip widths, phase halving, replay determinism, and
//!   stream/result consistency.
//! * [`reference`] — a deliberately naive `O(n·p)` re-execution simulator
//!   sharing no scheduling code with the optimized engine, for
//!   event-for-event differential testing.
//! * [`oracle`] — the harness: [`oracle::conform_run`] verdicts one
//!   (policy, fault scenario) pair; [`oracle::conform_matrix`] sweeps all
//!   of them; [`oracle::differential_sweep`] hunts divergences on
//!   generated workloads.
//! * [`envelope`] — competitive-ratio guardrails on the Theorem-4
//!   adversarial instances: measured makespan / Lemma-8 OPT must stay
//!   inside a `c·log p` envelope.
//! * [`resume`] — resume equivalence: a run that crashes and recovers
//!   from snapshots (the `parapage-sched` supervisor) must reproduce the
//!   uninterrupted run's result and trace byte-for-byte; drives the
//!   `parapage chaos` matrix.
//! * [`schedules`] — loom-style schedule exploration for the concurrent
//!   cache substrate: a token-passing virtual scheduler over the yield
//!   points instrumented into `parapage-cache::concurrent`, DFS/random
//!   enumeration of thread interleavings, and a Wing–Gong linearization
//!   checker over the recorded histories; drives
//!   `parapage conform --concurrent`.
//! * [`walchaos`] — WAL corruption chaos: torn tails, partial tails,
//!   mid-record truncations, bit flips, and stale-base/newer-log pairings
//!   inflicted on the incremental checkpoint log at recovery time must be
//!   detected as typed truncations and still recover byte-identically;
//!   drives `parapage chaos --wal`.
//!
//! The `parapage conform` CLI subcommand drives all of this; it is also
//! wired into `scripts/check.sh` as a pre-PR gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkers;
pub mod envelope;
pub mod netfault;
pub mod oracle;
pub mod reference;
pub mod resume;
pub mod schedules;
pub mod walchaos;

pub use checkers::{
    check_box_geometry, check_det_par_stream, check_memory, check_phase_structure, check_replay,
    check_run_consistency, check_stream_order, merge_phases,
};
pub use envelope::{competitive_envelope, EnvelopeEntry, EnvelopeReport};
pub use netfault::{net_cells, NetCell, NetFaultKind, NetFaultPlan};
pub use oracle::{
    conform_matrix, conform_run, differential_sweep, memory_envelope, outcome_divergence,
    run_reference_named, run_traced, ConformReport, DiffReport, Divergence, TracedRun,
    CONFORM_POLICIES,
};
pub use reference::run_reference;
pub use resume::{
    boxed_policy, check_corruption_rejection, check_resume, resume_matrix, ResumeCell,
};
pub use schedules::{
    check_concurrent_cache, check_linearizable, check_sharded_ledgers, explore, explore_all,
    run_schedule, scenarios, ConcurrentCell, ExploreMode, ExploreReport, Op, OpRecord, Scenario,
};
pub use walchaos::{
    check_wal_corruption, wal_chaos_matrix, SabotagedStore, WalCell, WalCorruption,
};

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_cache::{PageId, ProcId};
    use parapage_core::ModelParams;
    use parapage_sched::{EngineOpts, FaultPlan, TraceEvent};
    use parapage_workloads::{build_workload, fault_scenario, SeqSpec};

    fn small_workload(p: usize, len: usize, width: usize) -> Vec<Vec<PageId>> {
        let specs: Vec<SeqSpec> = (0..p).map(|_| SeqSpec::Cyclic { width, len }).collect();
        build_workload(&specs, 7).into_seqs()
    }

    #[test]
    fn engine_and_reference_agree_on_a_clean_run() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = small_workload(4, 200, 8);
        let opts = EngineOpts::default();
        let plan = FaultPlan::none();
        for policy in CONFORM_POLICIES {
            let a = run_traced(policy, &seqs, &params, &opts, 3, &plan, false).unwrap();
            let b = run_reference_named(policy, &seqs, &params, &opts, 3, &plan, false).unwrap();
            assert!(
                check_replay(&a.events, &b.events).is_empty(),
                "policy {policy} diverged from reference"
            );
            assert!(outcome_divergence(&a.outcome, &b.outcome).is_none());
        }
    }

    #[test]
    fn engine_and_reference_agree_under_chaos() {
        let params = ModelParams::new(4, 32, 10);
        let seqs = small_workload(4, 150, 12);
        let plan = FaultPlan::new(fault_scenario("chaos", 4, 32, 2000, 11).unwrap());
        let opts = EngineOpts::default();
        let a = run_traced("det-par", &seqs, &params, &opts, 3, &plan, true).unwrap();
        let b = run_reference_named("det-par", &seqs, &params, &opts, 3, &plan, true).unwrap();
        assert!(check_replay(&a.events, &b.events).is_empty());
        assert!(outcome_divergence(&a.outcome, &b.outcome).is_none());
    }

    #[test]
    fn conform_run_passes_det_par_clean() {
        let params = ModelParams::new(8, 64, 10);
        let seqs = small_workload(8, 400, 16);
        let report =
            conform_run("det-par", &seqs, &params, 3, "clean", &FaultPlan::none()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.outcome, "ok");
        assert!(report.events > 0);
    }

    #[test]
    fn memory_checker_flags_oversubscription() {
        // Two concurrent height-20 grants against a budget of 32.
        let events = vec![
            TraceEvent::Grant {
                proc: ProcId(0),
                at: 0,
                height: 20,
                duration: 100,
                release_at: 100,
            },
            TraceEvent::Grant {
                proc: ProcId(1),
                at: 50,
                height: 20,
                duration: 100,
                release_at: 150,
            },
        ];
        let v = check_memory(&events, 32);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("40 pages live"), "{}", v[0]);
        // The same stream fits a 64-page budget.
        assert!(check_memory(&events, 64).is_empty());
    }

    #[test]
    fn memory_checker_tracks_mid_run_shrink() {
        use parapage_core::FaultEvent;
        // A grant of 16 fits the initial budget 32 but violates the shrunken
        // budget delivered before it.
        let events = vec![
            TraceEvent::Fault {
                at: 10,
                event: FaultEvent::MemoryPressure {
                    at: 10,
                    new_limit: 8,
                },
            },
            TraceEvent::Grant {
                proc: ProcId(0),
                at: 10,
                height: 16,
                duration: 50,
                release_at: 60,
            },
        ];
        let v = check_memory(&events, 32);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("budget 8"));
    }

    #[test]
    fn geometry_checker_flags_bad_heights() {
        let params = ModelParams::new(8, 64, 10);
        let mk = |height| TraceEvent::Grant {
            proc: ProcId(0),
            at: 0,
            height,
            duration: 10,
            release_at: 10,
        };
        // 24 is not a power of two; 128 exceeds k; 4 is below k/p̂ = 8.
        assert_eq!(check_box_geometry(&[mk(24)], &params).len(), 1);
        assert_eq!(check_box_geometry(&[mk(128)], &params).len(), 1);
        assert_eq!(check_box_geometry(&[mk(4)], &params).len(), 1);
        assert!(check_box_geometry(&[mk(8), mk(64), mk(0)], &params).is_empty());
    }

    #[test]
    fn differential_sweep_is_clean_on_a_sample() {
        let report = differential_sweep(40, 9);
        assert_eq!(report.runs, 40);
        assert!(
            report.divergences.is_empty(),
            "first: {} — {}",
            report.divergences[0].recipe,
            report.divergences[0].detail
        );
    }

    #[test]
    fn envelope_quick_passes() {
        let report = competitive_envelope(true, 42).unwrap();
        assert!(!report.entries.is_empty());
        assert!(report.passed(), "violations: {:?}", report.violations());
    }
}
