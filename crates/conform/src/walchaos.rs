//! WAL corruption chaos: torn writes against the incremental checkpoint
//! log must lose at most the tail, never correctness.
//!
//! The supervisor's WAL-backed recovery contract (see `parapage-sched`'s
//! `wal` module) is: whatever happens to the bytes the recovery scan reads
//! — a torn final write, a partial tail, a truncation in the middle of the
//! log, a flipped bit, a stale base paired with a newer log, a corrupt
//! base — the supervised run either resumes from the last intact record or
//! restarts from an earlier point, and in every case finishes
//! **byte-identical** to the uninterrupted run. Corruption is detected as
//! a typed `CodecError` and surfaced as a truncation count; it is never a
//! panic and never a silent divergence.
//!
//! This module turns that contract into matrix cells: a
//! [`SabotagedStore`] wraps the supervisor's checkpoint store and serves a
//! corrupted `(base, log)` view exactly once — at the recovery read that
//! follows an injected crash — then [`check_wal_corruption`] diffs the
//! recovered run against the uninterrupted baseline field by field and
//! event by event. [`wal_chaos_matrix`] sweeps every checkpoint-capable
//! policy (RNG-backed ones included) across every corruption kind. The
//! `parapage chaos --wal` CLI subcommand drives it.

use parapage_cache::{
    fnv1a64, parse_wal_record, LruCache, PageId, WalRecordStep, WAL_RECORD_HEADER,
};
use parapage_core::ModelParams;
use parapage_sched::{
    CheckpointStore, CrashPlan, Engine, EngineOpts, FaultPlan, MemStore, Supervisor,
    SupervisorOpts, TraceRecorder,
};

use crate::checkers;
use crate::oracle::CONFORM_POLICIES;
use crate::resume::boxed_policy;

/// The corruption a [`SabotagedStore`] inflicts on the recovery read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalCorruption {
    /// The last bytes of the log vanish mid-record — the classic torn
    /// write of an append that did not complete.
    TornTail,
    /// The log ends a few bytes into the final record's header — a tear so
    /// early the record's frame is unreadable.
    PartialTail,
    /// Bytes are cut out of the *middle* of the log (an interior record is
    /// truncated), desynchronizing everything after it.
    MidRecord,
    /// One byte somewhere in the log flips — silent media corruption; the
    /// digest chain must catch it.
    BitFlip,
    /// The log is paired with the *previous* base snapshot — a stale base
    /// under a newer log, as when a base write was lost but its log
    /// survived. The chain seed must refuse every record.
    StaleBase,
    /// One byte of the base snapshot itself flips: recovery must fall back
    /// to restarting the run from scratch.
    BaseFlip,
}

impl WalCorruption {
    /// Every corruption kind, in matrix order.
    pub const ALL: [WalCorruption; 6] = [
        WalCorruption::TornTail,
        WalCorruption::PartialTail,
        WalCorruption::MidRecord,
        WalCorruption::BitFlip,
        WalCorruption::StaleBase,
        WalCorruption::BaseFlip,
    ];

    /// Stable cell name (used by `parapage chaos --cells`).
    pub fn name(&self) -> &'static str {
        match self {
            WalCorruption::TornTail => "torn-tail",
            WalCorruption::PartialTail => "partial-tail",
            WalCorruption::MidRecord => "mid-record",
            WalCorruption::BitFlip => "bit-flip",
            WalCorruption::StaleBase => "stale-base",
            WalCorruption::BaseFlip => "base-flip",
        }
    }
}

impl std::fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Byte offset where the last complete record of `log` begins, given the
/// base that seeds the digest chain. `None` when no record parses.
fn last_record_start(base: &[u8], log: &[u8]) -> Option<usize> {
    let mut chain = fnv1a64(base);
    let mut off = 0usize;
    let mut last = None;
    loop {
        match parse_wal_record(&log[off..], chain) {
            WalRecordStep::Record {
                digest, consumed, ..
            } => {
                last = Some(off);
                chain = digest;
                off += consumed;
            }
            _ => return last,
        }
    }
}

/// A checkpoint store that serves a corrupted `(base, log)` view exactly
/// once — on the first recovery read that finds content — and behaves like
/// a faithful [`MemStore`] otherwise. Writes are never corrupted: the
/// sabotage models what a crash does to storage, not a broken writer.
pub struct SabotagedStore {
    inner: MemStore,
    prev_base: Option<Vec<u8>>,
    base_shadow: Option<Vec<u8>>,
    corruption: WalCorruption,
    struck: bool,
    faithful: bool,
    /// What the strike actually did, for diagnostics.
    pub strike_note: Option<String>,
    serve_base: Vec<u8>,
    serve_log: Vec<u8>,
}

impl SabotagedStore {
    /// A store that will inflict `corruption` on its first non-empty view.
    pub fn new(corruption: WalCorruption) -> Self {
        SabotagedStore {
            inner: MemStore::new(),
            prev_base: None,
            base_shadow: None,
            corruption,
            struck: false,
            faithful: false,
            strike_note: None,
            serve_base: Vec::new(),
            serve_log: Vec::new(),
        }
    }

    /// `true` once the corrupted view has been served.
    pub fn struck(&self) -> bool {
        self.struck
    }

    /// `true` when the strike had nothing to corrupt and the view was
    /// served unchanged (e.g. an empty log, or no previous base to serve
    /// as stale).
    pub fn served_faithfully(&self) -> bool {
        self.faithful
    }

    fn corrupt(&mut self, base: Vec<u8>, log: Vec<u8>) {
        if log.is_empty() && self.corruption != WalCorruption::BaseFlip {
            self.faithful = true;
            self.strike_note = Some("log empty; nothing to corrupt".to_string());
            self.serve_base = base;
            self.serve_log = log;
            return;
        }
        let note;
        let (serve_base, serve_log) = match self.corruption {
            WalCorruption::TornTail => {
                let keep = log.len().saturating_sub(7);
                note = format!("tore the log from {} to {keep} bytes", log.len());
                (base, log[..keep].to_vec())
            }
            WalCorruption::PartialTail => {
                let cut = last_record_start(&base, &log)
                    .map(|s| s + WAL_RECORD_HEADER - 2)
                    .unwrap_or(0)
                    .min(log.len());
                note = format!("cut the log mid-header at byte {cut} of {}", log.len());
                (base, log[..cut].to_vec())
            }
            WalCorruption::MidRecord => {
                // Remove a chunk from inside the first record's payload:
                // the log shrinks and every later byte shifts.
                let cut = (WAL_RECORD_HEADER + 4).min(log.len());
                let splice = 8usize.min(log.len().saturating_sub(cut));
                let mut l = log.clone();
                l.drain(cut..cut + splice);
                note = format!("spliced {splice} bytes out of the log at byte {cut}");
                (base, l)
            }
            WalCorruption::BitFlip => {
                let mut l = log.clone();
                if !l.is_empty() {
                    let mid = l.len() / 2;
                    l[mid] ^= 0x20;
                    note = format!("flipped a bit at log byte {mid}");
                } else {
                    self.faithful = true;
                    note = "log empty; nothing to flip".to_string();
                }
                (base, l)
            }
            WalCorruption::StaleBase => match self.prev_base.clone() {
                Some(stale) if !log.is_empty() => {
                    note = format!(
                        "served the previous base ({} bytes) under the current log",
                        stale.len()
                    );
                    (stale, log)
                }
                _ => {
                    self.faithful = true;
                    note = "no previous base or empty log; serving faithfully".to_string();
                    (base, log)
                }
            },
            WalCorruption::BaseFlip => {
                let mut b = base.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x10;
                note = format!("flipped a bit at base byte {mid}");
                (b, log)
            }
        };
        self.strike_note = Some(note);
        self.serve_base = serve_base;
        self.serve_log = serve_log;
    }
}

impl CheckpointStore for SabotagedStore {
    fn install_base(&mut self, snapshot: Vec<u8>) {
        self.prev_base = self.base_shadow.take();
        self.base_shadow = Some(snapshot.clone());
        self.inner.install_base(snapshot);
    }

    fn append_record(&mut self, record: Vec<u8>) {
        self.inner.append_record(record);
    }

    fn view(&mut self) -> Option<(&[u8], &[u8])> {
        if self.struck {
            return self.inner.view();
        }
        let (base, log) = match self.inner.view() {
            Some((b, l)) => (b.to_vec(), l.to_vec()),
            None => return None,
        };
        self.struck = true;
        self.corrupt(base, log);
        Some((&self.serve_base, &self.serve_log))
    }
}

/// The verdict of one WAL corruption cell.
pub struct WalCell {
    /// Policy name.
    pub policy: String,
    /// Corruption kind.
    pub corruption: WalCorruption,
    /// Engine tick the injected crash fired at.
    pub crash_tick: u64,
    /// Recovery truncations the supervisor reported.
    pub truncations: u32,
    /// WAL records appended across the run.
    pub wal_records: u64,
    /// Divergences from the uninterrupted baseline; empty means the cell
    /// passed.
    pub violations: Vec<String>,
}

impl WalCell {
    /// `true` when recovery was exact despite the corruption.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One WAL corruption cell: run the policy uninterrupted, then crash it
/// once mid-run with WAL checkpoints at every epoch and the given
/// corruption inflicted on the recovery read, and demand a byte-identical
/// result and trace.
pub fn check_wal_corruption(
    policy: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    seed: u64,
    corruption: WalCorruption,
) -> Result<WalCell, String> {
    let opts = EngineOpts::default();
    let plan = FaultPlan::none();

    // Baseline: the uninterrupted run.
    let mut alloc = boxed_policy(policy, params, seed, false)?;
    let mut engine = Engine::new(&mut *alloc, seqs, params, &opts, &plan, |_| {
        LruCache::new(0)
    });
    let mut baseline_trace = TraceRecorder::new();
    loop {
        match engine.step(&mut *alloc, &mut baseline_trace) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(format!("baseline run errored: {e}")),
        }
    }
    let baseline_ticks = engine.ticks();
    let baseline = engine.into_result(&*alloc);
    if baseline_ticks < 24 {
        return Err(format!(
            "premise failed: baseline run too short ({baseline_ticks} ticks) to corrupt into"
        ));
    }

    // Policies with long-lived grants run few engine ticks even on long
    // workloads, so scale the epoch to the baseline: aim for a dozen or so
    // epoch boundaries before the run ends.
    let epoch_ticks = (baseline_ticks / 12).clamp(2, 8);

    // Crash past the 60% mark, then align so the WAL actually has
    // something to corrupt at that moment. With `full_snapshot_every: 2`
    // the store cycles base / one record / two records over a period of
    // three epoch boundaries, so the stale-base cell must land where the
    // log is non-empty and a previous base exists (boundary count >= 5,
    // not 1 mod 3); every other cell keeps one base forever and just needs
    // the log non-empty (boundary count >= 2).
    let mut boundaries = (baseline_ticks * 3 / 5) / epoch_ticks;
    match corruption {
        WalCorruption::StaleBase => {
            while boundaries < 5 || boundaries % 3 == 1 {
                boundaries += 1;
            }
        }
        _ => boundaries = boundaries.max(2),
    }
    let crash_tick = boundaries * epoch_ticks + epoch_ticks / 2;
    if crash_tick >= baseline_ticks {
        return Err(format!(
            "premise failed: aligned crash tick {crash_tick} falls past the \
             {baseline_ticks}-tick baseline"
        ));
    }

    let sup_opts = SupervisorOpts {
        epoch_ticks,
        max_retries: 3,
        backoff_base: std::time::Duration::ZERO,
        // Stale-base needs at least two bases installed before the crash;
        // the others keep one base so the log grows long.
        full_snapshot_every: if corruption == WalCorruption::StaleBase {
            2
        } else {
            u64::MAX
        },
        ..SupervisorOpts::default()
    };
    let mut store = SabotagedStore::new(corruption);
    let mut recovered_trace = TraceRecorder::new();
    let supervised = Supervisor::new(sup_opts).run_with_store(
        seqs,
        params,
        &opts,
        &plan,
        &CrashPlan::at_ticks(vec![crash_tick]),
        || boxed_policy(policy, params, seed, false).expect("factory succeeded for the baseline"),
        |_| LruCache::new(0),
        &mut recovered_trace,
        &mut store,
    );

    let mut violations = Vec::new();
    let mut truncations = 0;
    let mut wal_records = 0;
    match supervised {
        Err(e) => violations.push(format!("recovery failed: {e}")),
        Ok(report) => {
            truncations = report.wal_truncations;
            wal_records = report.wal_records;
            if report.crashes != 1 {
                violations.push(format!(
                    "expected 1 injected crash, observed {}",
                    report.crashes
                ));
            }
            if !store.struck() {
                violations.push("the corrupted view was never read".to_string());
            }
            if report.wal_records == 0 {
                violations.push("premise failed: no WAL records were written".to_string());
            }
            // Every kind must be *detected* — a faithful pass-through means
            // the crash tick alignment failed to give the strike material.
            if store.served_faithfully() {
                violations.push(format!(
                    "premise failed: nothing to corrupt at the strike ({:?})",
                    store.strike_note
                ));
            } else if report.wal_truncations == 0 {
                violations.push(format!(
                    "corruption went undetected (strike: {:?})",
                    store.strike_note
                ));
            }
            if report.result != baseline {
                violations.push(format!(
                    "RunResult diverged: recovered {:?} vs baseline {:?}",
                    report.result, baseline
                ));
            }
            violations.extend(
                checkers::check_replay(baseline_trace.events(), recovered_trace.events())
                    .into_iter()
                    .map(|v| format!("trace: {v}")),
            );
        }
    }

    Ok(WalCell {
        policy: policy.to_string(),
        corruption,
        crash_tick,
        truncations,
        wal_records,
        violations,
    })
}

/// The WAL corruption matrix: every policy in `policies` (all of
/// [`CONFORM_POLICIES`] when empty) × every [`WalCorruption`] kind.
pub fn wal_chaos_matrix(
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    seed: u64,
    policies: &[&str],
) -> Result<Vec<WalCell>, String> {
    let policies: Vec<&str> = if policies.is_empty() {
        CONFORM_POLICIES.to_vec()
    } else {
        policies.to_vec()
    };
    let mut cells = Vec::new();
    for policy in policies {
        for corruption in WalCorruption::ALL {
            cells.push(check_wal_corruption(
                policy, seqs, params, seed, corruption,
            )?);
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_workloads::{build_workload, SeqSpec};

    fn workload(p: usize, len: usize, k: usize) -> Vec<Vec<PageId>> {
        let specs: Vec<SeqSpec> = (0..p)
            .map(|x| match x % 2 {
                0 => SeqSpec::Cyclic {
                    width: (k / 4).max(2),
                    len,
                },
                _ => SeqSpec::Zipf {
                    universe: k.max(4),
                    theta: 0.9,
                    len,
                },
            })
            .collect();
        build_workload(&specs, 42).seqs().to_vec()
    }

    #[test]
    fn every_corruption_kind_recovers_det_par_exactly() {
        let params = ModelParams::new(4, 32, 8);
        let seqs = workload(4, 2500, 32);
        for corruption in WalCorruption::ALL {
            let cell = check_wal_corruption("det-par", &seqs, &params, 7, corruption)
                .unwrap_or_else(|e| panic!("{corruption}: {e}"));
            assert!(
                cell.passed(),
                "{corruption}: violations {:?}",
                cell.violations
            );
            assert!(cell.truncations >= 1, "{corruption}: nothing truncated");
        }
    }

    #[test]
    fn rng_backed_policy_survives_a_torn_tail() {
        let params = ModelParams::new(4, 32, 8);
        let seqs = workload(4, 2500, 32);
        for corruption in [WalCorruption::TornTail, WalCorruption::StaleBase] {
            let cell = check_wal_corruption("rand-par", &seqs, &params, 11, corruption)
                .unwrap_or_else(|e| panic!("{corruption}: {e}"));
            assert!(
                cell.passed(),
                "{corruption}: violations {:?}",
                cell.violations
            );
        }
    }
}
