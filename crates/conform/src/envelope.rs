//! Empirical competitive-ratio guardrails.
//!
//! Theorem 1 promises `O(log p)`-competitive makespan; Theorem 4's
//! adversarial instances are the inputs designed to maximize the gap. These
//! guardrails run the paper's pagers on those instances, divide the
//! measured makespan by the Lemma-8 offline schedule's (an *upper bound* on
//! OPT, so the quotient *under*-states the true ratio), and assert the
//! result stays inside a generous `c·log p` envelope. A regression that
//! breaks the competitive structure — a phase that stops halving, a strip
//! that starves a processor — shows up as a ratio excursion long before a
//! proof-level audit would catch it.
//!
//! The constants are deliberately loose (≈3–4× the observed ratios): the
//! guardrail exists to catch order-of-magnitude regressions, not to flap on
//! noise.

use parapage_analysis::{lemma8_makespan, per_proc_bound};
use parapage_core::{BoxAllocator, DetPar, ModelParams, RandPar};
use parapage_sched::{run_engine, EngineOpts};
use parapage_workloads::{
    build_workload, AdversarialConfig, AdversarialInstance, SeqSpec, Workload,
};
use rayon::prelude::*;

/// One measured guardrail point.
pub struct EnvelopeEntry {
    /// Policy name.
    pub policy: &'static str,
    /// Instance description.
    pub instance: String,
    /// Processors.
    pub p: usize,
    /// Measured makespan / OPT-reference makespan.
    pub ratio: f64,
    /// The `c·log p` envelope the ratio must stay inside.
    pub bound: f64,
}

impl EnvelopeEntry {
    /// `true` when the ratio is inside the envelope.
    pub fn ok(&self) -> bool {
        self.ratio <= self.bound
    }
}

/// The guardrail measurements.
pub struct EnvelopeReport {
    /// All measured points.
    pub entries: Vec<EnvelopeEntry>,
}

impl EnvelopeReport {
    /// Violations (entries outside their envelope), as report lines.
    pub fn violations(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.ok())
            .map(|e| {
                format!(
                    "{} on {}: ratio {:.2} exceeds {:.2} (c*log p envelope)",
                    e.policy, e.instance, e.ratio, e.bound
                )
            })
            .collect()
    }

    /// `true` when every entry is inside its envelope.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(EnvelopeEntry::ok)
    }
}

fn measure(
    policy: &'static str,
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<parapage_cache::PageId>],
    params: &ModelParams,
    opt_reference: u64,
    instance: String,
    bound: f64,
) -> Result<EnvelopeEntry, String> {
    let res = run_engine(alloc, seqs, params, &EngineOpts::default())
        .map_err(|e| format!("{policy} on {instance}: {e}"))?;
    Ok(EnvelopeEntry {
        policy,
        instance,
        p: params.p,
        ratio: res.makespan as f64 / opt_reference.max(1) as f64,
        bound,
    })
}

/// Prepared measurement inputs for one `(p, k)` guardrail size.
struct SizeInput {
    params: ModelParams,
    inst: AdversarialInstance,
    opt: u64,
    name: String,
    bound: f64,
    wparams: ModelParams,
    w: Workload,
    lb: u64,
    wname: String,
    wbound: f64,
}

/// Runs the guardrails: DET-PAR and RAND-PAR on Theorem-4 adversarial
/// instances (ratio vs the Lemma-8 schedule) and on a mixed workload
/// (ratio vs the certified per-processor lower bound). `quick` audits the
/// smallest instance only.
///
/// The instances and reference bounds are prepared sequentially (cheap
/// relative to the engine runs); the `sizes × {adversarial, mixed} ×
/// {DET-PAR, RAND-PAR}` measurement grid then fans out across the pool,
/// each cell filling its pre-assigned slot so the entry order is
/// identical for every thread count.
pub fn competitive_envelope(quick: bool, seed: u64) -> Result<EnvelopeReport, String> {
    let sizes: &[(usize, usize)] = if quick {
        &[(8, 32)]
    } else {
        &[(8, 32), (16, 64)]
    };
    let inputs: Vec<SizeInput> = sizes
        .iter()
        .map(|&(p, k)| {
            let cfg = AdversarialConfig::scaled(p, k, k as u64, 0.05);
            let inst = AdversarialInstance::build(cfg);
            let params = cfg.params();
            let log_p = params.log_p() as f64;
            let opt = lemma8_makespan(&inst).makespan();
            // The adversarial construction is built to force
            // Ω(log p / log log p) against *any* online pager; 6·log p + 8
            // gives ~3× headroom over the measured ratios while still
            // scaling with the theorem.
            let bound = 6.0 * log_p + 8.0;

            // Mixed (non-adversarial) workload against the certified lower
            // bound: ratios here must be far smaller than on the
            // adversarial family.
            let len = 2000usize;
            let specs: Vec<SeqSpec> = (0..p)
                .map(|x| match x % 3 {
                    0 => SeqSpec::Cyclic {
                        width: (k / 8).max(2),
                        len,
                    },
                    1 => SeqSpec::Cyclic { width: k / 2, len },
                    _ => SeqSpec::Zipf {
                        universe: (k / 2).max(4),
                        theta: 0.9,
                        len,
                    },
                })
                .collect();
            let w = build_workload(&specs, seed);
            let wparams = ModelParams::new(p, k, 16);
            let lb = per_proc_bound(w.seqs(), wparams.k, wparams.s);
            SizeInput {
                params,
                inst,
                opt,
                name: format!("adversarial(p={p},k={k})"),
                bound,
                wparams,
                w,
                lb,
                wname: format!("mixed(p={p},k={k})"),
                wbound: 4.0 * wparams.log_p() as f64 + 6.0,
            }
        })
        .collect();

    let cells: Vec<(usize, usize)> = (0..inputs.len())
        .flat_map(|i| (0..4usize).map(move |j| (i, j)))
        .collect();
    let entries: Vec<EnvelopeEntry> = cells
        .par_iter()
        .map(|&(i, j)| {
            let inp = &inputs[i];
            match j {
                0 => measure(
                    "det-par",
                    &mut DetPar::new(&inp.params),
                    inp.inst.workload.seqs(),
                    &inp.params,
                    inp.opt,
                    inp.name.clone(),
                    inp.bound,
                ),
                1 => measure(
                    "rand-par",
                    &mut RandPar::new(&inp.params, seed),
                    inp.inst.workload.seqs(),
                    &inp.params,
                    inp.opt,
                    inp.name.clone(),
                    inp.bound,
                ),
                2 => measure(
                    "det-par",
                    &mut DetPar::new(&inp.wparams),
                    inp.w.seqs(),
                    &inp.wparams,
                    inp.lb,
                    inp.wname.clone(),
                    inp.wbound,
                ),
                _ => measure(
                    "rand-par",
                    &mut RandPar::new(&inp.wparams, seed),
                    inp.w.seqs(),
                    &inp.wparams,
                    inp.lb,
                    inp.wname.clone(),
                    inp.wbound,
                ),
            }
        })
        .collect::<Vec<Result<EnvelopeEntry, String>>>()
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    Ok(EnvelopeReport { entries })
}
