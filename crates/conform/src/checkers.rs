//! Streaming checkers: the paper's structural invariants, replayed over an
//! engine trace stream.
//!
//! Every checker consumes a recorded [`TraceEvent`] stream (plus, for the
//! DET-PAR checkers, the policy's phase log merged in as
//! [`TraceEvent::Phase`] markers) and returns human-readable violation
//! strings — empty means the invariant held at every event. The checkers
//! recompute each bound from the model parameters with their own
//! arithmetic; they share no code with the policies they audit.
//!
//! | checker | invariant |
//! |---|---|
//! | [`check_stream_order`] | stream well-formedness: monotone time, one `Window` per `Grant` |
//! | [`check_memory`] | instantaneous allocated height ≤ enforced budget at every grant, including mid-run shrink from `MemoryPressure` |
//! | [`check_box_geometry`] | box heights are powers of two in `[k/p̂, k]` (the paper's WLOG normal form) |
//! | [`check_phase_structure`] | DET-PAR phases: roster halving, base `b = k/p_Q` |
//! | [`check_det_par_stream`] | base-box possession (contiguous coverage ≥ `b`) and `k/log p` strip widths |
//! | [`check_replay`] | byte-identical replay determinism of two streams |
//! | [`check_run_consistency`] | stream aggregates equal the engine's reported `RunResult` |

use parapage_cache::Time;
use parapage_core::{log2_ceil, DetPar, FaultEvent, ModelParams, PhaseRecord};
use parapage_sched::{RunResult, TraceEvent};

/// Stream well-formedness: timestamps never decrease, and every `Grant` is
/// immediately followed by its `Window` (same processor, same time).
pub fn check_stream_order(events: &[TraceEvent]) -> Vec<String> {
    let mut v = Vec::new();
    for (i, pair) in events.windows(2).enumerate() {
        if pair[0].at() > pair[1].at() {
            v.push(format!(
                "event {} at t={} precedes event {} at t={} (time went backwards)",
                i,
                pair[0].at(),
                i + 1,
                pair[1].at()
            ));
        }
    }
    let mut i = 0;
    while i < events.len() {
        if let TraceEvent::Grant { proc, at, .. } = events[i] {
            match events.get(i + 1) {
                Some(TraceEvent::Window {
                    proc: wp, at: wat, ..
                }) if *wp == proc && *wat == at => i += 2,
                _ => {
                    v.push(format!(
                        "grant for proc {} at t={at} not followed by its window",
                        proc.idx()
                    ));
                    i += 1;
                }
            }
        } else {
            if matches!(events[i], TraceEvent::Window { .. }) {
                v.push(format!("orphan window at event index {i}"));
            }
            i += 1;
        }
    }
    v
}

/// Instantaneous memory ≤ budget at every grant on the stream.
///
/// Mirrors the engine's enforcement discipline independently: pages release
/// at each grant's `release_at`; a [`FaultEvent::MemoryPressure`] marker
/// tightens the budget to the running minimum from its delivery on. Checked
/// at every non-stall grant — i.e. also mid-shrink, where in-flight grants
/// issued against the old budget plus the new grant must still fit the
/// tightened limit (the engine errors otherwise, so a successful run must
/// satisfy this everywhere).
pub fn check_memory(events: &[TraceEvent], initial_budget: usize) -> Vec<String> {
    let mut v = Vec::new();
    let mut limit = initial_budget;
    let mut outstanding: Vec<(Time, usize)> = Vec::new();
    for ev in events {
        match *ev {
            TraceEvent::Fault {
                event: FaultEvent::MemoryPressure { new_limit, .. },
                ..
            } => limit = limit.min(new_limit),
            TraceEvent::Grant {
                proc,
                at,
                height,
                release_at,
                ..
            } if height > 0 => {
                outstanding.retain(|&(t, _)| t > at);
                outstanding.push((release_at, height));
                let live: usize = outstanding.iter().map(|&(_, h)| h).sum();
                if live > limit {
                    v.push(format!(
                        "memory over budget at t={at}: {live} pages live after grant \
                         of {height} to proc {} (budget {limit})",
                        proc.idx()
                    ));
                }
            }
            _ => {}
        }
    }
    v
}

/// Box geometry (paper §2 WLOG): every non-stall grant's height is a power
/// of two in `[k/p̂, k]`, where `p̂` rounds `p` up to a power of two.
///
/// Applies to the paper's pagers (DET-PAR, RAND-PAR) on runs without
/// memory pressure — a shrunken budget legitimately rescales heights.
pub fn check_box_geometry(events: &[TraceEvent], params: &ModelParams) -> Vec<String> {
    let norm = params.normalized_k();
    let k = norm.k;
    let min_h = (k / norm.p.next_power_of_two()).max(1);
    let mut v = Vec::new();
    for ev in events {
        if let TraceEvent::Grant {
            proc, at, height, ..
        } = *ev
        {
            if height == 0 {
                continue;
            }
            if height < min_h || height > k || !height.is_power_of_two() {
                v.push(format!(
                    "grant to proc {} at t={at}: height {height} is not a power of \
                     two in [{min_h}, {k}]",
                    proc.idx()
                ));
            }
        }
    }
    v
}

/// DET-PAR phase structure, from the policy's own phase log: the roster
/// halves at each transition and every base height is the `b = k/p_Q`
/// (with `p_Q` half the roster rounded to a power of two) the paper
/// prescribes. For clean runs only — a budget shrink legally opens a phase
/// without halving.
pub fn check_phase_structure(phases: &[PhaseRecord], params: &ModelParams) -> Vec<String> {
    let mut v = Vec::new();
    let k = params.normalized_k().k;
    if phases.is_empty() {
        v.push("no phases recorded".into());
        return v;
    }
    if phases[0].start != 0 {
        v.push(format!(
            "first phase starts at t={}, not 0",
            phases[0].start
        ));
    }
    for (i, ph) in phases.iter().enumerate() {
        let p_q = (ph.roster_len.next_power_of_two() / 2).max(1);
        let expect = (k / p_q).max(1).min(k);
        if ph.base_height != expect {
            v.push(format!(
                "phase {i} (roster {}): base height {} != k/p_Q = {expect}",
                ph.roster_len, ph.base_height
            ));
        }
    }
    for (i, w) in phases.windows(2).enumerate() {
        if w[1].start <= w[0].start {
            v.push(format!(
                "phase {} starts at t={} <= previous start t={}",
                i + 1,
                w[1].start,
                w[0].start
            ));
        }
        if w[1].roster_len > w[0].roster_len / 2 {
            v.push(format!(
                "phase {} roster {} did not halve from {}",
                i + 1,
                w[1].roster_len,
                w[0].roster_len
            ));
        }
    }
    v
}

/// DET-PAR's two well-roundedness properties, checked on the merged stream
/// (grants plus [`TraceEvent::Phase`] markers). Clean runs only: injected
/// stalls legitimately break possession, and pressure rescales `k`.
///
/// * **Base-box possession** — until its completion, every processor's
///   grants tile time contiguously from 0 and each has height at least the
///   base of the phase it was issued in.
/// * **Strip widths** — within each phase, for every height class
///   `z = b·2^i`, the number of concurrently held grants of height ≥ `z`
///   never exceeds the class slot budget `Σ_{z' ≥ z} slots(z')`, where
///   `slots(z') = k/(z'·log p)` for short classes (`z' ≤ k/log p`) and 1
///   for tall ones — the `k/log p`-strip discipline of §3.3. Grants
///   straddling a phase boundary are audited against the phase that issued
///   them.
pub fn check_det_par_stream(events: &[TraceEvent], params: &ModelParams) -> Vec<String> {
    let norm = params.normalized_k();
    let k = norm.k;
    let log_p = log2_ceil(norm.p).max(1) as usize;
    let mut v = Vec::new();

    // Split the stream into phases on the synthesized markers; remember
    // each processor's next expected grant start and completion time.
    let mut base = 0usize;
    let mut expected_start: Vec<Option<Time>> = vec![Some(0); norm.p];
    let mut done: Vec<bool> = vec![false; norm.p];
    // Per-phase grant intervals for the sweep: the phase's base height
    // plus every (start, release, height) grant attributed to it.
    type PhaseGrants = (usize, Vec<(Time, Time, usize)>);
    let mut phase_grants: Vec<PhaseGrants> = Vec::new();

    for ev in events {
        match *ev {
            TraceEvent::Phase { base_height, .. } => {
                base = base_height;
                phase_grants.push((base_height, Vec::new()));
            }
            TraceEvent::Grant {
                proc,
                at,
                height,
                duration,
                release_at,
            } => {
                let x = proc.idx();
                if base == 0 {
                    v.push(format!("grant at t={at} before any phase marker"));
                    continue;
                }
                if height < base && !done[x] {
                    v.push(format!(
                        "proc {x} at t={at}: height {height} below phase base {base} \
                         (base-box possession violated)"
                    ));
                }
                match expected_start[x] {
                    Some(exp) if exp != at => v.push(format!(
                        "proc {x}: grant at t={at} but previous grant ended at t={exp} \
                         (coverage gap)"
                    )),
                    _ => {}
                }
                expected_start[x] = Some(at + duration);
                if let Some((_, grants)) = phase_grants.last_mut() {
                    grants.push((at, release_at, height));
                }
            }
            TraceEvent::Completion { proc, .. } => {
                done[proc.idx()] = true;
                expected_start[proc.idx()] = None;
            }
            _ => {}
        }
    }

    // Strip-width sweep, per phase and height class.
    for (pi, (b, grants)) in phase_grants.iter().enumerate() {
        let tall_threshold = (k / log_p).max(1);
        let mut z = *b * 2;
        while z <= k {
            let budget: usize = {
                let mut sum = 0usize;
                let mut z2 = z;
                while z2 <= k {
                    sum += if z2 > tall_threshold {
                        1
                    } else {
                        (k / (z2 * log_p)).max(1)
                    };
                    z2 *= 2;
                }
                sum
            };
            // Interval sweep: at equal times a release (-1) precedes an
            // acquisition (+1), matching back-to-back grants.
            let mut marks: Vec<(Time, i64)> = Vec::new();
            for &(start, release, h) in grants {
                if h >= z {
                    marks.push((start, 1));
                    marks.push((release, -1));
                }
            }
            marks.sort_unstable_by_key(|&(t, d)| (t, d));
            let mut cur = 0i64;
            for &(t, d) in &marks {
                cur += d;
                if cur > budget as i64 {
                    v.push(format!(
                        "phase {pi}: {cur} concurrent grants of height >= {z} at \
                         t={t}, slot budget {budget} (strip width violated)"
                    ));
                    break;
                }
            }
            z *= 2;
        }
    }
    let _ = DetPar::MEMORY_FACTOR; // the memory envelope itself is checked by `check_memory`
    v
}

/// Byte-identical replay determinism: two streams of the same
/// `(workload, policy, seed, FaultPlan)` must be equal event-for-event.
pub fn check_replay(a: &[TraceEvent], b: &[TraceEvent]) -> Vec<String> {
    if a == b {
        return Vec::new();
    }
    let mut v = Vec::new();
    if a.len() != b.len() {
        v.push(format!(
            "replay produced {} events, original {}",
            b.len(),
            a.len()
        ));
    }
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        if ea != eb {
            v.push(format!(
                "first replay divergence at event {i}: {ea:?} vs {eb:?}"
            ));
            break;
        }
    }
    v
}

/// Cross-checks the stream's aggregates against the engine's reported
/// [`RunResult`]: grant/fault/completion counts, hit/fetch totals, the
/// memory integral, and the makespan must all agree.
pub fn check_run_consistency(events: &[TraceEvent], result: &RunResult) -> Vec<String> {
    let mut v = Vec::new();
    let mut grants = 0u64;
    let mut faults = 0u64;
    let mut hits = 0u64;
    let mut fetches = 0u64;
    let mut served = 0u64;
    let mut integral = 0u128;
    let mut completions: Vec<(usize, Time)> = Vec::new();
    for ev in events {
        match *ev {
            TraceEvent::Grant {
                height, duration, ..
            } => {
                grants += 1;
                integral += height as u128 * duration as u128;
            }
            TraceEvent::Window {
                hits: h,
                fetches: f,
                served: sv,
                ..
            } => {
                hits += h;
                fetches += f;
                served += sv;
            }
            TraceEvent::Fault { .. } => faults += 1,
            TraceEvent::Completion { proc, at } => completions.push((proc.idx(), at)),
            _ => {}
        }
    }
    if grants != result.grants_issued {
        v.push(format!(
            "stream has {grants} grants, result reports {}",
            result.grants_issued
        ));
    }
    if faults != result.faults_injected {
        v.push(format!(
            "stream has {faults} fault deliveries, result reports {}",
            result.faults_injected
        ));
    }
    if hits != result.stats.hits || fetches != result.stats.misses {
        v.push(format!(
            "stream totals {hits} hits / {fetches} fetches, result {} / {}",
            result.stats.hits, result.stats.misses
        ));
    }
    if served != result.stats.accesses() {
        v.push(format!(
            "stream served {served} requests, result {}",
            result.stats.accesses()
        ));
    }
    if integral != result.memory_integral {
        v.push(format!(
            "stream memory integral {integral}, result {}",
            result.memory_integral
        ));
    }
    for &(x, at) in &completions {
        if result.completions.get(x).copied() != Some(at) {
            v.push(format!(
                "completion of proc {x} at t={at} disagrees with result {:?}",
                result.completions.get(x)
            ));
        }
    }
    if let Some(&(_, last)) = completions.iter().max_by_key(|&&(_, at)| at) {
        if last != result.makespan {
            v.push(format!(
                "last completion t={last} != reported makespan {}",
                result.makespan
            ));
        }
    }
    v
}

/// Merges a DET-PAR phase log into a trace stream as
/// [`TraceEvent::Phase`] markers, each placed before any other event at its
/// start time (the base is in force from the first grant of the phase on).
pub fn merge_phases(events: &[TraceEvent], phases: &[PhaseRecord]) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(events.len() + phases.len());
    let mut pi = 0;
    for ev in events {
        while pi < phases.len() && phases[pi].start <= ev.at() {
            out.push(TraceEvent::Phase {
                at: phases[pi].start,
                base_height: phases[pi].base_height,
                roster_len: phases[pi].roster_len,
            });
            pi += 1;
        }
        out.push(*ev);
    }
    for ph in &phases[pi..] {
        out.push(TraceEvent::Phase {
            at: ph.start,
            base_height: ph.base_height,
            roster_len: ph.roster_len,
        });
    }
    out
}
