//! The deliberately naive reference simulator for differential testing.
//!
//! [`run_reference`] re-implements the engine's semantics with the simplest
//! possible data structures: instead of the optimized engine's binary event
//! heap, release min-heap, and incremental usage counter, it keeps one
//! pending event per processor and *scans* all `p` of them to find the next
//! one (`O(n·p)` overall), recomputes live memory usage by summing the
//! outstanding-grant list from scratch at every grant, and serves requests
//! with an inline loop rather than `run_window`. The two implementations
//! share no scheduling code, so any divergence between their trace streams
//! or results pinpoints a bug in one of them.
//!
//! The semantics mirrored exactly (see `parapage-sched`'s engine docs):
//!
//! * events are processed in `(time, kind, proc)` order with completion
//!   notifications (kind 0) before grant requests (kind 1);
//! * matured fault events are delivered before any decision at their time;
//! * a processor inside a stall window has its grant request deferred to
//!   the window end; the time cap is checked on grant events only;
//! * a latency spike multiplies the miss penalty for grants *starting*
//!   inside the spike window;
//! * memory pressure tightens the enforced limit to the running minimum,
//!   checked when a non-stall grant is added to the outstanding set;
//! * a grant's pages release at its end, or at the completion instant when
//!   the processor finishes mid-grant.

use parapage_cache::{Cache, CacheStats, LruCache, PageId, Time};
use parapage_core::{BoxAllocator, FaultEvent, Interval, ModelParams};
use parapage_sched::{EngineError, EngineOpts, FaultPlan, RunResult, TraceEvent, TraceSink};

const EV_COMPLETION: u8 = 0;
const EV_GRANT: u8 = 1;

/// Runs `alloc` on the workload with the naive reference scheduler,
/// emitting the same [`TraceEvent`] stream the optimized engine would.
///
/// # Errors
/// The same typed [`EngineError`]s, at the same simulated instants, as the
/// optimized engine.
pub fn run_reference(
    alloc: &mut dyn BoxAllocator,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    faults: &FaultPlan,
    sink: &mut impl TraceSink,
) -> Result<RunResult, EngineError> {
    assert_eq!(seqs.len(), params.p, "one sequence per processor");
    let p = params.p;
    let s = params.s;

    let mut pos = vec![0usize; p];
    let mut caches: Vec<LruCache> = (0..p).map(|_| LruCache::new(0)).collect();
    let mut completions = vec![0u64; p];
    let mut finished = vec![false; p];
    let mut stats = CacheStats::default();
    let mut memory_integral = 0u128;
    let mut grants_issued = 0u64;
    let mut timelines: Vec<Vec<Interval>> = vec![Vec::new(); p];
    let mut deltas: Vec<(Time, i64)> = Vec::new();
    // Outstanding non-stall grants as (release time, height); usage is
    // recomputed by summation — no incremental counter to get wrong.
    let mut outstanding: Vec<(Time, usize)> = Vec::new();
    let mut current_limit = opts.memory_limit;
    let mut next_fault = 0usize;
    let mut faults_injected = 0u64;

    // One pending event per processor: (time, kind). A processor is either
    // waiting for its grant to expire, waiting to complete, or done.
    let mut pending: Vec<Option<(Time, u8)>> = vec![None; p];
    for x in 0..p {
        if seqs[x].is_empty() {
            finished[x] = true;
            alloc.on_proc_finished(parapage_cache::ProcId(x as u32), 0);
        } else {
            pending[x] = Some((0, EV_GRANT));
        }
    }

    loop {
        // Naive next-event selection: scan every processor, keep the
        // smallest (time, kind, proc) — ascending proc order breaks ties
        // exactly like the engine's heap key.
        let mut best: Option<(Time, u8, usize)> = None;
        for (x, ev) in pending.iter().enumerate() {
            if let Some((t, kind)) = *ev {
                if best.is_none_or(|(bt, bk, _)| (t, kind) < (bt, bk)) {
                    best = Some((t, kind, x));
                }
            }
        }
        let Some((now, kind, x)) = best else { break };
        pending[x] = None;

        while next_fault < faults.events().len() && faults.events()[next_fault].at() <= now {
            let ev = faults.events()[next_fault];
            next_fault += 1;
            if let FaultEvent::MemoryPressure { new_limit, .. } = ev {
                current_limit = Some(current_limit.map_or(new_limit, |l| l.min(new_limit)));
            }
            alloc.on_fault(&ev);
            sink.emit(&TraceEvent::Fault { at: now, event: ev });
            faults_injected += 1;
        }
        if kind == EV_COMPLETION {
            alloc.on_proc_finished(parapage_cache::ProcId(x as u32), now);
            sink.emit(&TraceEvent::Completion {
                proc: parapage_cache::ProcId(x as u32),
                at: now,
            });
            continue;
        }
        if now > opts.max_time {
            return Err(EngineError::TimeCapExceeded {
                at: now,
                cap: opts.max_time,
            });
        }
        // Stall windows: linear scan over the whole plan, max covering end.
        let stalled_until = faults
            .events()
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::ProcStall { proc, from, until }
                    if proc.idx() == x && from <= now && now < until =>
                {
                    Some(until)
                }
                _ => None,
            })
            .max();
        if let Some(until) = stalled_until {
            if opts.record_timelines {
                timelines[x].push(Interval {
                    start: now,
                    end: until,
                    height: 0,
                });
            }
            sink.emit(&TraceEvent::StallDeferred {
                proc: parapage_cache::ProcId(x as u32),
                at: now,
                until,
            });
            pending[x] = Some((until, EV_GRANT));
            continue;
        }
        let grant = alloc.grant(parapage_cache::ProcId(x as u32), now);
        if grant.duration == 0 {
            return Err(EngineError::ZeroDurationGrant {
                policy: alloc.name(),
                at: now,
            });
        }
        grants_issued += 1;
        let end = now
            .checked_add(grant.duration)
            .ok_or(EngineError::TimeOverflow { at: now })?;
        let spike = faults
            .events()
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::LatencySpike {
                    from,
                    until,
                    factor,
                } if from <= now && now < until => Some(factor.max(1)),
                _ => None,
            })
            .max()
            .unwrap_or(1);
        let eff_s = s
            .checked_mul(spike)
            .ok_or(EngineError::TimeOverflow { at: now })?;

        let cache = &mut caches[x];
        let resident_before = cache.len();
        if opts.compartmentalized {
            cache.clear();
        }
        cache.resize(grant.height);
        let boundary_evictions = (resident_before - cache.len()) as u64;
        let resident_at_start = cache.len();

        // Inline serve loop (the reference's stand-in for `run_window`): a
        // request runs only when its full cost fits the remaining budget.
        let served_from = pos[x];
        let mut idx = pos[x];
        let mut remaining = grant.duration;
        let mut wstats = CacheStats::default();
        if grant.height > 0 {
            while idx < seqs[x].len() {
                let page = seqs[x][idx];
                let cost = if cache.contains(page) { 1 } else { eff_s };
                if cost > remaining {
                    break;
                }
                let acc = cache.access(page);
                wstats.record(acc.is_hit());
                remaining -= cost;
                idx += 1;
            }
        } else {
            remaining = 0; // a stall consumes no time serving
        }
        let time_used = if grant.height > 0 {
            grant.duration - remaining
        } else {
            0
        };
        let win_finished = idx >= seqs[x].len();
        pos[x] = idx;
        stats += wstats;
        memory_integral += grant.height as u128 * grant.duration as u128;
        let release_at = if grant.height == 0 {
            now
        } else if win_finished {
            (now + time_used).max(now + 1)
        } else {
            end
        };
        sink.emit(&TraceEvent::Grant {
            proc: parapage_cache::ProcId(x as u32),
            at: now,
            height: grant.height,
            duration: grant.duration,
            release_at,
        });
        let window_evictions = if grant.height == 0 {
            0
        } else {
            wstats.misses - (cache.len() - resident_at_start) as u64
        };
        sink.emit(&TraceEvent::Window {
            proc: parapage_cache::ProcId(x as u32),
            at: now,
            served: wstats.accesses(),
            hits: wstats.hits,
            fetches: wstats.misses,
            evictions: boundary_evictions + window_evictions,
            time_used,
            finished: win_finished,
        });
        if grant.height > 0 {
            deltas.push((now, grant.height as i64));
            deltas.push((release_at, -(grant.height as i64)));
            outstanding.retain(|&(t, _)| t > now);
            outstanding.push((release_at, grant.height));
            let live: usize = outstanding.iter().map(|&(_, h)| h).sum();
            if let Some(limit) = current_limit {
                if live > limit {
                    return Err(EngineError::MemoryLimitExceeded {
                        at: now,
                        allocated: live,
                        limit,
                    });
                }
            }
        }
        if opts.record_timelines {
            timelines[x].push(Interval {
                start: now,
                end,
                height: grant.height,
            });
        }
        let outcome = parapage_cache::WindowOutcome {
            end_index: idx,
            stats: wstats,
            time_used,
            finished: win_finished,
        };
        alloc.observe(parapage_cache::ProcId(x as u32), &outcome);
        if idx > served_from {
            alloc.observe_accesses(parapage_cache::ProcId(x as u32), &seqs[x][served_from..idx]);
        }

        if win_finished && !finished[x] {
            finished[x] = true;
            completions[x] = now + time_used;
            pending[x] = Some((completions[x], EV_COMPLETION));
        } else if !win_finished {
            pending[x] = Some((end, EV_GRANT));
        }
    }

    deltas.sort_unstable_by_key(|&(t, d)| (t, d));
    let mut cur = 0i64;
    let mut peak = 0i64;
    for &(_, d) in &deltas {
        cur += d;
        peak = peak.max(cur);
    }

    let makespan = completions.iter().copied().max().unwrap_or(0);
    Ok(RunResult {
        completions,
        makespan,
        stats,
        memory_integral,
        peak_memory: peak as usize,
        grants_issued,
        faults_injected,
        degraded_grants: alloc.degraded_grants(),
        timelines: if opts.record_timelines {
            Some(timelines)
        } else {
            None
        },
    })
}
