//! The conformance oracle: traced runs, invariant verdicts, and the
//! engine-vs-reference differential sweep.
//!
//! [`conform_run`] is the per-(policy, scenario) entry point: it runs the
//! policy twice through the optimized engine (replay determinism), once
//! through the naive [`crate::reference`] simulator (differential check),
//! and replays every applicable streaming checker from
//! [`crate::checkers`] over the recorded trace. [`differential_sweep`]
//! hammers the two simulators with generated workloads across all policies
//! and fault scenarios, hunting for any event-level divergence.

use parapage_cache::PageId;
use parapage_core::{
    BlackboxGreenPacker, BoxAllocator, DetPar, FaultEvent, HardenedAllocator, ModelParams,
    PhaseRecord, PropMissPartition, RandGreen, RandPar, StaticPartition, UcpPartition,
};
use parapage_sched::{
    run_engine_traced, EngineError, EngineOpts, FaultPlan, RunResult, TraceEvent, TraceRecorder,
};
use parapage_workloads::{build_workload, fault_scenario, SeqSpec, FAULT_SCENARIOS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

use crate::checkers;
use crate::reference::run_reference;

/// The box policies the oracle audits (every engine-driven policy).
pub const CONFORM_POLICIES: &[&str] = &[
    "det-par",
    "rand-par",
    "static",
    "prop-miss",
    "ucp",
    "bb-green",
];

/// One traced run: the outcome, the full event stream, and (for DET-PAR)
/// the policy's phase log for the structure checkers.
pub struct TracedRun {
    /// The engine's result or typed error.
    pub outcome: Result<RunResult, EngineError>,
    /// The recorded trace stream.
    pub events: Vec<TraceEvent>,
    /// DET-PAR's phase log, when the policy was DET-PAR.
    pub phases: Option<Vec<PhaseRecord>>,
}

/// The verdict of one (policy, scenario) conformance run.
pub struct ConformReport {
    /// Policy name.
    pub policy: String,
    /// Scenario name.
    pub scenario: String,
    /// Whether the policy ran inside `HardenedAllocator`.
    pub hardened: bool,
    /// `"ok"` or the engine error label.
    pub outcome: String,
    /// Events on the recorded stream.
    pub events: usize,
    /// Checker violations; empty means the run conformed.
    pub violations: Vec<String>,
}

impl ConformReport {
    /// `true` when no checker flagged anything.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_runner(
    name: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    seed: u64,
    plan: &FaultPlan,
    hardened: bool,
    reference: bool,
) -> Result<TracedRun, String> {
    let mut rec = TraceRecorder::new();
    let run = |alloc: &mut dyn BoxAllocator, rec: &mut TraceRecorder| {
        if reference {
            run_reference(alloc, seqs, params, opts, plan, rec)
        } else {
            run_engine_traced(alloc, seqs, params, opts, plan, rec)
        }
    };
    macro_rules! launch {
        ($alloc:expr) => {{
            let a = $alloc;
            if hardened {
                let mut h = HardenedAllocator::new(a, params.k);
                run(&mut h, &mut rec)
            } else {
                let mut a = a;
                run(&mut a, &mut rec)
            }
        }};
    }
    let mut phases = None;
    let outcome = match name {
        "det-par" => {
            // DET-PAR is dispatched outside the macro so the phase log can
            // be extracted after the run (through the wrapper if hardened).
            let a = DetPar::new(params);
            if hardened {
                let mut h = HardenedAllocator::new(a, params.k);
                let out = run(&mut h, &mut rec);
                phases = Some(h.inner().phases().to_vec());
                out
            } else {
                let mut a = a;
                let out = run(&mut a, &mut rec);
                phases = Some(a.phases().to_vec());
                out
            }
        }
        "rand-par" => launch!(RandPar::new(params, seed)),
        "static" => launch!(StaticPartition::new(params)),
        "prop-miss" => launch!(PropMissPartition::new(params)),
        "ucp" => launch!(UcpPartition::new(params)),
        "bb-green" => {
            let pagers: Vec<RandGreen> = (0..params.p as u64)
                .map(|i| RandGreen::new(params, seed ^ i))
                .collect();
            launch!(BlackboxGreenPacker::new(params, pagers))
        }
        other => return Err(format!("unknown policy `{other}`")),
    };
    Ok(TracedRun {
        outcome,
        events: rec.into_events(),
        phases,
    })
}

/// Runs the named policy through the optimized engine with tracing.
#[allow(clippy::too_many_arguments)]
pub fn run_traced(
    name: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    seed: u64,
    plan: &FaultPlan,
    hardened: bool,
) -> Result<TracedRun, String> {
    engine_runner(name, seqs, params, opts, seed, plan, hardened, false)
}

/// Runs the named policy through the naive reference simulator.
#[allow(clippy::too_many_arguments)]
pub fn run_reference_named(
    name: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    seed: u64,
    plan: &FaultPlan,
    hardened: bool,
) -> Result<TracedRun, String> {
    engine_runner(name, seqs, params, opts, seed, plan, hardened, true)
}

/// The memory budget a policy's runs are audited against: `k` when
/// hardened (the wrapper's initial budget), otherwise the policy's
/// documented resource-augmentation envelope.
///
/// `stall_desynced` widens the envelope for the chunked policies when the
/// fault plan contains [`FaultEvent::ProcStall`] events. Historically
/// (PR 2) RAND-PAR emitted fixed-duration box *queues*, so a stall
/// deferred issuance and slid the processor's queue past its chunk — boxes
/// from adjacent chunk generations overlapped, the synchronous `2k`
/// argument no longer covered the run, and `3k` peaks were observed (the
/// guardrail was `4k`). RAND-PAR's chunk schedules are now time-anchored:
/// a stalled processor re-joins its chunk mid-schedule, the generations no
/// longer overlap, and the observed worst case on the PR-2 grid is back
/// under `2k`. The stall guardrail is kept at `3k` (not collapsed to `2k`)
/// because BB-GREEN still issues unanchored per-processor queues; the
/// `envelope_regression` test pins both edges. DET-PAR is unaffected
/// either way: its grants are clipped to the current period's end, so
/// deferred processors stay phase-aligned.
pub fn memory_envelope(name: &str, k: usize, hardened: bool, stall_desynced: bool) -> usize {
    if hardened {
        return k;
    }
    match name {
        "det-par" => DetPar::MEMORY_FACTOR * k,
        // RAND-PAR's primary+secondary parts and the black-box packer both
        // stay within 2k concurrently (engine audits observe less).
        "rand-par" | "bb-green" => {
            if stall_desynced {
                3 * k
            } else {
                2 * k
            }
        }
        // The partition baselines split exactly k.
        _ => k,
    }
}

/// Short label for an engine error, for tables.
pub fn error_label(e: &EngineError) -> &'static str {
    match e {
        EngineError::ZeroDurationGrant { .. } => "zero-grant",
        EngineError::MemoryLimitExceeded { .. } => "mem-limit",
        EngineError::TimeCapExceeded { .. } => "time-cap",
        EngineError::TimeOverflow { .. } => "overflow",
    }
}

/// Field-by-field comparison of two run outcomes; `None` when equal.
pub fn outcome_divergence(
    a: &Result<RunResult, EngineError>,
    b: &Result<RunResult, EngineError>,
) -> Option<String> {
    match (a, b) {
        (Err(ea), Err(eb)) => (ea != eb).then(|| format!("errors differ: {ea} vs {eb}")),
        (Err(e), Ok(_)) => Some(format!("engine errored ({e}), reference succeeded")),
        (Ok(_), Err(e)) => Some(format!("engine succeeded, reference errored ({e})")),
        (Ok(ra), Ok(rb)) => {
            if ra.completions != rb.completions {
                Some(format!(
                    "completions differ: {:?} vs {:?}",
                    ra.completions, rb.completions
                ))
            } else if ra.makespan != rb.makespan {
                Some(format!("makespan {} vs {}", ra.makespan, rb.makespan))
            } else if ra.stats != rb.stats {
                Some(format!("stats {:?} vs {:?}", ra.stats, rb.stats))
            } else if ra.memory_integral != rb.memory_integral {
                Some(format!(
                    "memory integral {} vs {}",
                    ra.memory_integral, rb.memory_integral
                ))
            } else if ra.peak_memory != rb.peak_memory {
                Some(format!("peak {} vs {}", ra.peak_memory, rb.peak_memory))
            } else if ra.grants_issued != rb.grants_issued {
                Some(format!(
                    "grants {} vs {}",
                    ra.grants_issued, rb.grants_issued
                ))
            } else if ra.faults_injected != rb.faults_injected {
                Some(format!(
                    "faults {} vs {}",
                    ra.faults_injected, rb.faults_injected
                ))
            } else if ra.degraded_grants != rb.degraded_grants {
                Some(format!(
                    "degraded {} vs {}",
                    ra.degraded_grants, rb.degraded_grants
                ))
            } else {
                None
            }
        }
    }
}

/// Full conformance verdict for one policy under one fault scenario: replay
/// determinism, differential cross-check against the reference simulator,
/// and every applicable paper-invariant checker.
pub fn conform_run(
    name: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    seed: u64,
    scenario: &str,
    plan: &FaultPlan,
) -> Result<ConformReport, String> {
    let opts = EngineOpts::default();
    let has_pressure = plan
        .events()
        .iter()
        .any(|e| matches!(e, FaultEvent::MemoryPressure { .. }));
    let has_stalls = plan
        .events()
        .iter()
        .any(|e| matches!(e, FaultEvent::ProcStall { .. }));
    // Pressure scenarios run hardened: an unhardened paper policy is
    // oblivious by design and would (correctly) trip the engine's limit.
    let hardened = has_pressure;

    let first = run_traced(name, seqs, params, &opts, seed, plan, hardened)?;
    let second = run_traced(name, seqs, params, &opts, seed, plan, hardened)?;
    let reference = run_reference_named(name, seqs, params, &opts, seed, plan, hardened)?;

    let mut violations = Vec::new();
    violations.extend(
        checkers::check_replay(&first.events, &second.events)
            .into_iter()
            .map(|v| format!("replay: {v}")),
    );
    violations.extend(
        checkers::check_replay(&first.events, &reference.events)
            .into_iter()
            .map(|v| format!("reference-diff: {v}")),
    );
    if let Some(d) = outcome_divergence(&first.outcome, &reference.outcome) {
        violations.push(format!("reference-diff: {d}"));
    }
    violations.extend(
        checkers::check_stream_order(&first.events)
            .into_iter()
            .map(|v| format!("stream: {v}")),
    );

    let outcome = match &first.outcome {
        Ok(res) => {
            violations.extend(
                checkers::check_run_consistency(&first.events, res)
                    .into_iter()
                    .map(|v| format!("consistency: {v}")),
            );
            violations.extend(
                checkers::check_memory(
                    &first.events,
                    memory_envelope(name, params.k, hardened, has_stalls),
                )
                .into_iter()
                .map(|v| format!("memory: {v}")),
            );
            if matches!(name, "det-par" | "rand-par") && !has_pressure {
                violations.extend(
                    checkers::check_box_geometry(&first.events, params)
                        .into_iter()
                        .map(|v| format!("geometry: {v}")),
                );
            }
            if name == "det-par" && scenario == "clean" {
                let phases = first.phases.as_deref().unwrap_or(&[]);
                violations.extend(
                    checkers::check_phase_structure(phases, params)
                        .into_iter()
                        .map(|v| format!("phases: {v}")),
                );
                let merged = checkers::merge_phases(&first.events, phases);
                violations.extend(
                    checkers::check_det_par_stream(&merged, params)
                        .into_iter()
                        .map(|v| format!("det-par: {v}")),
                );
            }
            "ok".to_string()
        }
        Err(e) => {
            violations.push(format!("run failed: {e}"));
            error_label(e).to_string()
        }
    };

    Ok(ConformReport {
        policy: name.to_string(),
        scenario: scenario.to_string(),
        hardened,
        outcome,
        events: first.events.len(),
        violations,
    })
}

/// Runs the full invariant matrix: every policy in [`CONFORM_POLICIES`]
/// under every named fault scenario, on the given workload.
///
/// The (policy, scenario) cells are independent, so they run on the
/// pool; each cell writes its report into its pre-assigned grid slot, so
/// the returned order (policy-major, scenario-minor) is identical for
/// every thread count.
pub fn conform_matrix(
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    seed: u64,
    horizon: u64,
) -> Result<Vec<ConformReport>, String> {
    let cells: Vec<(&str, &str)> = CONFORM_POLICIES
        .iter()
        .flat_map(|&policy| {
            FAULT_SCENARIOS
                .iter()
                .map(move |&scenario| (policy, scenario))
        })
        .collect();
    cells
        .par_iter()
        .map(|&(policy, scenario)| {
            let events = fault_scenario(scenario, params.p, params.k, horizon, seed)
                .ok_or_else(|| format!("unknown scenario `{scenario}`"))?;
            let plan = FaultPlan::new(events);
            conform_run(policy, seqs, params, seed, scenario, &plan)
        })
        .collect::<Vec<Result<ConformReport, String>>>()
        .into_iter()
        .collect()
}

/// One divergence found by the differential sweep.
pub struct Divergence {
    /// A reproduction recipe (policy, scenario, and generator parameters).
    pub recipe: String,
    /// What differed.
    pub detail: String,
}

/// Outcome of the engine-vs-reference differential sweep.
pub struct DiffReport {
    /// Workloads executed.
    pub runs: usize,
    /// Divergences found (conformance requires this to be empty).
    pub divergences: Vec<Divergence>,
}

/// Wall-clock budget for one differential-sweep cell. A cell that blows it
/// is reported as a divergence (with its reproduction recipe) instead of
/// hanging the sweep — a hung CI run pointed at no workload is useless.
const DIFF_CELL_WATCHDOG: std::time::Duration = std::time::Duration::from_secs(30);

/// Cross-checks the optimized engine against the naive reference simulator
/// on `count` generated workloads, cycling policies, fault scenarios, and
/// workload shapes deterministically from `seed`.
///
/// The runs are independent (each derives its own RNG stream from
/// `(seed, i)`), so they fan out across the pool; divergences are
/// assembled in run order, making the report identical for every thread
/// count. Each cell runs under a [`DIFF_CELL_WATCHDOG`] deadline: a cell
/// that hangs (a livelocked policy, a pathological generated workload)
/// fails with its workload index and seed instead of wedging the sweep.
pub fn differential_sweep(count: usize, seed: u64) -> DiffReport {
    let divergences: Vec<Divergence> = (0..count)
        .into_par_iter()
        .map(|i| differential_run_watched(i, seed))
        .collect::<Vec<Vec<Divergence>>>()
        .into_iter()
        .flatten()
        .collect();
    DiffReport {
        runs: count,
        divergences,
    }
}

/// Runs one sweep cell on a helper thread and enforces the watchdog. On
/// expiry the helper thread is abandoned (it holds no locks and owns all
/// its state, so leaking it is safe) and the cell reports a divergence
/// naming the workload index and seed for offline reproduction.
fn differential_run_watched(i: usize, seed: u64) -> Vec<Divergence> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        // The receiver may have timed out and gone away; a failed send
        // just means nobody is listening anymore.
        let _ = tx.send(differential_run(i, seed));
    });
    match rx.recv_timeout(DIFF_CELL_WATCHDOG) {
        Ok(divergences) => divergences,
        Err(_) => vec![Divergence {
            recipe: format!("run {i}: seed={seed}"),
            detail: format!(
                "watchdog: cell exceeded {DIFF_CELL_WATCHDOG:?} (workload index {i}, \
                 seed {seed}) — reproduce with `differential_sweep({}, {seed})` \
                 narrowed to this index",
                i + 1
            ),
        }],
    }
}

/// One cell of the differential sweep: generates workload `i` and returns
/// any engine-vs-reference divergences it produced.
fn differential_run(i: usize, seed: u64) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64).wrapping_mul(0x9e37));
        let p = rng.random_range(1..6usize);
        // k a power of two ≥ p̂: every policy accepts it un-normalized
        // (the black-box packer asserts its budget fits the normalized k).
        let k = p.next_power_of_two() * (1 << rng.random_range(0..4u32));
        let s = rng.random_range(2..18u64);
        let len_max = 120usize;
        let specs: Vec<SeqSpec> = (0..p)
            .map(|_| {
                let len = rng.random_range(0..len_max);
                match rng.random_range(0..4u32) {
                    0 => SeqSpec::Cyclic {
                        width: rng.random_range(1..(2 * k as u64 + 1)) as usize,
                        len,
                    },
                    1 => SeqSpec::Fresh { len },
                    2 => SeqSpec::Uniform {
                        universe: rng.random_range(1..(2 * k as u64 + 1)) as usize,
                        len,
                    },
                    _ => SeqSpec::Zipf {
                        universe: (k).max(2),
                        theta: 0.9,
                        len,
                    },
                }
            })
            .collect();
        let w = build_workload(&specs, seed ^ i as u64);
        let params = ModelParams::new(p, k, s);
        let policy = CONFORM_POLICIES[i % CONFORM_POLICIES.len()];
        let scenario = FAULT_SCENARIOS[(i / CONFORM_POLICIES.len()) % FAULT_SCENARIOS.len()];
        let horizon = (len_max as u64) * s * 4;
        let plan = FaultPlan::new(
            fault_scenario(scenario, p, k, horizon, seed ^ (i as u64) << 7)
                .expect("scenario names are exhaustive"),
        );
        let hardened = plan
            .events()
            .iter()
            .any(|e| matches!(e, FaultEvent::MemoryPressure { .. }));
        let recipe =
            format!("run {i}: policy {policy} scenario {scenario} p={p} k={k} s={s} seed={seed}");
        let opts = EngineOpts::default();
        let eng = run_traced(policy, w.seqs(), &params, &opts, seed, &plan, hardened);
        let reference =
            run_reference_named(policy, w.seqs(), &params, &opts, seed, &plan, hardened);
        match (eng, reference) {
            (Ok(a), Ok(b)) => {
                for v in checkers::check_replay(&a.events, &b.events) {
                    divergences.push(Divergence {
                        recipe: recipe.clone(),
                        detail: v,
                    });
                }
                if let Some(d) = outcome_divergence(&a.outcome, &b.outcome) {
                    divergences.push(Divergence {
                        recipe: recipe.clone(),
                        detail: d,
                    });
                }
            }
            (Err(e), _) | (_, Err(e)) => divergences.push(Divergence {
                recipe,
                detail: format!("dispatch failed: {e}"),
            }),
        }
    }
    divergences
}
