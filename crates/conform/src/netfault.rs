//! Deterministic network-fault model: *what* goes wrong on a transport,
//! decided as a pure function of `(seed, connection, byte offset)`.
//!
//! The model is deliberately I/O-free. This module only answers questions
//! — "how many bytes may this write move?", "how long does this read
//! stall?", "does the connection die at this offset?" — from nothing but
//! the plan's seed, the connection index, and the cumulative byte offset
//! on the faulted direction. The server crate's `FaultyTransport` wraps a
//! real stream around these answers; because the answers are pure, two
//! runs with the same plan inflict byte-for-byte the same fault schedule,
//! which is what lets `parapage chaos --net` demand byte-identical
//! recovery instead of "mostly recovered".
//!
//! Fault kinds (the `--net` matrix's first axis):
//!
//! | kind             | effect                                            |
//! |------------------|---------------------------------------------------|
//! | `partial-writes` | every write moves a short, seeded chunk           |
//! | `write-stall`    | seeded pauses injected while sending              |
//! | `read-stall`     | seeded pauses injected while receiving            |
//! | `cut-send`       | connection dies mid-frame while sending           |
//! | `cut-recv`       | connection dies mid-frame while receiving         |
//! | `trickle`        | slow-loris: one long mid-frame pause, then        |
//! |                  | byte-at-a-time writes (trips server read deadline)|

use std::time::Duration;

use parapage_cache::fnv1a64_seeded;

/// The kinds of transport fault the model can inflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Writes are split into short, seeded chunks (1–8 bytes), so frames
    /// cross the wire maximally fragmented.
    PartialWrites,
    /// Seeded pauses before some writes.
    WriteStall,
    /// Seeded pauses before some reads.
    ReadStall,
    /// The connection is severed once the *send* offset crosses the cut
    /// point — typically mid-frame from the peer's point of view.
    CutSend,
    /// The connection is severed once the *receive* offset crosses the cut
    /// point — the local reader loses the tail of a frame in flight.
    CutRecv,
    /// Slow-loris: one long pause at the cut point (sized to exceed a
    /// server's per-session read deadline), then byte-at-a-time writes.
    Trickle,
}

impl NetFaultKind {
    /// Every kind, in matrix order.
    pub const ALL: &'static [NetFaultKind] = &[
        NetFaultKind::PartialWrites,
        NetFaultKind::WriteStall,
        NetFaultKind::ReadStall,
        NetFaultKind::CutSend,
        NetFaultKind::CutRecv,
        NetFaultKind::Trickle,
    ];

    /// Stable cell-label name (what `--cells` matches on).
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::PartialWrites => "partial-writes",
            NetFaultKind::WriteStall => "write-stall",
            NetFaultKind::ReadStall => "read-stall",
            NetFaultKind::CutSend => "cut-send",
            NetFaultKind::CutRecv => "cut-recv",
            NetFaultKind::Trickle => "trickle",
        }
    }

    /// Parses a name produced by [`NetFaultKind::name`].
    pub fn parse(name: &str) -> Option<NetFaultKind> {
        NetFaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Whether this kind severs the connection (and therefore demands a
    /// reconnect + re-attach to recover, rather than mere patience).
    pub fn severs(self) -> bool {
        matches!(self, NetFaultKind::CutSend | NetFaultKind::CutRecv)
    }

    /// Whether the fault acts on the receive direction — its offsets (and
    /// matrix cut points) are measured in *received* bytes rather than
    /// sent ones.
    pub fn on_recv(self) -> bool {
        matches!(self, NetFaultKind::ReadStall | NetFaultKind::CutRecv)
    }
}

impl std::fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One connection's fault schedule. Everything the plan decides is a pure
/// function of `(seed, conn, byte offset)` — no clocks, no RNG state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// What goes wrong.
    pub kind: NetFaultKind,
    /// Schedule seed.
    pub seed: u64,
    /// Which connection (by the client's 0-based reconnect index) the plan
    /// applies to. A resilient client's later connections are clean, so a
    /// faulted exchange always terminates.
    pub conn: u64,
    /// Byte offset on the faulted direction at which cuts and the trickle
    /// pause fire.
    pub cut_at: u64,
    /// Short stall length for the stall kinds.
    pub stall: Duration,
    /// Long (deadline-exceeding) pause for the trickle kind.
    pub long_stall: Duration,
}

impl NetFaultPlan {
    /// A plan for `kind` on connection `conn`, cutting (or pausing) at
    /// byte offset `cut_at`, with test-friendly default stall lengths.
    pub fn new(kind: NetFaultKind, seed: u64, conn: u64, cut_at: u64) -> Self {
        NetFaultPlan {
            kind,
            seed,
            conn,
            cut_at: cut_at.max(1),
            stall: Duration::from_micros(300),
            long_stall: Duration::from_millis(120),
        }
    }

    /// The seeded decision word at `offset` — the single source of every
    /// per-offset choice below.
    fn mix(&self, offset: u64) -> u64 {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&self.conn.to_le_bytes());
        bytes[8..].copy_from_slice(&offset.to_le_bytes());
        fnv1a64_seeded(self.seed, &bytes)
    }

    /// Most bytes a write starting at `offset` may move. Unbounded for
    /// kinds that do not fragment.
    pub fn write_chunk(&self, offset: u64) -> usize {
        match self.kind {
            NetFaultKind::PartialWrites => 1 + (self.mix(offset) % 8) as usize,
            NetFaultKind::Trickle if offset >= self.cut_at => 1,
            _ => usize::MAX,
        }
    }

    /// Pause to take before a write whose first byte is `offset`.
    pub fn write_pause(&self, offset: u64) -> Option<Duration> {
        match self.kind {
            NetFaultKind::WriteStall if self.mix(offset) % 5 == 0 => Some(self.stall),
            // The slow-loris pause fires exactly once, at the cut point.
            NetFaultKind::Trickle if offset == self.cut_at => Some(self.long_stall),
            _ => None,
        }
    }

    /// Pause to take before a read whose first byte is `offset`.
    pub fn read_pause(&self, offset: u64) -> Option<Duration> {
        match self.kind {
            NetFaultKind::ReadStall if self.mix(offset) % 5 == 0 => Some(self.stall),
            _ => None,
        }
    }

    /// Whether the connection dies at send offset `offset`.
    pub fn cuts_send(&self, offset: u64) -> bool {
        self.kind == NetFaultKind::CutSend && offset >= self.cut_at
    }

    /// Whether the connection dies at receive offset `offset`.
    pub fn cuts_recv(&self, offset: u64) -> bool {
        self.kind == NetFaultKind::CutRecv && offset >= self.cut_at
    }
}

/// One cell of the `chaos --net` matrix: a fault kind, the kill-point as
/// a fraction of the faulted direction's clean-run traffic, and how many
/// concurrent tenants share the server while the fault plays out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetCell {
    /// What goes wrong.
    pub kind: NetFaultKind,
    /// Kill-point: where in the connection's clean-run byte stream the
    /// fault fires, as a fraction in `(0, 1)`.
    pub frac: f64,
    /// Concurrent tenants driving the server during the cell.
    pub tenants: usize,
}

impl NetCell {
    /// The cell's label (what the matrix prints and `--cells` filters on).
    pub fn label(&self) -> String {
        format!("{}/t{}@{:.2}", self.kind, self.tenants, self.frac)
    }

    /// The cut offset for a clean run that moved `clean_bytes` on the
    /// faulted direction: strictly inside the stream, past the first
    /// frame header so cuts land mid-conversation, never before byte 1.
    pub fn cut_offset(&self, clean_bytes: u64) -> u64 {
        ((clean_bytes as f64 * self.frac) as u64).max(1)
    }
}

/// Enumerates the matrix: every fault kind × kill-point × tenant count.
pub fn net_cells(tenant_counts: &[usize], fracs: &[f64]) -> Vec<NetCell> {
    let mut cells = Vec::with_capacity(tenant_counts.len() * fracs.len() * NetFaultKind::ALL.len());
    for &tenants in tenant_counts {
        for &kind in NetFaultKind::ALL {
            for &frac in fracs {
                cells.push(NetCell {
                    kind,
                    frac,
                    tenants,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_conn_offset() {
        let a = NetFaultPlan::new(NetFaultKind::PartialWrites, 7, 0, 100);
        let b = NetFaultPlan::new(NetFaultKind::PartialWrites, 7, 0, 100);
        for off in 0..2000 {
            assert_eq!(a.write_chunk(off), b.write_chunk(off));
            assert_eq!(a.write_pause(off), b.write_pause(off));
            assert_eq!(a.read_pause(off), b.read_pause(off));
        }
        // A different connection index reshuffles the schedule.
        let c = NetFaultPlan::new(NetFaultKind::PartialWrites, 7, 1, 100);
        assert!((0..2000).any(|off| a.write_chunk(off) != c.write_chunk(off)));
    }

    #[test]
    fn chunks_are_short_and_positive() {
        let p = NetFaultPlan::new(NetFaultKind::PartialWrites, 42, 3, 10);
        for off in 0..5000 {
            let c = p.write_chunk(off);
            assert!((1..=8).contains(&c));
        }
    }

    #[test]
    fn cuts_fire_exactly_at_the_cut_point_on_their_direction() {
        let s = NetFaultPlan::new(NetFaultKind::CutSend, 1, 0, 64);
        assert!(!s.cuts_send(63) && s.cuts_send(64) && s.cuts_send(65));
        assert!(!s.cuts_recv(64));
        let r = NetFaultPlan::new(NetFaultKind::CutRecv, 1, 0, 64);
        assert!(!r.cuts_recv(63) && r.cuts_recv(64));
        assert!(!r.cuts_send(1 << 40));
    }

    #[test]
    fn trickle_pauses_once_then_single_bytes() {
        let t = NetFaultPlan::new(NetFaultKind::Trickle, 9, 0, 32);
        assert_eq!(t.write_pause(31), None);
        assert_eq!(t.write_pause(32), Some(t.long_stall));
        assert_eq!(t.write_pause(33), None);
        assert_eq!(t.write_chunk(31), usize::MAX);
        assert_eq!(t.write_chunk(32), 1);
        assert_eq!(t.write_chunk(999), 1);
    }

    #[test]
    fn stalls_recur_but_are_not_constant() {
        let w = NetFaultPlan::new(NetFaultKind::WriteStall, 5, 2, 10);
        let paused = (0..1000).filter(|&o| w.write_pause(o).is_some()).count();
        assert!(paused > 50 && paused < 500, "paused {paused}/1000");
        // Stall kinds never fragment or cut.
        assert_eq!(w.write_chunk(3), usize::MAX);
        assert!(!w.cuts_send(1 << 40));
    }

    #[test]
    fn matrix_enumerates_every_axis_combination() {
        let cells = net_cells(&[1, 3], &[0.2, 0.8]);
        assert_eq!(cells.len(), 2 * NetFaultKind::ALL.len() * 2);
        let labels: std::collections::HashSet<String> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), cells.len(), "labels must be unique");
        for c in &cells {
            assert!(c.cut_offset(1000) >= 1);
            assert!(c.cut_offset(0) == 1, "cut offset is never 0");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for &k in NetFaultKind::ALL {
            assert_eq!(NetFaultKind::parse(k.name()), Some(k));
        }
        assert_eq!(NetFaultKind::parse("no-such-fault"), None);
    }
}
