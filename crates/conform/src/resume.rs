//! Resume equivalence: snapshot/restore recovery must be invisible.
//!
//! The contract (see `parapage-sched`'s `supervisor` module): a run that
//! crashes at arbitrary points and resumes from checkpoints must produce
//! the **byte-identical** [`RunResult`] and trace stream of an
//! uninterrupted run. This module turns that contract into a checkable
//! oracle:
//!
//! * [`check_resume`] — one cell: runs a policy uninterrupted through the
//!   steppable engine (capturing result, trace, and tick count), then
//!   re-runs it under the [`Supervisor`] with deterministic crashes
//!   injected at the requested ticks, and diffs the two runs field by
//!   field and event by event.
//! * [`resume_matrix`] — the chaos grid: every checkpoint-capable policy ×
//!   every named fault scenario × a set of crashpoints expressed as
//!   fractions of the baseline run's tick count.
//! * [`check_corruption_rejection`] — a snapshot with a flipped byte must
//!   be rejected with a typed error (never a panic, never a silent
//!   mis-restore).
//!
//! The `parapage chaos` CLI subcommand drives the matrix and exits
//! non-zero on any divergence or failed recovery.

use parapage_cache::{LruCache, PageId};
use parapage_core::{
    BlackboxGreenPacker, BoxAllocator, DetPar, FaultEvent, HardenedAllocator, ModelParams,
    PropMissPartition, RandGreen, RandPar, StaticPartition, UcpPartition,
};
use parapage_sched::{
    Engine, EngineOpts, EngineSnapshot, FaultPlan, SnapshotError, Supervisor, SupervisorOpts,
    TraceRecorder,
};
use parapage_workloads::{fault_scenario, FAULT_SCENARIOS};

use crate::checkers;
use crate::oracle::CONFORM_POLICIES;

/// Builds a fresh boxed policy by name, deterministically: two calls with
/// equal arguments produce byte-identical policies (same seed, same
/// configuration), which is exactly what the supervisor's retry path
/// requires.
pub fn boxed_policy(
    name: &str,
    params: &ModelParams,
    seed: u64,
    hardened: bool,
) -> Result<Box<dyn BoxAllocator>, String> {
    macro_rules! wrap {
        ($alloc:expr) => {{
            if hardened {
                Ok(Box::new(HardenedAllocator::new($alloc, params.k)) as Box<dyn BoxAllocator>)
            } else {
                Ok(Box::new($alloc) as Box<dyn BoxAllocator>)
            }
        }};
    }
    match name {
        "det-par" => wrap!(DetPar::new(params)),
        "rand-par" => wrap!(RandPar::new(params, seed)),
        "static" => wrap!(StaticPartition::new(params)),
        "prop-miss" => wrap!(PropMissPartition::new(params)),
        "ucp" => wrap!(UcpPartition::new(params)),
        "bb-green" => {
            let pagers: Vec<RandGreen> = (0..params.p as u64)
                .map(|i| RandGreen::new(params, seed ^ i))
                .collect();
            wrap!(BlackboxGreenPacker::new(params, pagers))
        }
        other => Err(format!("unknown policy `{other}`")),
    }
}

/// The verdict of one resume-equivalence cell.
pub struct ResumeCell {
    /// Policy name.
    pub policy: String,
    /// Fault scenario name.
    pub scenario: String,
    /// Engine ticks the injected crashes fired at.
    pub crash_ticks: Vec<u64>,
    /// Baseline run length in engine ticks.
    pub baseline_ticks: u64,
    /// Crashes the supervisor survived (should equal the crashpoint count).
    pub crashes: u32,
    /// Divergences between the recovered and the uninterrupted run; empty
    /// means the cell passed.
    pub violations: Vec<String>,
}

impl ResumeCell {
    /// `true` when recovery was exact.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Supervisor knobs for the checker: small epochs so crashes land between
/// checkpoints, no backoff (the crashes are injected, not environmental).
fn checker_sup_opts(crashes: usize) -> SupervisorOpts {
    SupervisorOpts {
        epoch_ticks: 32,
        max_retries: crashes as u32 + 2,
        backoff_base: std::time::Duration::ZERO,
        ..SupervisorOpts::default()
    }
}

/// One resume-equivalence check: uninterrupted vs crash-and-recover.
///
/// `crash_ticks` are absolute engine ticks; ticks beyond the baseline
/// run's length never fire and are dropped from the comparison.
#[allow(clippy::too_many_arguments)] // one cell = the full run recipe; a struct would just rename the args
pub fn check_resume(
    policy: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    opts: &EngineOpts,
    seed: u64,
    scenario: &str,
    plan: &FaultPlan,
    crash_ticks: &[u64],
) -> Result<ResumeCell, String> {
    let hardened = plan
        .events()
        .iter()
        .any(|e| matches!(e, FaultEvent::MemoryPressure { .. }));

    // Baseline: the uninterrupted run, through the same steppable engine
    // the supervisor drives.
    let mut alloc = boxed_policy(policy, params, seed, hardened)?;
    let mut engine = Engine::new(&mut *alloc, seqs, params, opts, plan, |_| LruCache::new(0));
    let mut baseline_trace = TraceRecorder::new();
    loop {
        match engine.step(&mut *alloc, &mut baseline_trace) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(format!("baseline run errored: {e}")),
        }
    }
    let baseline_ticks = engine.ticks();
    let baseline = engine.into_result(&*alloc);

    let crash_ticks: Vec<u64> = {
        let mut t: Vec<u64> = crash_ticks
            .iter()
            .copied()
            .filter(|&t| t >= 1 && t <= baseline_ticks)
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    };

    // Recovered: same inputs, crashes injected, supervisor in the loop.
    let mut recovered_trace = TraceRecorder::new();
    let supervised = Supervisor::new(checker_sup_opts(crash_ticks.len())).run(
        seqs,
        params,
        opts,
        plan,
        &parapage_sched::CrashPlan::at_ticks(crash_ticks.clone()),
        || {
            boxed_policy(policy, params, seed, hardened)
                .expect("factory succeeded for the baseline")
        },
        |_| LruCache::new(0),
        &mut recovered_trace,
    );

    let mut violations = Vec::new();
    let mut crashes = 0;
    match supervised {
        Err(e) => violations.push(format!("recovery failed: {e}")),
        Ok(report) => {
            crashes = report.crashes;
            if report.crashes as usize != crash_ticks.len() {
                violations.push(format!(
                    "expected {} injected crashes, observed {}",
                    crash_ticks.len(),
                    report.crashes
                ));
            }
            if report.result != baseline {
                violations.push(format!(
                    "RunResult diverged: recovered {:?} vs baseline {:?}",
                    report.result, baseline
                ));
            }
            violations.extend(
                checkers::check_replay(baseline_trace.events(), recovered_trace.events())
                    .into_iter()
                    .map(|v| format!("trace: {v}")),
            );
        }
    }

    Ok(ResumeCell {
        policy: policy.to_string(),
        scenario: scenario.to_string(),
        crash_ticks,
        baseline_ticks,
        crashes,
        violations,
    })
}

/// The chaos grid: every policy in [`CONFORM_POLICIES`] × every named
/// fault scenario × one crashpoint per entry of `crash_fracs` (a fraction
/// in `(0, 1)` of the cell's baseline tick count; each cell injects all
/// its crashpoints into a single supervised run).
pub fn resume_matrix(
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    seed: u64,
    horizon: u64,
    crash_fracs: &[f64],
) -> Result<Vec<ResumeCell>, String> {
    let mut cells = Vec::new();
    for &policy in CONFORM_POLICIES {
        for &scenario in FAULT_SCENARIOS {
            let events = fault_scenario(scenario, params.p, params.k, horizon, seed)
                .ok_or_else(|| format!("unknown scenario `{scenario}`"))?;
            let plan = FaultPlan::new(events);
            // Probe the baseline length first with no crashes, then place
            // the crashpoints at the requested fractions of it.
            let probe = check_resume(
                policy,
                seqs,
                params,
                &EngineOpts::default(),
                seed,
                scenario,
                &plan,
                &[],
            )?;
            let crash_ticks: Vec<u64> = crash_fracs
                .iter()
                .map(|f| ((probe.baseline_ticks as f64 * f) as u64).max(1))
                .collect();
            cells.push(check_resume(
                policy,
                seqs,
                params,
                &EngineOpts::default(),
                seed,
                scenario,
                &plan,
                &crash_ticks,
            )?);
        }
    }
    Ok(cells)
}

/// Verifies that a corrupted snapshot is rejected with a typed error: for
/// every byte position in a real mid-run snapshot's encoding (sampled if
/// the blob is large), flipping that byte must make decoding fail — never
/// panic, never yield a snapshot that silently restores.
pub fn check_corruption_rejection(
    policy: &str,
    seqs: &[Vec<PageId>],
    params: &ModelParams,
    seed: u64,
) -> Result<(), String> {
    let plan = FaultPlan::none();
    let opts = EngineOpts::default();
    let mut alloc = boxed_policy(policy, params, seed, false)?;
    let mut engine = Engine::new(&mut *alloc, seqs, params, &opts, &plan, |_| {
        LruCache::new(0)
    });
    let mut sink = parapage_sched::NullSink;
    for _ in 0..12 {
        if !engine
            .step(&mut *alloc, &mut sink)
            .map_err(|e| format!("engine errored: {e}"))?
        {
            break;
        }
    }
    let snap = engine
        .snapshot(&*alloc)
        .map_err(|e| format!("snapshot failed: {e}"))?;
    let bytes = snap.encode();
    if EngineSnapshot::decode(&bytes).as_ref() != Ok(&snap) {
        return Err("clean snapshot failed to round-trip".to_string());
    }
    // Flip every byte for small blobs, a deterministic stride for large
    // ones — the digest must catch each single-byte corruption.
    let stride = (bytes.len() / 64).max(1);
    for i in (0..bytes.len()).step_by(stride) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        match EngineSnapshot::decode(&bad) {
            Err(SnapshotError::Codec(_)) | Err(SnapshotError::Shape(_)) => {}
            Err(other) => {
                // Workload-mismatch is also a typed rejection; accept it.
                let _ = other;
            }
            Ok(_) => {
                return Err(format!(
                    "snapshot with byte {i} flipped decoded successfully — \
                     the integrity digest missed a corruption"
                ))
            }
        }
    }
    // Truncation must also be typed.
    match EngineSnapshot::decode(&bytes[..bytes.len() - 1]) {
        Ok(_) => Err("truncated snapshot decoded successfully".to_string()),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parapage_workloads::{build_workload, SeqSpec};

    fn workload(p: usize, len: usize, k: usize) -> Vec<Vec<PageId>> {
        let specs: Vec<SeqSpec> = (0..p)
            .map(|x| match x % 2 {
                0 => SeqSpec::Cyclic {
                    width: (k / 4).max(2),
                    len,
                },
                _ => SeqSpec::Zipf {
                    universe: k.max(4),
                    theta: 0.9,
                    len,
                },
            })
            .collect();
        build_workload(&specs, 42).seqs().to_vec()
    }

    #[test]
    fn det_par_resume_cell_passes() {
        let params = ModelParams::new(4, 32, 8);
        let seqs = workload(4, 300, 32);
        let plan =
            FaultPlan::new(fault_scenario("stalls", 4, 32, 4000, 7).expect("stalls scenario"));
        let probe = check_resume(
            "det-par",
            &seqs,
            &params,
            &EngineOpts::default(),
            7,
            "stalls",
            &plan,
            &[],
        )
        .expect("probe");
        assert!(probe.passed(), "probe violations: {:?}", probe.violations);
        let mid = (probe.baseline_ticks / 2).max(1);
        let cell = check_resume(
            "det-par",
            &seqs,
            &params,
            &EngineOpts::default(),
            7,
            "stalls",
            &plan,
            &[2, mid, probe.baseline_ticks - 1],
        )
        .expect("cell");
        assert!(cell.passed(), "violations: {:?}", cell.violations);
        assert_eq!(cell.crashes as usize, cell.crash_ticks.len());
    }

    #[test]
    fn rand_par_resume_survives_crashes_under_chaos_scenario() {
        let params = ModelParams::new(4, 32, 8);
        let seqs = workload(4, 300, 32);
        let plan =
            FaultPlan::new(fault_scenario("chaos", 4, 32, 4000, 11).expect("chaos scenario"));
        let probe = check_resume(
            "rand-par",
            &seqs,
            &params,
            &EngineOpts::default(),
            11,
            "chaos",
            &plan,
            &[],
        )
        .expect("probe");
        let t = probe.baseline_ticks;
        let cell = check_resume(
            "rand-par",
            &seqs,
            &params,
            &EngineOpts::default(),
            11,
            "chaos",
            &plan,
            &[t / 10 + 1, t / 3 + 1, (2 * t) / 3 + 1],
        )
        .expect("cell");
        assert!(cell.passed(), "violations: {:?}", cell.violations);
    }

    #[test]
    fn corruption_is_rejected_for_every_policy() {
        let params = ModelParams::new(2, 16, 6);
        let seqs = workload(2, 120, 16);
        for &policy in CONFORM_POLICIES {
            check_corruption_rejection(policy, &seqs, &params, 5)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }
}
