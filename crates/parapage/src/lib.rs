//! # parapage
//!
//! A from-scratch Rust implementation of **Online Parallel Paging with
//! Optimal Makespan** (Agrawal, Bender, Das, Kuszmaul, Peserico,
//! Scquizzato — SPAA 2022): the `O(log p)`-competitive parallel paging
//! algorithms RAND-PAR and DET-PAR, the green-paging machinery they build
//! on, execution engines for the paper's model, workload generators
//! including the Theorem-4 adversarial construction, and the analysis
//! toolkit used to reproduce every theorem as a measurable experiment.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`cache`] (`parapage-cache`) — LRU/FIFO/Clock/LFU/Belady simulators,
//!   Mattson stack-distance analysis, box-window simulation;
//! * [`core`] (`parapage-core`) — box profiles, RAND-GREEN, green OPT DP,
//!   RAND-PAR, DET-PAR, baselines, the §4 black-box packer, and the
//!   well-roundedness auditor;
//! * [`workloads`] (`parapage-workloads`) — generators and the adversarial
//!   instance builder;
//! * [`sched`] (`parapage-sched`) — the box-driven execution engine and the
//!   shared-LRU baseline simulator;
//! * [`analysis`] (`parapage-analysis`) — `T_OPT` lower bounds, the
//!   Lemma-8 OPT schedule, statistics, regression, reporting;
//! * [`conform`] (`parapage-conform`) — the conformance oracle: streaming
//!   paper-invariant checkers over the engine trace, a naive differential
//!   reference simulator, and competitive-ratio guardrails.
//!
//! ## Quickstart
//!
//! ```
//! use parapage::prelude::*;
//!
//! // 4 processors, cache of 64 pages, miss penalty 10.
//! let params = ModelParams::new(4, 64, 10);
//!
//! // Heterogeneous workloads: different working-set widths.
//! let specs: Vec<SeqSpec> = (0..4)
//!     .map(|x| SeqSpec::Cyclic { width: 8 << x, len: 2000 })
//!     .collect();
//! let workload = build_workload(&specs, 42);
//!
//! // Run the paper's deterministic algorithm.
//! let mut policy = DetPar::new(&params);
//! let result = run_engine(&mut policy, workload.seqs(), &params,
//!                         &EngineOpts::default())
//!     .expect("engine run failed");
//!
//! // Compare against a certified lower bound on OPT.
//! let lb = per_proc_bound(workload.seqs(), params.k, params.s);
//! assert!(result.makespan >= lb);
//! println!("makespan {} (>= {:.2}x lower bound)", result.makespan,
//!          result.makespan as f64 / lb as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use parapage_analysis as analysis;
pub use parapage_cache as cache;
pub use parapage_conform as conform;
pub use parapage_core as core;
pub use parapage_sched as sched;
pub use parapage_workloads as workloads;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use parapage_analysis::{
        bar_chart, fit_linear, gantt, lemma8_makespan, median, opt_lower_bound, per_proc_bound,
        quantile, sparkline, summarize, Table,
    };
    pub use parapage_cache::{
        min_misses, miss_curve, run_box, run_window, sampled_miss_curve, Access, ArcCache, Cache,
        ClockCache, FifoCache, LfuCache, LirsCache, LockFreeFifoCache, LruCache, PageId, ProcId,
        ShardedCache, ShardedLru, SplitOrderedMap, Time, TwoQueueCache,
    };
    pub use parapage_conform::{
        check_concurrent_cache, check_corruption_rejection, check_resume, check_sharded_ledgers,
        check_wal_corruption, competitive_envelope, conform_matrix, conform_run,
        differential_sweep, explore, explore_all, net_cells, resume_matrix, scenarios,
        wal_chaos_matrix, ConcurrentCell, ConformReport, DiffReport, EnvelopeReport, ExploreMode,
        ExploreReport, NetCell, NetFaultKind, NetFaultPlan, ResumeCell, WalCell, WalCorruption,
        CONFORM_POLICIES,
    };
    pub use parapage_core::{
        audit_greedy, check_well_rounded, green_opt, green_opt_fast, green_opt_fast_normalized,
        green_opt_normalized, run_green, run_profile, AdaptiveGreen, BlackboxGreenPacker,
        BoxAllocator, BoxHeightDist, BoxProfile, DetPar, FaultEvent, Grant, GreenPolicy,
        HardenedAllocator, MemBox, ModelParams, PropMissPartition, RandGreen, RandPar,
        RebootingGreen, SrptPartition, StaticPartition, UcpPartition, UniversalGreen,
    };
    pub use parapage_sched::{
        capped_backoff, jittered_backoff, run_engine, run_engine_faults, run_engine_sharded,
        run_engine_traced, run_engine_with, run_engine_with_faults, run_shared_lru, CrashPlan,
        Engine, EngineError, EngineOpts, EngineSnapshot, FaultPlan, NullSink, RecoveryReport,
        RunResult, SnapshotError, Supervisor, SupervisorError, SupervisorOpts, TraceEvent,
        TraceRecorder, TraceSink, DEFAULT_MAX_TIME,
    };
    pub use parapage_workloads::{
        build_workload, fault_scenario, shared_hotset_workload, AdversarialConfig,
        AdversarialInstance, SeqBuilder, SeqSpec, Workload, FAULT_SCENARIOS,
    };
}
