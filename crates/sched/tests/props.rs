//! Property tests for the execution engines, independent of any concrete
//! paper policy: the engine's conservation laws must hold for *arbitrary*
//! (valid) allocators.

use proptest::prelude::*;

use parapage_cache::{PageId, ProcId, Time};
use parapage_core::{BoxAllocator, Grant, ModelParams};
use parapage_sched::{run_engine, run_shared_lru, run_shared_lru_bandwidth, EngineOpts};

/// An allocator that replays an arbitrary scripted cycle of grants, with a
/// per-processor cursor so every processor sees every script entry (a
/// global cursor could phase-lock one processor onto unviable grants).
struct Scripted {
    script: Vec<Grant>,
    next: Vec<usize>,
}

impl Scripted {
    fn new(script: Vec<Grant>, p: usize) -> Self {
        Scripted {
            script,
            next: vec![0; p],
        }
    }
}

impl BoxAllocator for Scripted {
    fn grant(&mut self, proc: ProcId, _now: Time) -> Grant {
        let cursor = &mut self.next[proc.idx()];
        let g = self.script[*cursor % self.script.len()];
        *cursor += 1;
        g
    }
    fn on_proc_finished(&mut self, _proc: ProcId, _now: Time) {}
    fn name(&self) -> &'static str {
        "scripted"
    }
}

fn grant_strategy(max_h: usize) -> impl Strategy<Value = Grant> {
    (0usize..=max_h, 1u64..200).prop_map(|(height, duration)| Grant { height, duration })
}

fn seqs_strategy(p: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<PageId>>> {
    prop::collection::vec(
        prop::collection::vec((0u64..30).prop_map(PageId), 0..max_len),
        p..=p,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation laws hold for arbitrary grant scripts: every request
    /// served once, completions bounded by per-request floors, peak memory
    /// bounded by the script's concurrent maximum.
    #[test]
    fn engine_invariants_under_arbitrary_scripts(
        seqs in seqs_strategy(3, 200),
        script in prop::collection::vec(grant_strategy(16), 1..12),
    ) {
        // Guarantee progress: at least one grant that can serve a miss
        // (height > 0 AND duration >= s; shorter boxes can never fit a
        // fetch and a script of only those livelocks, by design).
        prop_assume!(script.iter().any(|g| g.height > 0 && g.duration >= 5));
        let params = ModelParams::new(3, 16, 5);
        let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let mut alloc = Scripted::new(script.clone(), 3);
        let opts = EngineOpts { max_time: 2_000_000, ..Default::default() };
        let res = run_engine(&mut alloc, &seqs, &params, &opts).unwrap();
        prop_assert_eq!(res.stats.accesses(), total);
        for (x, seq) in seqs.iter().enumerate() {
            if seq.is_empty() {
                prop_assert_eq!(res.completions[x], 0);
            } else {
                prop_assert!(res.completions[x] >= seq.len() as u64);
            }
        }
        let max_h = script.iter().map(|g| g.height).max().unwrap_or(0);
        prop_assert!(res.peak_memory <= 3 * max_h);
        prop_assert_eq!(res.makespan, res.completions.iter().copied().max().unwrap_or(0));
    }

    /// The shared-LRU simulator serves all requests; ample bandwidth
    /// (channels ≥ p) reproduces the unlimited simulator exactly; any
    /// throttled run stays within the full-serialization envelope.
    ///
    /// NOTE: strict monotonicity in the channel count is FALSE with a
    /// shared cache — throttling perturbs the interleaving, which perturbs
    /// the LRU contents, and fewer channels can accidentally produce fewer
    /// misses (a Belady-style scheduling anomaly; proptest found a concrete
    /// instance). Only the properties below actually hold.
    #[test]
    fn shared_lru_bandwidth_envelopes(seqs in seqs_strategy(4, 150)) {
        let s = 5u64;
        let unlimited = run_shared_lru(&seqs, 10, s);
        let total: u64 = seqs.iter().map(|q| q.len() as u64).sum();
        prop_assert_eq!(unlimited.stats.accesses(), total);
        let ample = run_shared_lru_bandwidth(&seqs, 10, s, 4);
        prop_assert_eq!(ample.makespan, unlimited.makespan);
        prop_assert_eq!(ample.stats, unlimited.stats);
        for channels in 1..=3 {
            let res = run_shared_lru_bandwidth(&seqs, 10, s, channels);
            prop_assert_eq!(res.stats.accesses(), total);
            // Lower envelope: the longest sequence all-hit. Upper envelope:
            // everything serialized at miss cost.
            let longest = seqs.iter().map(Vec::len).max().unwrap_or(0) as u64;
            prop_assert!(res.makespan >= longest);
            prop_assert!(res.makespan <= s * total + 1);
        }
    }

    /// Compartmentalized semantics never beat resize semantics, for
    /// arbitrary scripts.
    #[test]
    fn compartmentalization_never_helps(
        seqs in seqs_strategy(2, 150),
        script in prop::collection::vec(grant_strategy(8), 1..8),
    ) {
        prop_assume!(script.iter().any(|g| g.height > 0 && g.duration >= 5));
        let params = ModelParams::new(2, 16, 5);
        let opts = EngineOpts { max_time: 2_000_000, ..Default::default() };
        let mut a = Scripted::new(script.clone(), 2);
        let plain = run_engine(&mut a, &seqs, &params, &opts).unwrap();
        let mut b = Scripted::new(script, 2);
        let comp_opts = EngineOpts { compartmentalized: true, ..opts };
        let comp = run_engine(&mut b, &seqs, &params, &comp_opts).unwrap();
        prop_assert!(comp.stats.misses >= plain.stats.misses);
        prop_assert!(comp.makespan >= plain.makespan);
    }
}
