//! Property tests for the fault-injection layer: injection is deterministic
//! under a fixed seed, and the hardened wrapper keeps arbitrary fault
//! schedules within the memory budget.

use proptest::prelude::*;

use parapage_cache::{ProcId, Time};
use parapage_core::{DetPar, FaultEvent, HardenedAllocator, ModelParams};
use parapage_sched::{run_engine_faults, EngineOpts, FaultPlan, RunResult};
use parapage_workloads::{build_workload, fault_scenario, SeqSpec, Workload, FAULT_SCENARIOS};

const P: usize = 4;
const K: usize = 32;
const S: u64 = 8;

fn small_workload(seed: u64) -> Workload {
    let specs: Vec<SeqSpec> = (0..P)
        .map(|x| SeqSpec::Cyclic {
            width: 2 + 3 * x,
            len: 200,
        })
        .collect();
    build_workload(&specs, seed)
}

/// Field-wise equality (RunResult intentionally has no `PartialEq`: its
/// `timelines` are auxiliary output).
fn assert_same_result(a: &RunResult, b: &RunResult) {
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.memory_integral, b.memory_integral);
    assert_eq!(a.peak_memory, b.peak_memory);
    assert_eq!(a.grants_issued, b.grants_issued);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.degraded_grants, b.degraded_grants);
}

fn event_strategy() -> impl Strategy<Value = FaultEvent> {
    prop_oneof![
        (0u32..P as u32, 0u64..2_000, 1u64..500).prop_map(|(x, from, width)| {
            FaultEvent::ProcStall {
                proc: ProcId(x),
                from,
                until: from + width,
            }
        }),
        (0u64..2_000, 1u64..500, 1u64..8).prop_map(|(from, width, factor)| {
            FaultEvent::LatencySpike {
                from,
                until: from + width,
                factor,
            }
        }),
        (0u64..2_000, 1usize..=K)
            .prop_map(|(at, new_limit)| FaultEvent::MemoryPressure { at, new_limit }),
    ]
}

#[test]
fn named_scenarios_replay_identically() {
    let w = small_workload(11);
    let params = ModelParams::new(P, K, S);
    let horizon: Time = 20_000;
    for &name in FAULT_SCENARIOS {
        let plan = FaultPlan::new(fault_scenario(name, P, K, horizon, 7).unwrap());
        let run = || {
            let mut a = HardenedAllocator::new(DetPar::new(&params), K);
            run_engine_faults(&mut a, w.seqs(), &params, &EngineOpts::default(), &plan)
                .expect("hardened run failed")
        };
        assert_same_result(&run(), &run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same fault plan replays to an identical result: injection adds
    /// no hidden nondeterminism to a deterministic policy.
    #[test]
    fn injection_is_deterministic(
        events in prop::collection::vec(event_strategy(), 0..10),
        wseed in 0u64..1_000,
    ) {
        let w = small_workload(wseed);
        let params = ModelParams::new(P, K, S);
        let plan = FaultPlan::new(events);
        let run = || {
            let mut a = HardenedAllocator::new(DetPar::new(&params), K);
            run_engine_faults(&mut a, w.seqs(), &params, &EngineOpts::default(), &plan)
        };
        match (run(), run()) {
            (Ok(a), Ok(b)) => assert_same_result(&a, &b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
        }
    }

    /// The hardened wrapper completes every run within the enforced budget,
    /// whatever faults arrive: the engine's limit check (seeded at `k` and
    /// tightened by every pressure event) never fires.
    #[test]
    fn hardened_never_exceeds_the_limit(
        events in prop::collection::vec(event_strategy(), 0..10),
        wseed in 0u64..1_000,
    ) {
        let w = small_workload(wseed);
        let params = ModelParams::new(P, K, S);
        let plan = FaultPlan::new(events);
        let opts = EngineOpts {
            memory_limit: Some(K),
            ..Default::default()
        };
        let mut a = HardenedAllocator::new(DetPar::new(&params), K);
        let res = run_engine_faults(&mut a, w.seqs(), &params, &opts, &plan);
        let res = match res {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("hardened run failed: {e}"))),
        };
        prop_assert!(res.peak_memory <= K, "peak {} > k {}", res.peak_memory, K);
    }
}
