//! The engine's conformance trace stream.
//!
//! Every semantically meaningful step of an engine run — a grant being
//! issued, a window of requests being served, a fault being delivered, a
//! processor completing — can be emitted as a [`TraceEvent`] through a
//! caller-supplied [`TraceSink`]. The stream is the substrate of the
//! conformance oracle in `parapage-conform`: streaming checkers replay the
//! paper's structural invariants (instantaneous memory ≤ budget, box
//! geometry, phase halving) over it, a naive reference simulator is
//! cross-checked against it event-for-event, and byte-identical replay of
//! two runs certifies determinism.
//!
//! Tracing is zero-cost when disabled: the default entry points pass
//! [`NullSink`], whose `emit` is an inlined no-op, so the event
//! constructions are dead code the optimizer removes. The traced entry
//! points ([`crate::engine::run_engine_traced`] and friends) are generic
//! over the sink, so enabling tracing costs one vector push per event and
//! nothing else.
//!
//! Events are emitted in the exact order the engine makes its decisions:
//! global time order, with fault deliveries before any decision at their
//! timestamp and completion notifications before grant decisions at equal
//! times (mirroring the engine's event heap ordering). Two runs of the same
//! `(workload, policy, seed, FaultPlan)` therefore produce identical
//! streams, which is itself one of the checked invariants.

use parapage_cache::{ProcId, Time};
use parapage_core::FaultEvent;

/// One step of an engine run, as observed on the trace stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The policy issued a grant (possibly a stall, `height == 0`).
    Grant {
        /// The granted processor.
        proc: ProcId,
        /// Decision time.
        at: Time,
        /// Granted cache height (0 = stall).
        height: usize,
        /// Grant duration.
        duration: Time,
        /// When the engine's peak-memory accounting releases the pages:
        /// the grant's end, or the completion instant when the processor
        /// finishes mid-grant. Always `at` for stalls.
        release_at: Time,
    },
    /// The window of requests served inside the grant just issued.
    Window {
        /// The serving processor.
        proc: ProcId,
        /// Window start (= the grant's decision time).
        at: Time,
        /// Requests served (hits + fetches).
        served: u64,
        /// Requests served from cache.
        hits: u64,
        /// Requests fetched from memory (the *fetch* events of the model;
        /// each costs `s` — or `s × factor` under a latency spike).
        fetches: u64,
        /// Pages evicted while serving the window, including evictions
        /// forced by the box boundary itself (cache shrink on resize, or a
        /// full flush under compartmentalized semantics).
        evictions: u64,
        /// Time consumed serving (`≤` the grant's duration).
        time_used: Time,
        /// Whether the processor's sequence completed in this window.
        finished: bool,
    },
    /// The engine deferred a grant request because the processor lies in an
    /// injected stall window (no grant was issued; the request re-fires at
    /// `until`).
    StallDeferred {
        /// The frozen processor.
        proc: ProcId,
        /// Time of the deferred request.
        at: Time,
        /// End of the stall window (when the request re-fires).
        until: Time,
    },
    /// A fault event was delivered to the policy.
    Fault {
        /// Delivery time (the first decision point at-or-after the fault's
        /// own timestamp).
        at: Time,
        /// The injected fault.
        event: FaultEvent,
    },
    /// A processor served its last request.
    Completion {
        /// The finished processor.
        proc: ProcId,
        /// Completion time.
        at: Time,
    },
    /// A phase transition of a phase-structured policy (DET-PAR). The
    /// engine itself is phase-agnostic; this marker is synthesized into the
    /// stream by the conformance harness from the policy's phase log so
    /// that streaming checkers know the base height in force at any time.
    Phase {
        /// Phase start time.
        at: Time,
        /// Base height `b = k/p_Q` of the phase.
        base_height: usize,
        /// Roster size (active processors at phase start).
        roster_len: usize,
    },
}

impl TraceEvent {
    /// The simulated time the event refers to.
    pub fn at(&self) -> Time {
        match *self {
            TraceEvent::Grant { at, .. }
            | TraceEvent::Window { at, .. }
            | TraceEvent::StallDeferred { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::Completion { at, .. }
            | TraceEvent::Phase { at, .. } => at,
        }
    }
}

/// A consumer of the engine's trace stream.
///
/// Implementations must not assume anything beyond the documented event
/// order; in particular they must tolerate multiple events at equal
/// timestamps.
pub trait TraceSink {
    /// Receives one event, in emission order.
    fn emit(&mut self, event: &TraceEvent);
}

/// The disabled sink: every emission is an inlined no-op, so untraced runs
/// pay nothing for the instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// A sink that records the whole stream in memory, for checkers and
/// replay/differential comparison.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for TraceRecorder {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// A sink that folds the stream into a running FNV-1a fingerprint instead
/// of storing it.
///
/// Two runs emitted identical streams iff their digests and counts agree,
/// so resume-equivalence over long runs can be checked in O(1) memory. The
/// digest hashes each event's canonical `Debug` rendering — `TraceEvent`'s
/// derived `Debug` prints every field, so distinct events render
/// distinctly.
#[derive(Clone, Copy, Debug)]
pub struct DigestSink {
    digest: u64,
    count: u64,
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl DigestSink {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh (empty-stream) digest.
    pub fn new() -> Self {
        DigestSink {
            digest: Self::FNV_OFFSET,
            count: 0,
        }
    }

    /// The fingerprint of the events absorbed so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// How many events were absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// `fmt::Write` adapter that FNV-hashes the formatted bytes as they are
/// produced, so [`DigestSink`] absorbs a `Debug` rendering without ever
/// materializing the string. Hashes exactly the bytes a `String` render
/// would, so digests are unchanged from the allocating implementation.
struct FnvWriter {
    digest: u64,
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.as_bytes() {
            self.digest ^= *b as u64;
            self.digest = self.digest.wrapping_mul(DigestSink::FNV_PRIME);
        }
        Ok(())
    }
}

impl TraceSink for DigestSink {
    fn emit(&mut self, event: &TraceEvent) {
        use std::fmt::Write;
        let mut w = FnvWriter {
            digest: self.digest,
        };
        let _ = write!(w, "{event:?}");
        self.digest = w.digest;
        // Separator byte so event boundaries can't alias.
        self.digest ^= 0xff;
        self.digest = self.digest.wrapping_mul(Self::FNV_PRIME);
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_emission_order() {
        let mut rec = TraceRecorder::new();
        let a = TraceEvent::Completion {
            proc: ProcId(0),
            at: 5,
        };
        let b = TraceEvent::Grant {
            proc: ProcId(1),
            at: 5,
            height: 4,
            duration: 40,
            release_at: 45,
        };
        rec.emit(&a);
        rec.emit(&b);
        assert_eq!(rec.events(), &[a, b]);
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
    }

    #[test]
    fn event_times_are_exposed() {
        let ev = TraceEvent::Fault {
            at: 7,
            event: FaultEvent::LatencySpike {
                from: 7,
                until: 9,
                factor: 2,
            },
        };
        assert_eq!(ev.at(), 7);
        assert_eq!(
            TraceEvent::Phase {
                at: 11,
                base_height: 8,
                roster_len: 4
            }
            .at(),
            11
        );
    }

    #[test]
    fn digest_sink_distinguishes_streams() {
        let a = TraceEvent::Completion {
            proc: ProcId(0),
            at: 5,
        };
        let b = TraceEvent::Completion {
            proc: ProcId(1),
            at: 5,
        };
        let mut d1 = DigestSink::new();
        let mut d2 = DigestSink::new();
        d1.emit(&a);
        d1.emit(&b);
        d2.emit(&a);
        d2.emit(&b);
        assert_eq!(d1.digest(), d2.digest());
        assert_eq!(d1.count(), 2);
        let mut d3 = DigestSink::new();
        d3.emit(&b);
        d3.emit(&a);
        assert_ne!(d1.digest(), d3.digest(), "order must matter");
    }

    /// The allocation-free digest must equal an FNV over the materialized
    /// `Debug` string — the exact bytes the original implementation hashed
    /// (digest stability across the rewrite).
    #[test]
    fn digest_matches_string_render() {
        let events = [
            TraceEvent::Grant {
                proc: ProcId(2),
                at: 17,
                height: 8,
                duration: 80,
                release_at: 97,
            },
            TraceEvent::Window {
                proc: ProcId(2),
                at: 17,
                served: 12,
                hits: 9,
                fetches: 3,
                evictions: 1,
                time_used: 39,
                finished: false,
            },
            TraceEvent::Fault {
                at: 20,
                event: FaultEvent::MemoryPressure {
                    at: 20,
                    new_limit: 16,
                },
            },
        ];
        let mut sink = DigestSink::new();
        let mut want = DigestSink::FNV_OFFSET;
        for ev in &events {
            sink.emit(ev);
            for b in format!("{ev:?}").as_bytes() {
                want ^= *b as u64;
                want = want.wrapping_mul(DigestSink::FNV_PRIME);
            }
            want ^= 0xff;
            want = want.wrapping_mul(DigestSink::FNV_PRIME);
        }
        assert_eq!(sink.digest(), want);
        assert_eq!(sink.count(), 3);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.emit(&TraceEvent::Completion {
            proc: ProcId(3),
            at: 0,
        });
    }
}
