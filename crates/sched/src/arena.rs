//! Bump-arena storage for the engine's grow-only run state.
//!
//! The engine accumulates several append-only ledgers over a run — height
//! deltas for the peak-memory audit, per-processor timelines, trace events
//! in recording sinks. Backing them with one `Vec` works until the run gets
//! long: every doubling reallocates and *copies the entire history*, so a
//! 10^7-event ledger pays tens of full-ledger memcpys, and the peak
//! footprint during a doubling is 1.5× the ledger (old + new buffer live at
//! once).
//!
//! [`ChunkVec`] is the arena alternative: storage is a list of fixed-size
//! chunks, `push` bump-allocates into the current chunk and starts a new
//! one when full. Properties the engine relies on:
//!
//! * **No copies, ever.** A full chunk is never moved; growth allocates one
//!   new chunk and touches nothing else. Push is O(1) worst-case, not just
//!   amortized.
//! * **Wholesale reclamation.** [`ChunkVec::clear`] retires the whole run's
//!   ledger at once, *retaining* the allocated chunks, so a reused engine
//!   (bench loops, supervisors restarting epochs) allocates only on its
//!   first run.
//! * **Stable suffix iteration.** [`ChunkVec::iter_from`] walks everything
//!   past a mark without materializing a slice — exactly the WAL-delta
//!   access pattern (`deltas[ckpt_len..]`).
//!
//! The element type is `Copy` (ledger entries are small PODs), which keeps
//! `clear` trivially correct — nothing to drop.

/// Elements per chunk. 4096 × 16-byte entries = 64 KiB chunks: big enough
/// to amortize the per-chunk allocation to noise, small enough that the
/// tail chunk's slack is irrelevant.
const CHUNK: usize = 4096;

/// An append-only bump-allocated vector: chunked storage, O(1) worst-case
/// push, no reallocation-copies, wholesale clear.
#[derive(Clone, Debug)]
pub struct ChunkVec<T: Copy> {
    chunks: Vec<Vec<T>>,
    /// Total elements (cached; also derivable from the chunk list).
    len: usize,
}

impl<T: Copy> Default for ChunkVec<T> {
    fn default() -> Self {
        ChunkVec::new()
    }
}

impl<T: Copy> ChunkVec<T> {
    /// An empty arena (no chunks allocated until the first push).
    pub fn new() -> Self {
        ChunkVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements pushed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value`; never moves previously pushed elements.
    ///
    /// Invariant: chunk `len / CHUNK` is the active one — every chunk
    /// before it is full, every chunk after it (retained by `clear`) is
    /// empty.
    #[inline]
    pub fn push(&mut self, value: T) {
        let idx = self.len / CHUNK;
        if idx == self.chunks.len() {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        self.chunks[idx].push(value);
        self.len += 1;
    }

    /// Drops every element while *retaining* chunk allocations for reuse.
    pub fn clear(&mut self) {
        for chunk in &mut self.chunks {
            chunk.clear();
        }
        self.len = 0;
    }

    /// Iterates every element in push order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Iterates elements `start..len` in push order (the WAL suffix walk).
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = &T> {
        let skip_chunks = start / CHUNK;
        let skip_into = start % CHUNK;
        self.chunks
            .iter()
            .skip(skip_chunks)
            .enumerate()
            .flat_map(move |(i, c)| c.iter().skip(if i == 0 { skip_into } else { 0 }))
    }

    /// Copies the whole arena into one contiguous `Vec` (checkpoint
    /// encoding and final-result sorting want a flat buffer).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter().copied());
        out
    }

    /// Replaces the contents with `items` (snapshot restore).
    pub fn assign(&mut self, items: &[T]) {
        self.clear();
        for &it in items {
            self.push(it);
        }
    }
}

impl<T: Copy> Extend<T> for ChunkVec<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for it in iter {
            self.push(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate_across_chunk_boundaries() {
        let mut v = ChunkVec::new();
        let n = CHUNK * 2 + 37;
        for i in 0..n {
            v.push(i);
        }
        assert_eq!(v.len(), n);
        assert!(!v.is_empty());
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..n).collect::<Vec<_>>());
        assert_eq!(v.to_vec(), collected);
    }

    #[test]
    fn iter_from_matches_slice_semantics() {
        let mut v = ChunkVec::new();
        let n = CHUNK + 100;
        for i in 0..n {
            v.push(i as u64);
        }
        for start in [0, 1, 50, CHUNK - 1, CHUNK, CHUNK + 1, n - 1, n] {
            let suffix: Vec<u64> = v.iter_from(start).copied().collect();
            let want: Vec<u64> = (start as u64..n as u64).collect();
            assert_eq!(suffix, want, "start={start}");
        }
    }

    #[test]
    fn clear_retains_chunks_and_reuses_them() {
        let mut v = ChunkVec::new();
        for i in 0..CHUNK + 5 {
            v.push(i);
        }
        let chunks_before = v.chunks.len();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.chunks.len(), chunks_before, "chunks retained");
        for i in 0..CHUNK + 5 {
            v.push(i * 2);
        }
        assert_eq!(v.chunks.len(), chunks_before, "no new allocation");
        assert_eq!(v.len(), CHUNK + 5);
        assert_eq!(v.iter().copied().nth(CHUNK + 4), Some((CHUNK + 4) * 2));
    }

    #[test]
    fn assign_round_trips() {
        let mut v = ChunkVec::new();
        v.push(1u32);
        v.assign(&[7, 8, 9]);
        assert_eq!(v.to_vec(), vec![7, 8, 9]);
        v.assign(&[]);
        assert!(v.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut v = ChunkVec::new();
        v.extend([1i64, 2, 3]);
        v.extend([4, 5]);
        assert_eq!(v.to_vec(), vec![1, 2, 3, 4, 5]);
    }
}
