//! # parapage-sched
//!
//! Execution engines for the parallel paging model of *Online Parallel
//! Paging with Optimal Makespan* (SPAA 2022):
//!
//! * [`engine`] — the box-driven event simulator: `p` processors each serve
//!   their own request sequence through LRU caches whose heights are
//!   dictated by a [`parapage_core::BoxAllocator`] policy (RAND-PAR,
//!   DET-PAR, baselines…). Measures makespan, mean completion time, memory
//!   usage, and optionally full allocation timelines.
//! * [`shared`] — a step-level simulator of the natural practical baseline
//!   the paper's model abstracts away: one global LRU cache shared by all
//!   processors.
//! * [`interleaved`] — the *fixed-rate* model of the early literature the
//!   paper's introduction critiques (every processor advances one request
//!   per round regardless of hits/misses), kept to demonstrate what that
//!   simplification hides (E15).
//! * [`metrics`] — the result types common to both engines.
//! * [`error`] — typed abnormal-condition reporting ([`EngineError`]);
//!   the engine returns `Result` instead of panicking.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]): processor
//!   stalls, fetch-latency spikes, and mid-run memory pressure.
//! * [`snapshot`] — checkpoint/restore: [`EngineSnapshot`] captures a run's
//!   full dynamic state (engine counters, event heap, caches, policy state)
//!   in a versioned, integrity-checked byte format.
//! * [`supervisor`] — crash recovery: [`Supervisor`] runs the engine in
//!   bounded epochs under panic isolation with a watchdog, resuming from the
//!   last good snapshot after a crash.
//! * [`wal`] — incremental checkpoints: a write-ahead delta log between
//!   full snapshots ([`WalDelta`] records, digest-chained framing, and the
//!   torn-write-tolerant [`recover`] scan) drops per-epoch checkpoint cost
//!   from O(state) to O(changes).
//! * [`trace`] — the conformance trace stream: [`run_engine_traced`] emits
//!   every grant, served window, fault delivery, and completion as a
//!   [`TraceEvent`] through a caller-supplied [`TraceSink`] (zero-cost when
//!   disabled), the substrate of the `parapage-conform` oracle.
//!
//! Both engines implement the paper's timing model exactly: a hit costs one
//! time step, a miss costs `s`, and each processor fetches over its own
//! dedicated channel (misses do not contend).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod error;
pub mod fault;
pub mod interleaved;
pub mod metrics;
pub mod shared;
pub mod snapshot;
pub mod supervisor;
pub mod trace;
pub mod wal;

pub use arena::ChunkVec;
pub use engine::{
    run_engine, run_engine_faults, run_engine_sharded, run_engine_traced, run_engine_with,
    run_engine_with_faults, run_engine_with_faults_traced, Engine, EngineOpts, DEFAULT_MAX_TIME,
};
pub use error::EngineError;
pub use fault::FaultPlan;
pub use interleaved::{run_interleaved_partition, run_interleaved_shared, InterleavedResult};
pub use metrics::RunResult;
pub use shared::{run_shared_lru, run_shared_lru_bandwidth};
pub use snapshot::{workload_fingerprint, EngineSnapshot, SnapshotError};
pub use supervisor::{
    capped_backoff, jittered_backoff, CrashPlan, EpochControl, EpochStatus, RecoveryReport,
    Supervisor, SupervisorError, SupervisorOpts,
};
pub use trace::{DigestSink, NullSink, TraceEvent, TraceRecorder, TraceSink};
pub use wal::{
    recover, CheckpointStore, MemStore, WalCursor, WalDelta, WalRecovery, WalTruncation,
};
